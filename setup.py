"""Legacy setup shim.

The offline environment ships a setuptools too old for PEP 660 editable
installs from pyproject.toml alone; this shim lets
``pip install -e . --no-build-isolation`` take the setup.py path.  All
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
