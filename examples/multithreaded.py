"""Multi-threaded programs under ProFess (Section 3.1.1).

The paper dedicates one private region per *program*, with all threads of
a multi-threaded program sharing it — the RSM counter sets are looked up
by program id, not core id.  This example runs two 2-thread programs on
the quad-core system and shows that RSM produces exactly two slowdown-
factor streams while ProFess still improves on PoM.

Run with::

    python examples/multithreaded.py
"""

from repro.common.config import paper_quad_core
from repro.sim.engine import SimulationDriver
from repro.traces.generator import synthesize_trace

SCALE = 128
REQUESTS = 10_000
#: Two programs, two threads each: cores 0-1 run milc, cores 2-3 soplex.
THREADS = ("milc", "milc", "soplex", "soplex")
PROGRAM_OF_CORE = (0, 0, 1, 1)


def run(policy: str):
    config = paper_quad_core(scale=SCALE)
    traces = [
        (name, synthesize_trace(name, REQUESTS, scale=SCALE, seed=index))
        for index, name in enumerate(THREADS)
    ]
    driver = SimulationDriver(
        config, policy, traces, program_of_core=list(PROGRAM_OF_CORE)
    )
    return driver, driver.run()


def main() -> None:
    print(f"threads: {THREADS} -> programs {PROGRAM_OF_CORE}\n")
    for policy in ("pom", "profess"):
        driver, result = run(policy)
        per_program_ipc = {}
        for core, program in enumerate(PROGRAM_OF_CORE):
            per_program_ipc.setdefault(program, 0.0)
            per_program_ipc[program] += result.program(core).ipc
        print(f"{policy}:")
        for program, ipc in per_program_ipc.items():
            name = THREADS[PROGRAM_OF_CORE.index(program)]
            print(f"  program {program} ({name:7}): aggregate IPC {ipc:.3f}")
        rsm = driver.controller.rsm
        print(f"  RSM tracks {rsm.num_programs} programs "
              f"({len(rsm.history)} samples)")
        if policy == "profess":
            for program in range(rsm.num_programs):
                samples = [s for s in rsm.history if s.program == program]
                if samples:
                    last = samples[-1]
                    print(
                        f"  program {program}: SF_A={last.smoothed_sf_a:.3f} "
                        f"SF_B={last.smoothed_sf_b:.3f}"
                    )
        print()


if __name__ == "__main__":
    main()
