"""Quickstart: compare PoM and ProFess on one multiprogrammed workload.

Runs the paper's w09 mix (mcf + soplex + lbm + GemsFDTD) on a scaled-down
quad-core system under the PoM baseline and under ProFess, and prints the
paper's figures of merit: per-program slowdowns, weighted speedup,
unfairness (max slowdown), and memory energy efficiency.

Run with::

    python examples/quickstart.py
"""

from repro import ExperimentRunner
from repro.workloads import WORKLOADS

WORKLOAD = "w09"


def main() -> None:
    # scale=128 shrinks the paper's 256-MB M1 to 2 MB (and program
    # footprints by the same factor) so this finishes in under a minute.
    runner = ExperimentRunner(
        scale=128, multi_requests=10_000, single_requests=10_000
    )
    print(f"Workload {WORKLOAD}: {' + '.join(WORKLOADS[WORKLOAD])}\n")

    results = {}
    for policy in ("pom", "profess"):
        print(f"running {policy} (multiprogram + stand-alone references)...")
        results[policy] = runner.workload_metrics(WORKLOAD, policy)

    print()
    header = f"{'program':12}" + "".join(
        f"{policy + ' sdn':>14}" for policy in results
    )
    print(header)
    for index, program in enumerate(WORKLOADS[WORKLOAD]):
        row = f"{program:12}"
        for metrics in results.values():
            row += f"{metrics.slowdowns[index]:14.2f}"
        print(row)

    print()
    for policy, metrics in results.items():
        print(
            f"{policy:8} weighted speedup={metrics.weighted_speedup:.3f}  "
            f"unfairness={metrics.unfairness:.2f}  "
            f"energy efficiency={metrics.energy_efficiency:,.0f} req/J  "
            f"swap fraction={metrics.swap_fraction:.2%}"
        )

    pom, profess = results["pom"], results["profess"]
    print(
        f"\nProFess vs PoM: unfairness "
        f"{profess.unfairness / pom.unfairness - 1:+.1%}, "
        f"weighted speedup "
        f"{profess.weighted_speedup / pom.weighted_speedup - 1:+.1%}"
    )


if __name__ == "__main__":
    main()
