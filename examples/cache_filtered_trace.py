"""Substrate demo: derive a main-memory trace through the cache hierarchy.

The headline experiments feed the simulator synthetic post-L3 traces, but
the cache hierarchy of Table 8 is a full substrate: this example builds a
raw (pre-L1) access stream, filters it through L1/L2/L3 with
:func:`repro.cpu.trace.filter_through_caches`, and runs the resulting
main-memory trace — the same front-end path the paper's Pin-based
simulator implements.

Run with::

    python examples/cache_filtered_trace.py
"""

import numpy as np

from repro.cache.hierarchy import CacheHierarchy
from repro.common.config import paper_single_core
from repro.cpu.trace import filter_through_caches
from repro.sim.engine import SimulationDriver

SCALE = 128
RAW_ACCESSES = 400_000


def raw_stream(rng: np.random.Generator):
    """A pre-L1 access stream: a hot set plus a cold scan.

    90% of accesses hit a small hot set (mostly cache-resident after
    warm-up); 10% scan a large cold array (L3 misses).
    """
    hot_lines = 4_096  # 256 KB: fits in L2+L3, mostly filtered out
    cold_lines = 1 << 20
    cold_cursor = 0
    for _ in range(RAW_ACCESSES):
        if rng.random() < 0.9:
            line = int(rng.integers(0, hot_lines))
        else:
            line = hot_lines + cold_cursor
            cold_cursor = (cold_cursor + 1) % cold_lines
        yield (2, line, bool(rng.random() < 0.25))


def main() -> None:
    config = paper_single_core(scale=SCALE)
    hierarchy = CacheHierarchy(
        [
            # L1 and L2 at the Table 8 shapes (scaled L3 from the preset).
            type(config.l3)(32 * 1024, 4, 2),
            type(config.l3)(256 * 1024, 8, 8),
            config.l3,
        ]
    )
    rng = np.random.default_rng(7)
    trace = filter_through_caches(raw_stream(rng), hierarchy)
    print(
        f"raw accesses: {RAW_ACCESSES:,}  ->  memory requests: {len(trace):,} "
        f"(filter rate {1 - len(trace) / RAW_ACCESSES:.1%})"
    )
    print(
        f"derived trace: MPKI={trace.mpki:.1f}  "
        f"write fraction={trace.write_fraction:.1%}  "
        f"footprint={trace.footprint_lines * 64 / 1024:.0f} KB touched"
    )
    for policy in ("pom", "mdm"):
        result = SimulationDriver(config, policy, [("derived", trace)]).run()
        print(
            f"{policy:5} IPC={result.program(0).ipc:.3f} "
            f"swaps={result.total_swaps} "
            f"stc_hit={result.stc_hit_rate:.1%}"
        )


if __name__ == "__main__":
    main()
