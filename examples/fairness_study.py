"""Fairness study: how RSM steers migration decisions.

Reproduces the paper's Figure 16 story on one workload: per-program
slowdowns under PoM, MDM alone, and ProFess, plus a look inside RSM —
the slowdown factors SF_A and SF_B it computes per program and the
Table 7 case counts showing how often each guidance rule fired.

Run with::

    python examples/fairness_study.py [workload]
"""

import sys

from repro import ExperimentRunner
from repro.workloads import WORKLOADS


def main(workload: str = "w19") -> None:
    runner = ExperimentRunner(
        scale=128, multi_requests=12_000, single_requests=12_000
    )
    programs = WORKLOADS[workload]
    print(f"Workload {workload}: {' + '.join(programs)}\n")

    metrics = {}
    for policy in ("pom", "mdm", "profess"):
        print(f"running {policy}...")
        metrics[policy] = runner.workload_metrics(workload, policy)

    print(f"\n{'program':12}{'pom':>8}{'mdm':>8}{'profess':>9}")
    for index, program in enumerate(programs):
        print(
            f"{program:12}"
            f"{metrics['pom'].slowdowns[index]:8.2f}"
            f"{metrics['mdm'].slowdowns[index]:8.2f}"
            f"{metrics['profess'].slowdowns[index]:9.2f}"
        )
    print(
        f"{'max':12}"
        + "".join(
            f"{metrics[p].unfairness:{w}.2f}"
            for p, w in (("pom", 8), ("mdm", 8), ("profess", 9))
        )
    )

    # Look inside ProFess: final slowdown factors and case counts.
    profess_run = runner.run_workload(workload, "profess")
    stats = profess_run.policy_stats
    history = profess_run.extra["rsm_history"]
    print("\nRSM slowdown factors (last sample per program):")
    for core, program in enumerate(programs):
        samples = [s for s in history if s.program == core]
        if samples:
            last = samples[-1]
            print(
                f"  core {core} ({program:10}): "
                f"SF_A={last.smoothed_sf_a:6.3f}  "
                f"SF_B={last.smoothed_sf_b:6.3f}"
            )
    print("\nTable 7 decision-case counts:")
    for case, count in stats.case_counts.items():
        label = {
            "1": "case 1 (help c_M2: consider M1 vacant)",
            "2": "case 2 (protect c_M1: no swap)",
            "3": "case 3 (product rule: no swap)",
            "default": "default (plain MDM)",
            "same": "same owner / vacant M1 (plain MDM)",
        }[case]
        print(f"  {label:42} {count:8d}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "w19")
