"""Extending the framework: plug in a custom migration policy.

The controller treats policies as pluggable strategy objects (Section 2.3
argues migration algorithms are orthogonal to the organization), so a new
algorithm only needs to implement
:class:`repro.policies.base.MigrationPolicy`.  This example implements a
simple *probabilistic coin-flip promoter* — promote an M2 block on each
access with probability 1/K — and races it against CAMEO, PoM, and MDM on
a single program.

Run with::

    python examples/custom_policy.py [program]
"""

import sys
from typing import Optional

import numpy as np

from repro.common.config import SystemConfig, paper_single_core
from repro.policies.base import AccessContext, MigrationPolicy
from repro.sim.engine import SimulationDriver
from repro.traces.generator import synthesize_trace

SCALE = 128
REQUESTS = 10_000


class CoinFlipPolicy(MigrationPolicy):
    """Promote each accessed M2 block with probability 1/K.

    In expectation a block is promoted after K accesses — the same
    average threshold as PoM's cost constant — but without any state:
    no counters, no thresholds, no statistics.  A useful straw man for
    how much MDM's *individual* cost-benefit analysis actually buys.
    """

    name = "coinflip"

    def __init__(self, config: SystemConfig) -> None:
        super().__init__(config)
        self.write_weight = config.write_access_weight
        self._rng = np.random.default_rng(1234)
        self._probability = 1.0 / config.pom.k

    def on_access(self, ctx: AccessContext) -> Optional[int]:
        if ctx.in_m1:
            return None
        if self._rng.random() < self._probability:
            return ctx.slot
        return None


def main(program: str = "soplex") -> None:
    config = paper_single_core(scale=SCALE)
    trace = synthesize_trace(program, REQUESTS, scale=SCALE, seed=0)
    print(f"{program}: {REQUESTS} requests, scale 1/{SCALE}\n")
    print(f"{'policy':10}{'IPC':>8}{'swaps':>8}{'M1 frac':>9}{'rd lat(cy)':>12}")
    for policy in ("static", "cameo", "pom", CoinFlipPolicy(config), "mdm"):
        driver = SimulationDriver(config, policy, [(program, trace)])
        result = driver.run()
        print(
            f"{result.policy:10}"
            f"{result.program(0).ipc:8.3f}"
            f"{result.total_swaps:8d}"
            f"{result.program(0).m1_fraction:9.1%}"
            f"{result.average_read_latency:12.1f}"
        )
    print(
        "\nExpected shape: coinflip beats nothing consistently — state-free "
        "promotion pays the swap cost without targeting reusable blocks; "
        "MDM's predicted-remaining-accesses test is what makes promotions "
        "selective."
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "soplex")
