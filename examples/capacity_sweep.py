"""Capacity-pressure sweep: how the M1:M2 ratio changes what management
is worth (Section 5.2's sensitivity, as a runnable study).

Holds M2 capacity and program footprints fixed while M1 shrinks from a
1:4 system (roomy) to 1:16 (starved), and reports ProFess vs PoM fairness
and performance at each point.  Expected shape (end of Section 5):
more M1 -> less competition -> smaller improvements; less M1 -> more
competition -> larger improvements.

Note: this demo uses short traces to stay fast, which truncates MDM's
statistics-learning period and RSM's sampling history, so the per-point
numbers understate steady-state gains (the full-length sweep behind
Figures 13-15 — ``profess run fig13`` — shows ProFess ahead of PoM).
Raise REQUESTS for steady-state behaviour.

Run with::

    python examples/capacity_sweep.py
"""

from repro.common.config import paper_quad_core
from repro.experiments.runner import ExperimentRunner

WORKLOAD = "w12"
BASE_SCALE = 128
#: Short for a quick demo; raise toward 30_000+ for steady-state numbers.
REQUESTS = 8_000


def main() -> None:
    runner = ExperimentRunner(
        scale=BASE_SCALE, multi_requests=REQUESTS, single_requests=REQUESTS
    )
    print(f"Workload {WORKLOAD}, M2 and footprints fixed, M1 swept:\n")
    print(
        f"{'ratio':>6}{'pom WS':>9}{'prf WS':>9}{'WS gain':>9}"
        f"{'pom unf':>9}{'prf unf':>9}{'unf gain':>10}"
    )
    for ratio in (4, 8, 16):
        # Keep M2 constant: M2 = (M1_paper / scale) * ratio, so the scale
        # divisor must move with the ratio (1:4 -> twice-larger M1).
        scale = BASE_SCALE * ratio // 8
        config = paper_quad_core(scale=scale, m2_to_m1_ratio=ratio)
        pom = runner.workload_metrics(WORKLOAD, "pom", config=config)
        profess = runner.workload_metrics(WORKLOAD, "profess", config=config)
        print(
            f"{'1:' + str(ratio):>6}"
            f"{pom.weighted_speedup:9.3f}"
            f"{profess.weighted_speedup:9.3f}"
            f"{profess.weighted_speedup / pom.weighted_speedup - 1:+9.1%}"
            f"{pom.unfairness:9.2f}"
            f"{profess.unfairness:9.2f}"
            f"{1 - profess.unfairness / pom.unfairness:+10.1%}"
        )


if __name__ == "__main__":
    main()
