"""Shared-memory transport suite: frames, parity, and chaos recovery.

Three layers of coverage for DESIGN.md §17:

* frame mechanics — write/read roundtrips, the digest's identity with
  the disk cache's canonical form, remap-on-growth, and every corruption
  class the reader must refuse;
* transport parity — the same wave under ``pickle`` and ``shm`` (serial
  and pooled) is byte-identical via :func:`repro.sim.golden.
  result_digest`, and a cache written under one transport hits under
  the other;
* chaos convergence — workers killed mid-frame-write and frames
  truncated in transit are absorbed by the retry policy and the wave
  still converges to clean-serial digests.
"""

import pytest

from repro.common.config import paper_single_core
from repro.common.errors import InvalidValueError
from repro.exec import Executor, ListReducer, ResultCache, RetryPolicy, RunSpec
from repro.exec.cache import payload_digest
from repro.exec.chaos import (
    ACTION_FRAME_CORRUPT,
    ACTION_FRAME_KILL,
    ChaosPlan,
)
from repro.exec.executor import execute_spec
from repro.exec.transport import (
    FRAME_MAGIC,
    HEADER_SIZE,
    FrameCorruptionError,
    FrameHandle,
    FrameReader,
    FrameWriter,
    encode_result,
    resolve_transport,
)
from repro.sim.golden import result_digest

SCALE = 128
CONFIG = paper_single_core(scale=SCALE)
PROGRAMS = ("zeusmp", "lbm", "mcf", "libquantum")
POLICIES = ("pom", "mdm")


def all_specs() -> list[RunSpec]:
    return [
        RunSpec(
            kind="single",
            programs=(program,),
            policy=policy,
            config=CONFIG,
            requests=400,
            seed=0,
            trace_scale=SCALE,
        )
        for program in PROGRAMS
        for policy in POLICIES
    ]


@pytest.fixture(scope="module")
def one_result():
    spec = all_specs()[0]
    return spec, execute_spec(spec)


@pytest.fixture(scope="module")
def clean_digests():
    specs = all_specs()
    results = Executor(jobs=1, transport="pickle").run_many(specs)
    return {
        spec.cache_key(): result_digest(result)
        for spec, result in zip(specs, results)
    }


class TestResolveTransport:
    def test_auto_is_pickle_serial(self):
        assert resolve_transport("auto", jobs=1) == "pickle"

    def test_auto_is_shm_pooled(self):
        assert resolve_transport("auto", jobs=4) == "shm"

    @pytest.mark.parametrize("name", ["pickle", "shm"])
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_explicit_names_resolve_to_themselves(self, name, jobs):
        assert resolve_transport(name, jobs) == name

    def test_unknown_transport_rejected(self):
        with pytest.raises(InvalidValueError):
            resolve_transport("carrier-pigeon", jobs=1)

    def test_executor_validates_transport_eagerly(self):
        with pytest.raises(InvalidValueError):
            Executor(transport="bogus")


class TestFrameMechanics:
    def test_roundtrip(self, tmp_path, one_result):
        spec, result = one_result
        writer = FrameWriter(tmp_path)
        handle = writer.write(spec.cache_key(), encode_result(result), 1.5)
        writer.close()
        reader = FrameReader(tmp_path)
        restored, elapsed = reader.read(handle)
        reader.close()
        assert restored.to_dict() == result.to_dict()
        assert elapsed == 1.5

    def test_frame_digest_equals_cache_digest(self, one_result):
        # The transport and cache integrity stamps hash the same
        # canonical serialization — the contracts cannot drift apart.
        _, result = one_result
        import hashlib

        frame_digest = hashlib.sha256(encode_result(result)).hexdigest()
        assert frame_digest == payload_digest(result.to_dict())

    def test_remap_on_growth(self, tmp_path, one_result):
        # The reader maps a segment once, then remaps only when a later
        # handle points past the mapped size (concurrent appends).
        spec, result = one_result
        payload = encode_result(result)
        writer = FrameWriter(tmp_path)
        first = writer.write(spec.cache_key(), payload)
        reader = FrameReader(tmp_path)
        assert reader.read(first)[0].to_dict() == result.to_dict()
        second = writer.write(spec.cache_key(), payload)
        assert second.offset == first.offset + HEADER_SIZE + len(payload)
        assert reader.read(second)[0].to_dict() == result.to_dict()
        writer.close()
        reader.close()

    def test_truncated_payload_rejected(self, tmp_path, one_result):
        spec, result = one_result
        payload = encode_result(result)
        writer = FrameWriter(tmp_path)
        handle = writer.write(
            spec.cache_key(), payload, keep=HEADER_SIZE + len(payload) - 7
        )
        writer.close()
        with pytest.raises(FrameCorruptionError):
            FrameReader(tmp_path).read(handle)

    def test_half_written_frame_rejected(self, tmp_path, one_result):
        # A worker killed mid-write leaves half a frame: the segment is
        # shorter than the handle claims.
        spec, result = one_result
        payload = encode_result(result)
        writer = FrameWriter(tmp_path)
        handle = writer.write(
            spec.cache_key(), payload, keep=HEADER_SIZE + len(payload) // 2
        )
        writer.close()
        with pytest.raises(FrameCorruptionError):
            FrameReader(tmp_path).read(handle)

    def test_wrong_offset_rejected(self, tmp_path, one_result):
        spec, result = one_result
        payload = encode_result(result)
        writer = FrameWriter(tmp_path)
        writer.write(spec.cache_key(), payload)
        good = writer.write(spec.cache_key(), payload)
        writer.close()
        skewed = FrameHandle(
            segment=good.segment,
            offset=good.offset - 1,
            length=good.length,
            sha256=good.sha256,
            key=good.key,
            elapsed=good.elapsed,
        )
        with pytest.raises(FrameCorruptionError):
            FrameReader(tmp_path).read(skewed)

    def test_flipped_payload_byte_rejected(self, tmp_path, one_result):
        spec, result = one_result
        payload = encode_result(result)
        writer = FrameWriter(tmp_path)
        handle = writer.write(spec.cache_key(), payload)
        writer.close()
        path = tmp_path / handle.segment
        data = bytearray(path.read_bytes())
        data[HEADER_SIZE + 5] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(FrameCorruptionError):
            FrameReader(tmp_path).read(handle)

    def test_missing_segment_rejected(self, tmp_path, one_result):
        spec, result = one_result
        handle = FrameHandle(
            segment="frames-0.bin",
            offset=0,
            length=10,
            sha256="0" * 64,
            key=spec.cache_key(),
            elapsed=0.0,
        )
        with pytest.raises(FrameCorruptionError):
            FrameReader(tmp_path).read(handle)

    def test_header_layout(self, tmp_path, one_result):
        spec, result = one_result
        payload = encode_result(result)
        writer = FrameWriter(tmp_path)
        handle = writer.write(spec.cache_key(), payload)
        writer.close()
        raw = (tmp_path / handle.segment).read_bytes()
        assert raw[:4] == FRAME_MAGIC
        assert raw[5:69] == spec.cache_key().encode("ascii")
        assert int.from_bytes(raw[69:77], "big") == len(payload)
        assert len(raw) == HEADER_SIZE + len(payload)

    def test_bad_key_length_rejected(self, tmp_path):
        writer = FrameWriter(tmp_path)
        with pytest.raises(InvalidValueError):
            writer.write("short-key", b"{}")
        writer.close()


class TestTransportParity:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_shm_matches_pickle(self, jobs, clean_digests):
        specs = all_specs()
        executor = Executor(jobs=jobs, transport="shm")
        results = executor.run_many(specs)
        assert executor.executed == len(specs)
        assert {
            spec.cache_key(): result_digest(result)
            for spec, result in zip(specs, results)
        } == clean_digests

    def test_cache_transfers_across_transports(self, tmp_path, clean_digests):
        # A cache populated under shm must hit under pickle (and vice
        # versa): transport is an execution detail, never a result
        # detail, exactly like mem_backend.
        specs = all_specs()
        cold = Executor(jobs=2, transport="shm", cache=ResultCache(tmp_path))
        cold.run_many(specs)
        assert cold.executed == len(specs)
        warm = Executor(
            jobs=1, transport="pickle", cache=ResultCache(tmp_path)
        )
        results = warm.run_many(specs)
        assert warm.executed == 0
        assert {
            spec.cache_key(): result_digest(result)
            for spec, result in zip(specs, results)
        } == clean_digests

    def test_streaming_reducer_matches_materialized(self, clean_digests):
        specs = all_specs()
        reducer = ListReducer()
        wave = Executor(jobs=2, transport="shm").run_wave(
            specs, reducer=reducer
        )
        # With a reducer the wave returns placeholders only.
        assert wave.results == [None] * len(specs)
        assert wave.failures == []
        assert {
            key: result_digest(result)
            for key, result in reducer.by_key.items()
        } == clean_digests


def find_frame_plan(keys: list[str], kind: str) -> ChaosPlan:
    """A seeded plan injecting ``kind`` into some (not all) keys."""
    rates = {
        ACTION_FRAME_KILL: dict(frame_kill_rate=0.3),
        ACTION_FRAME_CORRUPT: dict(frame_corrupt_rate=0.3),
    }[kind]
    for seed in range(500):
        plan = ChaosPlan(seed=seed, **rates)
        victims = plan.frame_victims(keys)
        if victims and len(victims) < len(keys):
            return plan
    raise AssertionError(f"no seed yields a proper subset of {kind} victims")


class TestFrameChaos:
    @pytest.mark.parametrize("kind", [ACTION_FRAME_KILL, ACTION_FRAME_CORRUPT])
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_frame_faults_recover_byte_identically(
        self, kind, jobs, clean_digests
    ):
        # A worker lost mid-frame-write (the handle never arrives) and a
        # frame truncated in transit (the handle arrives but the digest
        # check refuses the bytes) are both transient transport losses:
        # the retry policy re-attempts them and the wave converges to
        # clean-serial digests.  Chaos injects attempt 1 only, so the
        # recovery is deterministic.
        specs = all_specs()
        keys = [spec.cache_key() for spec in specs]
        plan = find_frame_plan(keys, kind)
        victims = plan.frame_victims(keys)
        executor = Executor(
            jobs=jobs,
            transport="shm",
            retry=RetryPolicy(retries=2, backoff_base=0.0),
            chaos=plan,
        )
        results = executor.run_many(specs)  # raises if anything failed
        assert executor.failures == []
        assert executor.retried >= len(victims)
        assert {
            spec.cache_key(): result_digest(result)
            for spec, result in zip(specs, results)
        } == clean_digests
