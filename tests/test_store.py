"""Result persistence and paper-report tests."""

from repro.experiments.base import ExperimentResult
from repro.experiments.paper_report import EXPECTATIONS
from repro.experiments.registry import EXPERIMENTS
from repro.experiments.store import ResultStore, load_result, save_result


def sample_result():
    return ExperimentResult(
        experiment_id="fig5",
        title="test",
        headers=["program", "ratio"],
        rows=[["lbm", 1.38], ["omnetpp", 0.985]],
        summary={"geomean": 1.14, "best_key": "lbm", "best_improvement": 0.38},
        notes="note",
    )


class TestStore:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "r.json"
        save_result(sample_result(), path)
        loaded = load_result(path)
        assert loaded.experiment_id == "fig5"
        assert loaded.rows[0] == ["lbm", 1.38]
        assert loaded.summary["geomean"] == 1.14
        assert loaded.notes == "note"

    def test_store_by_id(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save(sample_result())
        assert store.ids() == ["fig5"]
        assert store.load("fig5").title == "test"

    def test_missing_returns_none(self, tmp_path):
        assert ResultStore(tmp_path).load("nope") is None

    def test_non_jsonable_values_stringified(self, tmp_path):
        result = sample_result()
        result.summary["obj"] = object()
        path = tmp_path / "r.json"
        save_result(result, path)
        assert isinstance(load_result(path).summary["obj"], str)


class TestExpectations:
    def test_every_paper_artifact_has_expectation(self):
        paper_ids = {
            experiment_id
            for experiment_id in EXPERIMENTS
            if not experiment_id.startswith(("ablation", "ext"))
        }
        assert paper_ids <= set(EXPECTATIONS)

    def test_measured_extractors_run(self):
        expectation = EXPECTATIONS["fig5"]
        text = expectation.measured(sample_result())
        assert "+14" in text and "lbm" in text

    def test_shape_check_fig5(self):
        assert EXPECTATIONS["fig5"].shape_holds(sample_result())

    def test_shape_check_fails_below_one(self):
        bad = sample_result()
        bad.summary["geomean"] = 0.9
        assert not EXPECTATIONS["fig5"].shape_holds(bad)
