"""Golden determinism: the fast-path kernel is byte-identical to the seed.

The blobs in ``tests/golden/`` were captured from the pre-optimization
kernel (commit a771054) with the exact scenarios reproduced below: same
configs, same traces, same seeds.  Every result field — cycles, swap
counts, per-program IPC, energy, MDM/RSM stats — must match to the byte
after any kernel change.  A diff here means event ordering, timing
arithmetic, or stats accounting changed, which the performance work must
never do.

Regenerate the blobs ONLY when a change is *intended* to alter
simulation results, and say so explicitly in the commit message.
"""

import json
from pathlib import Path

import pytest

from repro.sim.golden import (
    GOLDEN_SCENARIOS,
    check_against_blobs,
    golden_digests,
    golden_text,
)

GOLDEN_DIR = Path(__file__).parent / "golden"


@pytest.mark.parametrize("name", sorted(GOLDEN_SCENARIOS))
def test_result_matches_golden_blob(name):
    expected = (GOLDEN_DIR / f"{name}.json").read_text()
    # golden_text serializes exactly as the capture script did so the
    # comparison is byte-for-byte: any drift in values OR in to_dict()
    # structure fails.
    current_text = golden_text(name)
    if current_text != expected:
        golden = json.loads(expected)
        current = json.loads(current_text)
        diffs = _dict_diff(golden, current)
        pytest.fail(
            f"{name} diverged from golden blob "
            f"({len(diffs)} differing paths):\n"
            + "\n".join(diffs[:20])
        )


def test_check_against_blobs_passes_on_checked_in_goldens():
    assert check_against_blobs(GOLDEN_DIR) == {}


def test_check_against_blobs_reports_missing_and_differing(tmp_path):
    problems = check_against_blobs(tmp_path)
    assert set(problems) == set(GOLDEN_SCENARIOS)
    assert all("missing blob" in problem for problem in problems.values())
    (tmp_path / "single_pom.json").write_text("{}\n")
    problems = check_against_blobs(tmp_path)
    assert "differs" in problems["single_pom"]


def test_golden_digests_cover_every_scenario_and_are_stable():
    first = golden_digests()
    assert set(first) == set(GOLDEN_SCENARIOS)
    assert all(len(digest) == 64 for digest in first.values())
    # Two in-process regenerations must agree — the weak, same-version
    # form of the CI cross-version determinism gate.
    assert golden_digests() == first


def _dict_diff(expected, actual, path=""):
    """Flat list of 'path: expected != actual' strings for the failure
    message — the raw blobs are thousands of lines."""
    diffs = []
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual)):
            sub = f"{path}.{key}" if path else str(key)
            if key not in expected:
                diffs.append(f"{sub}: unexpected key")
            elif key not in actual:
                diffs.append(f"{sub}: missing key")
            else:
                diffs.extend(_dict_diff(expected[key], actual[key], sub))
    elif isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            diffs.append(
                f"{path}: length {len(expected)} != {len(actual)}"
            )
        else:
            for index, (e, a) in enumerate(zip(expected, actual)):
                diffs.extend(_dict_diff(e, a, f"{path}[{index}]"))
    elif expected != actual:
        diffs.append(f"{path}: {expected!r} != {actual!r}")
    return diffs
