"""Golden determinism: the fast-path kernel is byte-identical to the seed.

The blobs in ``tests/golden/`` were captured from the pre-optimization
kernel (commit a771054) with the exact scenarios reproduced below: same
configs, same traces, same seeds.  Every result field — cycles, swap
counts, per-program IPC, energy, MDM/RSM stats — must match to the byte
after any kernel change.  A diff here means event ordering, timing
arithmetic, or stats accounting changed, which the performance work must
never do.

Regenerate the blobs ONLY when a change is *intended* to alter
simulation results, and say so explicitly in the commit message.
"""

import json
from pathlib import Path

import pytest

from repro.common.config import paper_quad_core, paper_single_core
from repro.sim.engine import SimulationDriver
from repro.traces.generator import synthesize_trace

GOLDEN_DIR = Path(__file__).parent / "golden"


def _single_pom_driver():
    config = paper_single_core(scale=128)
    traces = [("zeusmp", synthesize_trace("zeusmp", 1500, scale=128, seed=0))]
    return SimulationDriver(config, "pom", traces, seed=0)


def _quad_profess_driver():
    config = paper_quad_core(scale=128)
    traces = [
        ("zeusmp", synthesize_trace("zeusmp", 1200, scale=128, seed=0)),
        ("leslie3d", synthesize_trace("leslie3d", 800, scale=128, seed=1)),
        ("mcf", synthesize_trace("mcf", 800, scale=128, seed=2)),
        ("libquantum", synthesize_trace("libquantum", 800, scale=128, seed=3)),
    ]
    return SimulationDriver(config, "profess", traces, seed=0)


SCENARIOS = {
    "single_pom": _single_pom_driver,
    "quad_profess": _quad_profess_driver,
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_result_matches_golden_blob(name):
    golden_text = (GOLDEN_DIR / f"{name}.json").read_text()
    result = SCENARIOS[name]().run()
    # Serialize exactly as the capture script did so the comparison is
    # byte-for-byte: any drift in values OR in to_dict() structure fails.
    current_text = (
        json.dumps(result.to_dict(), indent=1, sort_keys=True) + "\n"
    )
    if current_text != golden_text:
        golden = json.loads(golden_text)
        current = json.loads(current_text)
        diffs = _dict_diff(golden, current)
        pytest.fail(
            f"{name} diverged from golden blob "
            f"({len(diffs)} differing paths):\n"
            + "\n".join(diffs[:20])
        )


def _dict_diff(expected, actual, path=""):
    """Flat list of 'path: expected != actual' strings for the failure
    message — the raw blobs are thousands of lines."""
    diffs = []
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual)):
            sub = f"{path}.{key}" if path else str(key)
            if key not in expected:
                diffs.append(f"{sub}: unexpected key")
            elif key not in actual:
                diffs.append(f"{sub}: missing key")
            else:
                diffs.extend(_dict_diff(expected[key], actual[key], sub))
    elif isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            diffs.append(
                f"{path}: length {len(expected)} != {len(actual)}"
            )
        else:
            for index, (e, a) in enumerate(zip(expected, actual)):
                diffs.extend(_dict_diff(e, a, f"{path}[{index}]"))
    elif expected != actual:
        diffs.append(f"{path}: {expected!r} != {actual!r}")
    return diffs
