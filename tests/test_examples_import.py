"""Examples stay importable (full runs are exercised manually; each
example guards its work behind ``if __name__ == "__main__"``)."""

import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    pathlib.Path(__file__).resolve().parent.parent.glob("examples/*.py")
)


@pytest.mark.parametrize(
    "path", EXAMPLES, ids=[p.stem for p in EXAMPLES]
)
def test_example_imports(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert hasattr(module, "main"), f"{path.stem} must expose main()"


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "fairness_study",
        "custom_policy",
        "capacity_sweep",
        "cache_filtered_trace",
        "multithreaded",
    } <= names
