"""Statistics helper tests (box plots, geomean — Figure 5 machinery)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.common.stats import (
    boxplot_stats,
    geomean,
    mean,
    percentile,
    stddev,
)


class TestGeomean:
    def test_simple(self):
        assert geomean([2, 8]) == pytest.approx(4.0)

    def test_single(self):
        assert geomean([3.5]) == pytest.approx(3.5)

    def test_identity(self):
        assert geomean([1.0, 1.0, 1.0]) == pytest.approx(1.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    @given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1))
    def test_between_min_and_max(self, values):
        g = geomean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9

    @given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1))
    def test_at_most_arithmetic_mean(self, values):
        assert geomean(values) <= mean(values) + 1e-9


class TestMeanStd:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2

    def test_stddev_constant_is_zero(self):
        assert stddev([4, 4, 4]) == 0

    def test_stddev_known(self):
        assert stddev([0, 2]) == pytest.approx(1.0)

    def test_mean_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])


class TestPercentile:
    def test_median_odd(self):
        assert percentile([1, 2, 3], 0.5) == 2

    def test_median_even_interpolates(self):
        assert percentile([1, 2, 3, 4], 0.5) == pytest.approx(2.5)

    def test_min_max(self):
        data = [5, 7, 9]
        assert percentile(data, 0.0) == 5
        assert percentile(data, 1.0) == 9

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            percentile([1], 1.5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)


class TestBoxplot:
    def test_known_quartiles(self):
        stats = boxplot_stats([1, 2, 3, 4, 5])
        assert stats.median == 3
        assert stats.q1 == 2
        assert stats.q3 == 4

    def test_outlier_detection(self):
        data = [10, 11, 12, 13, 14, 100]
        stats = boxplot_stats(data)
        assert 100 in stats.outliers
        assert stats.maximum < 100  # whisker excludes the outlier

    def test_no_outliers_whiskers_are_range(self):
        data = [1.0, 2.0, 3.0]
        stats = boxplot_stats(data)
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0
        assert stats.outliers == ()

    def test_geometric_mean_included(self):
        stats = boxplot_stats([2.0, 8.0])
        assert stats.geometric_mean == pytest.approx(4.0)

    def test_iqr(self):
        stats = boxplot_stats([1, 2, 3, 4, 5])
        assert stats.iqr == 2

    @given(st.lists(st.floats(min_value=0.1, max_value=10), min_size=1))
    def test_invariants(self, values):
        stats = boxplot_stats(values)
        assert stats.q1 <= stats.median <= stats.q3
        assert stats.minimum <= stats.maximum
        low_fence = stats.q1 - 1.5 * stats.iqr
        high_fence = stats.q3 + 1.5 * stats.iqr
        for outlier in stats.outliers:
            assert outlier < low_fence or outlier > high_fence
        assert not math.isnan(stats.geometric_mean)
