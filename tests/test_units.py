"""Unit-conversion and arithmetic helper tests."""

import pytest
from hypothesis import given, strategies as st

from repro.common.units import (
    CPU_CYCLES_PER_CHANNEL_CYCLE,
    GB,
    KB,
    MB,
    cpu_cycles_from_ns,
    is_power_of_two,
    log2_exact,
    ns_from_cpu_cycles,
)


class TestSizes:
    def test_kb(self):
        assert KB == 1024

    def test_mb(self):
        assert MB == 1024 * 1024

    def test_gb(self):
        assert GB == 1024**3


class TestCycleConversion:
    def test_trcd_dram(self):
        # 13.75 ns at 3.2 GHz = 44 cycles exactly.
        assert cpu_cycles_from_ns(13.75) == 44

    def test_trcd_nvm(self):
        assert cpu_cycles_from_ns(137.5) == 440

    def test_twr_nvm(self):
        assert cpu_cycles_from_ns(275.0) == 880

    def test_rounds_up(self):
        # 1 ns at 3.2 GHz = 3.2 cycles -> 4.
        assert cpu_cycles_from_ns(1.0) == 4

    def test_zero(self):
        assert cpu_cycles_from_ns(0.0) == 0

    def test_channel_ratio(self):
        assert CPU_CYCLES_PER_CHANNEL_CYCLE == 4

    def test_roundtrip_close(self):
        cycles = cpu_cycles_from_ns(100.0)
        assert ns_from_cpu_cycles(cycles) == pytest.approx(100.0, rel=0.02)

    @given(st.floats(min_value=0.001, max_value=1e6))
    def test_never_undershoots(self, ns):
        # Rounding up means the cycle count always covers the constraint.
        assert ns_from_cpu_cycles(cpu_cycles_from_ns(ns)) >= ns - 1e-6


class TestPowersOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 4, 1024, 1 << 30])
    def test_positive_cases(self, value):
        assert is_power_of_two(value)

    @pytest.mark.parametrize("value", [0, -2, 3, 6, 1000])
    def test_negative_cases(self, value):
        assert not is_power_of_two(value)

    def test_log2_exact(self):
        assert log2_exact(1024) == 10

    def test_log2_exact_one(self):
        assert log2_exact(1) == 0

    def test_log2_rejects_non_power(self):
        with pytest.raises(ValueError):
            log2_exact(12)

    @given(st.integers(min_value=0, max_value=60))
    def test_log2_roundtrip(self, exponent):
        assert log2_exact(1 << exponent) == exponent
