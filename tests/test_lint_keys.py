"""Unit tests for the cache-key soundness checker (K4xx).

The acceptance contract for the rule family: deleting a field from a
``cache_token()`` walk without recording it on ``_CACHE_NEUTRAL_FIELDS``
must produce a K401 finding whose trace names the uncovered read site.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.lint import Finding, lint_sources

FIXTURES = Path(__file__).parent / "lint_fixtures"


def _lint(
    name: str,
    module: str = "repro.sim.fixture",
    select: Optional[str] = None,
    ignore: Optional[str] = None,
    extra: Optional[dict[str, str]] = None,
) -> list[Finding]:
    path = FIXTURES / f"{name}.py"
    sources = {module: (str(path), path.read_text(encoding="utf-8"))}
    if extra:
        for mod, text in extra.items():
            sources[mod] = (f"<{mod}>", text)
    return lint_sources(
        sources,
        select=select,
        ignore=ignore,
        hot_classes=frozenset(),
        hot_functions=frozenset(),
        batch_functions=frozenset(),
    )


class TestK401:
    def test_deleted_field_read_is_reported_with_trace(self):
        # The acceptance check: drop a field from the token walk, read
        # it elsewhere — K401 must point at the read site by name.
        (finding,) = _lint("k401_bad", select="K401")
        assert finding.rule == "K401"
        assert "debug_level" in finding.message
        assert "cache_token" in finding.message
        assert finding.line == 24  # the `config.debug_level` read
        notes = [step.note for step in finding.trace]
        assert any("declared" in note for note in notes)
        assert any("excludes" in note for note in notes)

    def test_allowlisted_exclusion_is_silent(self):
        assert _lint("k401_good", select="K401") == []

    def test_read_in_other_module_is_still_found(self):
        # K401 is a whole-project pass: the key class and the read may
        # live in different modules.
        reader = (
            "def consume(config: 'MiniConfig'):\n"
            "    return config.debug_level\n"
        )
        findings = _lint(
            "k401_good",
            select="K401",
            extra={"repro.sim.other": reader},
        )
        # k401_good allowlists debug_level, so even the remote read is
        # fine; drop the allowlist (k401_bad) and it is not.
        assert findings == []
        findings = _lint(
            "k401_bad",
            select="K401",
            extra={"repro.sim.other": reader},
        )
        assert len(findings) == 2  # both read sites reported


class TestK402:
    def test_stale_entries_fire_once_each(self):
        findings = _lint("k402_bad", select="K402")
        assert len(findings) == 2
        messages = " ".join(f.message for f in findings)
        assert "ghost" in messages  # names no dataclass field
        assert "size" in messages  # covered by the walk already

    def test_exact_allowlist_is_silent(self):
        assert _lint("k402_good", select="K402") == []


class TestK403:
    def test_impure_helper_reachable_from_token(self):
        findings = _lint("k403_bad", select="K403")
        assert findings
        assert any("os.environ" in f.message for f in findings)
        for finding in findings:
            assert "cache_token" in finding.message

    def test_pure_fold_is_silent(self):
        assert _lint("k403_good", select="K403") == []

    def test_ignore_k_family_silences_all(self):
        assert _lint("k403_bad", select="K", ignore="K") == []
