"""Execution-subsystem tests: RunSpec keys, disk cache, parallelism."""

from dataclasses import replace

import pytest

from repro.common.config import (
    MDMConfig,
    paper_quad_core,
    paper_single_core,
)
from repro.exec import (
    CACHE_VERSION,
    Executor,
    ResultCache,
    RunSpec,
    execute_spec,
)
from repro.exec import cache as cache_module
from repro.experiments.registry import run_experiment
from repro.experiments.runner import ExperimentRunner

SCALE = 128
CONFIG = paper_single_core(scale=SCALE)


def _cache_worker(directory: str, worker: int) -> str:
    """Interleave puts and gets against a shared cache (spawn target)."""
    cache = ResultCache(directory)
    s = spec()
    result = execute_spec(s)
    for _ in range(20):
        if worker == 0:
            cache.put(s, result)
        restored = cache.get(s)  # a miss is legal; an exception is not
        if restored is not None and restored.to_dict() != result.to_dict():
            return "mismatch"
    cache.put(s, result)
    return "ok"


def spec(**overrides) -> RunSpec:
    base = dict(
        kind="single",
        programs=("zeusmp",),
        policy="pom",
        config=CONFIG,
        requests=800,
        seed=0,
        trace_scale=SCALE,
    )
    base.update(overrides)
    return RunSpec(**base)


class TestRunSpecKeys:
    def test_same_spec_same_key(self):
        assert spec().cache_key() == spec().cache_key()

    def test_key_is_hex_digest(self):
        key = spec().cache_key()
        assert len(key) == 64
        int(key, 16)

    @pytest.mark.parametrize(
        "change",
        [
            {"kind": "alone"},
            {"programs": ("lbm",)},
            {"programs": ("zeusmp", "zeusmp")},
            {"policy": "mdm"},
            {"requests": 801},
            {"seed": 1},
            {"trace_scale": SCALE * 2},
            {"track_rsm_regions": True},
        ],
    )
    def test_any_field_change_changes_key(self, change):
        assert spec(**change).cache_key() != spec().cache_key()

    def test_config_change_changes_key(self):
        tweaked = replace(CONFIG, mdm=MDMConfig(min_benefit=9.0))
        assert spec(config=tweaked).cache_key() != spec().cache_key()

    def test_key_stable_across_config_rebuild(self):
        # A freshly built but identical config hashes identically (the
        # old repr()-based token was only identity-stable by accident).
        assert (
            spec(config=paper_single_core(scale=SCALE)).cache_key()
            == spec().cache_key()
        )

    def test_cache_token_equals_for_equal_configs(self):
        assert (
            paper_quad_core(scale=SCALE).cache_token()
            == paper_quad_core(scale=SCALE).cache_token()
        )
        assert (
            paper_quad_core(scale=SCALE).cache_token()
            != paper_single_core(scale=SCALE).cache_token()
        )

    def test_specs_are_hashable(self):
        assert len({spec(), spec(), spec(policy="mdm")}) == 2

    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            spec(kind="bogus")


class TestResultCache:
    def test_miss_then_hit_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        s = spec()
        assert cache.get(s) is None
        result = execute_spec(s)
        cache.put(s, result)
        restored = cache.get(s)
        assert restored is not None
        assert restored.to_dict() == result.to_dict()
        assert cache.stats() == {
            "hits": 1,
            "misses": 1,
            "stores": 1,
            "quarantined": 0,
            "store_errors": 0,
        }

    def test_version_mismatch_is_miss(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        s = spec()
        cache.put(s, execute_spec(s))
        monkeypatch.setattr(cache_module, "CACHE_VERSION", CACHE_VERSION + 1)
        assert cache.get(s) is None
        assert cache.misses == 1

    def test_corrupt_entry_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        s = spec()
        cache.put(s, execute_spec(s))
        cache._path(s.cache_key()).write_text("{not json")
        assert cache.get(s) is None

    def test_truncated_entry_quarantined_once(self, tmp_path):
        # A process killed mid-write leaves a partial payload: the entry
        # must read as a miss, move to quarantine/ exactly once, and
        # never raise on later lookups.
        cache = ResultCache(tmp_path)
        s = spec()
        path = cache.put(s, execute_spec(s))
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        assert cache.get(s) is None
        assert cache.quarantined == 1
        assert cache.quarantine_count() == 1
        assert not path.exists()  # moved, not copied
        # The next lookup is a plain miss: nothing new to quarantine.
        assert cache.get(s) is None
        assert cache.quarantined == 1

    def test_digest_tamper_is_quarantined_miss(self, tmp_path):
        import json as json_module

        cache = ResultCache(tmp_path)
        s = spec()
        path = cache.put(s, execute_spec(s))
        payload = json_module.loads(path.read_text())
        payload["result"]["total_cycles"] = 12345  # bit-flip the payload
        path.write_text(json_module.dumps(payload))
        assert cache.get(s) is None
        assert cache.quarantined == 1

    def test_read_only_cache_never_raises(self, tmp_path, monkeypatch):
        # chmod is unreliable under root, so a read-only directory is
        # simulated at the rename layer every mutation funnels through.
        cache = ResultCache(tmp_path)
        s = spec()
        result = execute_spec(s)
        cache.put(s, result)
        cache._path(s.cache_key()).write_text("{not json")
        monkeypatch.setattr(
            cache_module.os,
            "replace",
            lambda *args: (_ for _ in ()).throw(PermissionError("read-only")),
        )
        # Corrupt entry in a read-only directory: quarantine is
        # impossible, but the lookup must still be a quiet miss.
        assert cache.get(s) is None
        assert cache.quarantined == 0
        # And writes degrade to counted no-ops instead of raising.
        cache.put(s, result)
        assert cache.store_errors == 1

    def test_concurrent_put_get_two_processes(self, tmp_path):
        # Two processes hammering the same entry: atomic temp+rename
        # writes mean every read sees a complete payload or a miss.
        import multiprocessing

        s = spec()
        result = execute_spec(s)
        context = multiprocessing.get_context("spawn")
        with context.Pool(2) as pool:
            outcomes = pool.starmap(
                _cache_worker,
                [(str(tmp_path), 0), (str(tmp_path), 1)],
            )
        assert all(outcome == "ok" for outcome in outcomes)
        restored = ResultCache(tmp_path).get(s)
        assert restored is not None
        assert restored.to_dict() == result.to_dict()

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        s = spec()
        cache.put(s, execute_spec(s))
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_policy_stats_survive_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        s = spec(policy="profess", programs=("zeusmp",), requests=1200)
        result = execute_spec(s)
        cache.put(s, result)
        restored = cache.get(s)
        assert restored.policy_stats is not None
        assert restored.policy_stats.name == "profess"
        assert restored.policy_stats.case_counts == (
            result.policy_stats.case_counts
        )

    def test_rsm_history_survives_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        s = spec(requests=1500, track_rsm_regions=True)
        result = execute_spec(s)
        cache.put(s, result)
        restored = cache.get(s)
        history = restored.extra["rsm_history"]
        assert [h.program for h in history] == [
            h.program for h in result.extra["rsm_history"]
        ]


class TestExecutor:
    def _specs(self):
        return [
            spec(programs=(p,), policy=policy, requests=600)
            for p in ("zeusmp", "lbm")
            for policy in ("pom", "mdm")
        ]

    def test_results_align_with_submission_order(self):
        specs = self._specs()
        results = Executor(jobs=1).run_many(specs)
        assert [r.policy for r in results] == ["pom", "mdm", "pom", "mdm"]
        assert results[0].program(0).name == "zeusmp"
        assert results[2].program(0).name == "lbm"

    def test_duplicates_execute_once(self):
        executor = Executor(jobs=1)
        results = executor.run_many([spec(), spec(), spec()])
        assert executor.executed == 1
        assert results[0] is results[1] is results[2]

    def test_parallel_identical_to_serial(self):
        specs = self._specs()
        serial = Executor(jobs=1).run_many(specs)
        parallel = Executor(jobs=2).run_many(specs)
        assert [r.to_dict() for r in serial] == [
            r.to_dict() for r in parallel
        ]

    def test_events_reported(self, tmp_path):
        events = []
        cache = ResultCache(tmp_path)
        executor = Executor(jobs=1, cache=cache, on_run=events.append)
        executor.run(spec())
        executor2 = Executor(jobs=1, cache=cache, on_run=events.append)
        executor2.run(spec())
        assert [e.source for e in events] == ["serial", "cache"]
        assert executor2.executed == 0


class TestRunnerIntegration:
    def test_prefetch_memoizes(self):
        runner = ExperimentRunner(
            scale=SCALE, multi_requests=600, single_requests=600
        )
        specs = [
            runner.spec_single("zeusmp", "pom"),
            runner.spec_single("zeusmp", "mdm"),
        ]
        runner.prefetch(specs)
        assert runner.executor.executed == 2
        first = runner.run_single("zeusmp", "pom")
        assert runner.executor.executed == 2  # served from the memo
        assert first is runner.run_single("zeusmp", "pom")

    def test_parallel_figure_matches_serial(self, tmp_path):
        """jobs=2 produces results identical to serial for one figure."""
        kwargs = dict(scale=SCALE, multi_requests=700, single_requests=700)
        serial = run_experiment("fig7", ExperimentRunner(**kwargs))
        parallel_runner = ExperimentRunner(
            jobs=2, cache_dir=tmp_path / "cache", **kwargs
        )
        parallel = run_experiment("fig7", parallel_runner)
        assert parallel.render() == serial.render()
        # And a warm rerun from disk is also identical, with no new sims.
        warm_runner = ExperimentRunner(
            jobs=2, cache_dir=tmp_path / "cache", **kwargs
        )
        warm = run_experiment("fig7", warm_runner)
        assert warm.render() == serial.render()
        assert warm_runner.executor.executed == 0
