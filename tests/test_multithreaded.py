"""Multi-threaded program support (Section 3.1.1): all threads of a
program share one program id, one private region, and one address space."""

import pytest

from repro.common.config import paper_quad_core
from repro.common.errors import ConfigError
from repro.common.events import EventQueue
from repro.hybrid.memory import HybridMemoryController
from repro.policies.registry import build_policy
from repro.sim.engine import SimulationDriver
from repro.traces.generator import synthesize_trace

SCALE = 128
CONFIG = paper_quad_core(scale=SCALE)


def traces(names, requests=1500):
    return [
        (name, synthesize_trace(name, requests, scale=SCALE, seed=index))
        for index, name in enumerate(names)
    ]


class TestControllerMapping:
    def test_default_is_identity(self):
        controller = HybridMemoryController(
            CONFIG, EventQueue(), build_policy("static", CONFIG)
        )
        assert controller.program_of_core == [0, 1, 2, 3]
        assert controller.num_programs == 4

    def test_two_threads_one_program(self):
        controller = HybridMemoryController(
            CONFIG,
            EventQueue(),
            build_policy("static", CONFIG),
            program_of_core=[0, 0, 1, 1],
        )
        assert controller.num_programs == 2
        assert controller.rsm.num_programs == 2
        # Only two private regions are reserved.
        assert controller.region_map.num_programs == 2

    def test_rejects_wrong_length(self):
        with pytest.raises(ConfigError):
            HybridMemoryController(
                CONFIG,
                EventQueue(),
                build_policy("static", CONFIG),
                program_of_core=[0, 1],
            )

    def test_rejects_sparse_ids(self):
        with pytest.raises(ConfigError):
            HybridMemoryController(
                CONFIG,
                EventQueue(),
                build_policy("static", CONFIG),
                program_of_core=[0, 2, 2, 3],
            )


class TestDriverThreads:
    def test_threads_share_page_table(self):
        driver = SimulationDriver(
            CONFIG,
            "static",
            traces(["milc", "milc", "soplex", "soplex"]),
            program_of_core=[0, 0, 1, 1],
        )
        assert driver.page_tables[0] is driver.page_tables[1]
        assert driver.page_tables[2] is driver.page_tables[3]
        assert driver.page_tables[0] is not driver.page_tables[2]

    def test_threads_counted_into_shared_program_rsm(self):
        driver = SimulationDriver(
            CONFIG,
            "profess",
            traces(["milc", "milc", "soplex", "soplex"]),
            program_of_core=[0, 0, 1, 1],
        )
        result = driver.run()
        rsm = driver.controller.rsm
        program0 = (
            rsm.counters[0].num_req_total_p + rsm.counters[0].num_req_total_s
        )
        sampled0 = sum(1 for s in rsm.history if s.program == 0)
        total0 = program0 + sampled0 * CONFIG.rsm.m_samp
        per_core = [p.requests for p in result.programs]
        assert total0 == per_core[0] + per_core[1]

    def test_run_completes_with_threads(self):
        driver = SimulationDriver(
            CONFIG,
            "profess",
            traces(["milc", "milc", "soplex", "soplex"]),
            program_of_core=[0, 0, 1, 1],
        )
        result = driver.run()
        assert all(p.ipc > 0 for p in result.programs)

    def test_mismatched_mapping_rejected(self):
        from repro.common.errors import SimulationError

        with pytest.raises(SimulationError):
            SimulationDriver(
                CONFIG,
                "static",
                traces(["milc", "soplex"]),
                program_of_core=[0],
            )
