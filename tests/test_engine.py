"""Simulation-driver tests: runs, repetition, measurement methodology."""

import pytest

from repro.common.config import paper_quad_core, paper_single_core
from repro.common.errors import SimulationError
from repro.sim.engine import SimulationDriver
from repro.traces.generator import synthesize_trace

QUAD = paper_quad_core(scale=128)
SINGLE = paper_single_core(scale=128)


def trace(name="zeusmp", requests=1500, seed=0):
    return synthesize_trace(name, requests, scale=128, seed=seed)


class TestSingleProgram:
    def test_run_completes(self):
        driver = SimulationDriver(SINGLE, "static", [("zeusmp", trace())])
        result = driver.run()
        assert result.cycles > 0
        assert result.program(0).ipc > 0
        assert result.program(0).passes_completed == 1

    def test_requests_served(self):
        driver = SimulationDriver(SINGLE, "static", [("zeusmp", trace())])
        result = driver.run()
        assert result.total_requests == 1500

    def test_policy_by_name_or_object(self):
        from repro.policies.static import StaticPolicy

        by_name = SimulationDriver(SINGLE, "static", [("zeusmp", trace())])
        by_object = SimulationDriver(
            SINGLE, StaticPolicy(SINGLE), [("zeusmp", trace())]
        )
        assert by_name.run().policy == by_object.run().policy == "static"

    def test_deterministic(self):
        results = [
            SimulationDriver(SINGLE, "pom", [("zeusmp", trace())]).run()
            for _ in range(2)
        ]
        assert results[0].cycles == results[1].cycles
        assert results[0].total_swaps == results[1].total_swaps

    def test_energy_positive(self):
        result = SimulationDriver(SINGLE, "static", [("zeusmp", trace())]).run()
        assert result.energy_joules > 0
        assert result.energy_efficiency > 0


class TestMultiProgram:
    def _traces(self):
        return [
            ("zeusmp", trace("zeusmp", 1200, 0)),
            ("leslie3d", trace("leslie3d", 400, 1)),
        ]

    def test_fast_program_repeats(self):
        driver = SimulationDriver(QUAD, "static", self._traces())
        result = driver.run()
        # leslie3d's short trace finishes early and must repeat.
        assert result.program(1).passes_completed >= 1
        total_passes = sum(p.passes_completed for p in result.programs)
        assert total_passes >= 3

    def test_ends_when_all_first_passes_done(self):
        driver = SimulationDriver(QUAD, "static", self._traces())
        driver.run()
        assert all(driver._first_pass_done)

    def test_per_core_stats_separate(self):
        result = SimulationDriver(QUAD, "static", self._traces()).run()
        assert result.program(0).name == "zeusmp"
        assert result.program(1).name == "leslie3d"
        assert result.program(0).requests >= 1200

    def test_max_cycles_cutoff(self):
        driver = SimulationDriver(
            QUAD, "static", self._traces(), max_cycles=50_000
        )
        result = driver.run()
        assert result.cycles <= 60_000


class TestValidation:
    def test_rejects_empty_traces(self):
        with pytest.raises(SimulationError):
            SimulationDriver(QUAD, "static", [])

    def test_rejects_too_many_programs(self):
        traces = [("zeusmp", trace())] * 5
        with pytest.raises(SimulationError):
            SimulationDriver(QUAD, "static", traces)
