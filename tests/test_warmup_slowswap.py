"""Tests for measurement warm-up, slow swaps, refresh energy, and M1
utilization."""

import pytest

from repro.common.config import paper_quad_core, paper_single_core
from repro.common.events import EventQueue
from repro.hybrid.memory import HybridMemoryController
from repro.policies.registry import build_policy
from repro.sim.engine import SimulationDriver
from repro.traces.generator import synthesize_trace

SCALE = 128
SINGLE = paper_single_core(scale=SCALE)
QUAD = paper_quad_core(scale=SCALE)


def driver_for(policy="pom", warmup=0, requests=3000):
    trace = synthesize_trace("soplex", requests, scale=SCALE, seed=1)
    return SimulationDriver(
        SINGLE, policy, [("soplex", trace)], warmup_requests=warmup
    )


class TestWarmup:
    def test_warmup_changes_measured_ipc(self):
        cold = driver_for(warmup=0).run()
        warm = driver_for(warmup=1000).run()
        assert warm.program(0).ipc != cold.program(0).ipc
        assert warm.program(0).ipc > 0

    def test_warmup_excludes_cold_start(self):
        driver = driver_for(warmup=1000)
        driver.run()
        assert driver._warmed
        assert driver._warmup_cycle > 0
        assert driver._warmup_instructions[0] > 0

    def test_zero_warmup_measures_everything(self):
        driver = driver_for(warmup=0)
        result = driver.run()
        assert driver._warmup_cycle == 0
        assert result.program(0).instructions == pytest.approx(
            result.program(0).ipc * result.cycles, rel=0.01
        )


class TestSlowSwaps:
    def _line(self, controller, group, slot):
        return controller.address_map.block_of(group, slot) * 32

    def test_first_swap_is_fast(self):
        events = EventQueue()
        policy = build_policy("silcfm", QUAD)
        controller = HybridMemoryController(QUAD, events, policy)
        controller.access(0, self._line(controller, 5, 3), False)
        events.run()
        assert controller.total_swaps == 1
        assert controller.channels[1].stats.swaps == 1  # group 5 -> ch 1

    def test_remapped_group_pays_restore_pass(self):
        events = EventQueue()
        policy = build_policy("silcfm", QUAD)
        controller = HybridMemoryController(QUAD, events, policy)
        controller.access(0, self._line(controller, 5, 3), False)
        events.run()
        controller.access(0, self._line(controller, 5, 4), False)
        events.run()
        assert controller.total_swaps == 2
        # Second logical swap needed a restore: three channel swap ops.
        assert controller.channels[1].stats.swaps == 3

    def test_fast_policies_never_restore(self):
        events = EventQueue()
        policy = build_policy("cameo", QUAD)
        controller = HybridMemoryController(QUAD, events, policy)
        controller.access(0, self._line(controller, 5, 3), False)
        events.run()
        controller.access(0, self._line(controller, 5, 4), False)
        events.run()
        assert controller.channels[1].stats.swaps == 2

    def test_slow_swap_flag_values(self):
        assert build_policy("silcfm", QUAD).slow_swaps
        assert not build_policy("pom", QUAD).slow_swaps
        assert not build_policy("mdm", QUAD).slow_swaps


class TestRefreshEnergy:
    def test_refreshes_add_energy(self):
        driver = driver_for(requests=3000)
        result = driver.run()
        meter = driver.controller.energy
        assert meter.refreshes > 0
        config = QUAD.energy
        assert meter.dynamic_energy_nj() >= meter.refreshes * config.m1_refresh_nj


class TestM1Utilization:
    def test_grows_with_allocation(self):
        events = EventQueue()
        controller = HybridMemoryController(
            QUAD, events, build_policy("static", QUAD)
        )
        before = controller.m1_utilization()
        controller.allocator.allocate(0, 400)
        after = controller.m1_utilization()
        assert after > before

    def test_bounded(self):
        events = EventQueue()
        controller = HybridMemoryController(
            QUAD, events, build_policy("static", QUAD)
        )
        assert 0.0 <= controller.m1_utilization() <= 1.0
