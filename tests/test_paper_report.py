"""EXPERIMENTS.md generator tests (simulation-free via monkeypatching)."""

from repro.experiments import paper_report
from repro.experiments.base import ExperimentResult
from repro.experiments.runner import ExperimentRunner
from repro.experiments.store import ResultStore


def fake_result(experiment_id):
    return ExperimentResult(
        experiment_id=experiment_id,
        title=f"title of {experiment_id}",
        headers=["a", "b"],
        rows=[["x", 1.1]],
        summary={"geomean": 1.1, "best_key": "x", "best_improvement": 0.1},
    )


class TestGeneration:
    def _generate(self, tmp_path, monkeypatch, ids):
        monkeypatch.setattr(
            paper_report,
            "run_experiment",
            lambda experiment_id, runner: fake_result(experiment_id),
        )
        runner = ExperimentRunner(scale=128, multi_requests=10, single_requests=10)
        output = tmp_path / "EXPERIMENTS.md"
        text = paper_report.generate_experiments_md(
            runner, output, experiment_ids=ids
        )
        return output, text

    def test_writes_file(self, tmp_path, monkeypatch):
        output, text = self._generate(tmp_path, monkeypatch, ["fig5"])
        assert output.read_text() == text
        assert "# EXPERIMENTS" in text

    def test_includes_paper_claim_and_measured(self, tmp_path, monkeypatch):
        _, text = self._generate(tmp_path, monkeypatch, ["fig5"])
        assert "paper: MDM vs PoM IPC" in text
        assert "measured:" in text
        assert "+10.0% avg" in text

    def test_shape_annotation(self, tmp_path, monkeypatch):
        _, text = self._generate(tmp_path, monkeypatch, ["fig5"])
        assert "shape holds" in text

    def test_extension_marked(self, tmp_path, monkeypatch):
        _, text = self._generate(tmp_path, monkeypatch, ["ext-rsm-pom"])
        assert "extension beyond the paper" in text

    def test_store_populated(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            paper_report,
            "run_experiment",
            lambda experiment_id, runner: fake_result(experiment_id),
        )
        runner = ExperimentRunner(scale=128, multi_requests=10, single_requests=10)
        store = ResultStore(tmp_path / "store")
        paper_report.generate_experiments_md(
            runner, tmp_path / "E.md", store=store, experiment_ids=["fig5"]
        )
        assert store.ids() == ["fig5"]

    def test_scale_recorded_in_header(self, tmp_path, monkeypatch):
        _, text = self._generate(tmp_path, monkeypatch, ["fig5"])
        assert "scale=1/128" in text


class TestRenderFromStore:
    def test_renders_stored_results(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.save(fake_result("fig5"))
        output = tmp_path / "E.md"
        text = paper_report.render_from_store(store, output)
        assert output.exists()
        assert "fig5" in text
        assert "shape holds" in text

    def test_missing_results_marked(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        text = paper_report.render_from_store(store, tmp_path / "E.md")
        assert "(no stored result)" in text
