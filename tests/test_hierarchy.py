"""Cache-hierarchy substrate tests."""

import pytest

from repro.cache.hierarchy import CacheHierarchy
from repro.common.config import CacheLevelConfig


def small_hierarchy():
    return CacheHierarchy(
        [
            CacheLevelConfig(2 * 64, 2, 2),  # 2 lines/way, 1 set... tiny L1
            CacheLevelConfig(8 * 64, 2, 8),
            CacheLevelConfig(32 * 64, 4, 20),
        ]
    )


class TestAccess:
    def test_first_access_goes_to_memory(self):
        h = small_hierarchy()
        result = h.access(0)
        assert result.is_memory_access
        assert result.latency == 2 + 8 + 20

    def test_second_access_hits_l1(self):
        h = small_hierarchy()
        h.access(0)
        result = h.access(0)
        assert result.hit_level == 0
        assert result.latency == 2

    def test_l1_victim_hits_lower_level(self):
        h = small_hierarchy()
        h.access(0)
        # Evict line 0 from tiny L1 by filling its set.
        for line in range(1, 4):
            h.access(line)
        result = h.access(0)
        assert result.hit_level in (1, 2)

    def test_dirty_writeback_reaches_memory(self):
        h = CacheHierarchy([CacheLevelConfig(2 * 64, 2, 2)])
        h.access(0, is_write=True)
        writebacks = []
        for line in range(1, 8):
            writebacks.extend(h.access(line).writebacks)
        assert 0 in writebacks

    def test_clean_eviction_no_writeback(self):
        h = CacheHierarchy([CacheLevelConfig(2 * 64, 2, 2)])
        h.access(0)
        for line in range(1, 8):
            assert not h.access(line).writebacks

    def test_mpki(self):
        h = small_hierarchy()
        h.access(0)
        h.access(0)
        assert h.mpki(1000) == pytest.approx(1.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            CacheHierarchy([])

    def test_num_levels(self):
        assert small_hierarchy().num_levels == 3

    def test_inclusion_after_fill(self):
        h = small_hierarchy()
        h.access(7)
        for level in range(3):
            assert h.level_stats(level).contains(7)
