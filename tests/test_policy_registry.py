"""The composable policy registry: specs, factory, axes, and back-compat.

Covers the full redesigned surface (repro.policies.registry):

* ``PolicySpec`` parsing, canonicalization, serialization round-trips,
  and the error taxonomy (``PolicySpecError`` / ``UnknownPolicyError``);
* registry completeness — every registered policy constructible under
  the default ``SystemConfig`` with axes resolved;
* axis semantics end-to-end (``noswap`` suppresses migration traffic,
  ``bypass`` probabilistically drops promotions, STC replacement wires
  through to the array);
* cache-key compatibility — pre-redesign ``SystemConfig.cache_token()``
  and ``RunSpec.cache_key()`` values are pinned as constants, and
  equivalent spec spellings collapse to one key;
* the deprecation shims (``make_policy``, class re-exports);
* the CLI (``--policy`` validation exits 2, ``profess policies``);
* serial/parallel byte-identity of the ``ext-policy-matrix`` sweep.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.common.config import (
    STC_REPLACEMENTS,
    SWAP_STYLES,
    PolicyAxesConfig,
    paper_quad_core,
    paper_single_core,
)
from repro.common.errors import (
    ConfigError,
    PolicySpecError,
    UnknownPolicyError,
)
from repro.exec.executor import execute_spec
from repro.exec.spec import RunSpec
from repro.policies.registry import (
    PolicySpec,
    build_policy,
    canonical_policy,
    guided_bases,
    iter_registered,
    registry_names,
)

CONFIG = paper_quad_core(scale=64)

#: Pre-redesign regression constants, computed on the commit before the
#: registry landed.  They pin the promise that adding the ``axes`` field
#: and policy canonicalization did NOT invalidate existing disk caches.
QUAD64_TOKEN = "7893fd1f5674002209965556632541ae1b4d218bad11d167cdcf90d3c54e9913"
SINGLE64_TOKEN = "75b3e0f22931d9553a48ca12b5c354785ebd2f85714cea8d5c474a9348282c7e"
MDM_MULTI_KEY = "8ae98a4fa4dd86827b22b98dc3351db4222a11707db82115a41db1556dd55f20"
PROFESS_SINGLE_KEY = (
    "84c825da41ff47ff9b19569918df4593f074db73c561cef5854d17b744d8d825"
)


class TestSpecParsing:
    def test_plain_base(self):
        spec = PolicySpec.parse("pom")
        assert spec == PolicySpec(base="pom")

    def test_registered_composition_expands(self):
        assert PolicySpec.parse("profess") == PolicySpec(
            base="mdm", guidance=True
        )
        assert PolicySpec.parse("rsm-pom") == PolicySpec(
            base="pom", guidance=True
        )

    def test_axes_any_order(self):
        forward = PolicySpec.parse("mdm+rsm+swap:smart+bypass:0.05+stc:lfu")
        shuffled = PolicySpec.parse("mdm+stc:lfu+bypass:0.05+rsm+swap:smart")
        assert forward == shuffled
        assert forward.swap_style == "smart"
        assert forward.bypass_rate == 0.05
        assert forward.stc_replacement == "lfu"
        assert forward.guidance

    def test_case_insensitive(self):
        assert PolicySpec.parse("PoM") == PolicySpec(base="pom")
        assert PolicySpec.parse("MDM+RSM+STC:LFU") == PolicySpec.parse(
            "mdm+rsm+stc:lfu"
        )

    def test_unknown_head_lists_known_names(self):
        with pytest.raises(UnknownPolicyError) as excinfo:
            PolicySpec.parse("nope")
        assert excinfo.value.name == "nope"
        assert "pom" in excinfo.value.known
        assert excinfo.value.known == sorted(excinfo.value.known)

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "+rsm",
            "mdm+rsm+rsm",  # duplicate axis
            "mdm+swap:warp",  # unknown swap style
            "mdm+stc:plru",  # unknown STC replacement
            "mdm+bypass:fast",  # non-numeric rate
            "mdm+bypass:1.0",  # rate out of [0, 1)
            "mdm+bypass:-0.1",
            "mdm+turbo:on",  # unknown axis
            "mdm+swap:",  # empty axis value
        ],
    )
    def test_malformed_specs_rejected(self, text):
        with pytest.raises((PolicySpecError, UnknownPolicyError)):
            PolicySpec.parse(text)

    def test_spec_error_is_value_error(self):
        # Callers that caught the old make_policy errors keep working.
        with pytest.raises(ValueError):
            PolicySpec.parse("mdm+swap:warp")


class TestCanonicalization:
    def test_legacy_names_map_to_themselves(self):
        for name in registry_names():
            assert canonical_policy(name) == name

    def test_equivalent_spelling_collapses(self):
        assert canonical_policy("mdm+rsm") == "profess"
        assert canonical_policy("pom+rsm") == "rsm-pom"

    def test_composed_form_is_stable(self):
        text = "mdm+rsm+swap:smart+bypass:0.05+stc:lfu"
        canonical = canonical_policy(text)
        assert canonical == "profess+swap:smart+bypass:0.05+stc:lfu"
        # Canonicalization is idempotent.
        assert canonical_policy(canonical) == canonical

    def test_round_trip_parse_canonical(self):
        for text in ("pom", "profess", "mdm+stc:lfu", "silcfm+swap:fast"):
            spec = PolicySpec.parse(text)
            assert PolicySpec.parse(spec.canonical()) == spec


class TestSerialization:
    def test_dict_round_trip_preserves_cache_token(self):
        spec = PolicySpec.parse("mdm+rsm+swap:smart+bypass:0.05+stc:lfu")
        again = PolicySpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.cache_token() == spec.cache_token()

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(PolicySpecError):
            PolicySpec.from_dict({"base": "mdm", "turbo": True})

    def test_token_distinguishes_axes(self):
        assert (
            PolicySpec.parse("mdm").cache_token()
            != PolicySpec.parse("mdm+stc:lfu").cache_token()
        )

    def test_spec_is_hashable(self):
        assert len({PolicySpec.parse("mdm"), PolicySpec.parse("mdm")}) == 1


class TestRegistryCompleteness:
    def test_every_registered_policy_constructible(self):
        for entry in iter_registered():
            policy = build_policy(entry.name, CONFIG)
            assert isinstance(policy, entry.cls)
            assert policy.name == entry.name
            assert policy.swap_style in SWAP_STYLES
            assert policy.stc_replacement in STC_REPLACEMENTS
            assert 0.0 <= policy.bypass_rate < 1.0
            assert entry.description  # docstring first line captured

    def test_guided_bases(self):
        assert guided_bases() == ["mdm", "pom"]

    def test_registry_names_sorted(self):
        names = registry_names()
        assert names == sorted(names)
        assert {"static", "cameo", "pom", "silcfm", "mempod", "mdm",
                "profess", "rsm-pom"} == set(names)

    def test_unsupported_guidance_rejected_with_guided_list(self):
        with pytest.raises(PolicySpecError) as excinfo:
            build_policy(PolicySpec(base="cameo", guidance=True), CONFIG)
        assert "mdm" in str(excinfo.value)

    def test_kwargs_pass_through(self):
        policy = build_policy("mdm", CONFIG, record_predictions=True)
        assert policy.prediction_log is not None


class TestAxisResolution:
    def test_spec_beats_config_beats_class(self):
        config = replace(
            CONFIG,
            axes=PolicyAxesConfig(swap_style="slow", stc_replacement="fifo"),
        )
        explicit = build_policy("mdm+swap:fast+stc:lfu", config)
        assert explicit.swap_style == "fast"
        assert explicit.stc_replacement == "lfu"
        inherited = build_policy("mdm", config)
        assert inherited.swap_style == "slow"
        assert inherited.stc_replacement == "fifo"

    def test_class_default_when_nothing_set(self):
        silcfm = build_policy("silcfm", CONFIG)
        assert silcfm.swap_style == "slow"
        assert silcfm.slow_swaps  # back-compat property view
        mdm = build_policy("mdm", CONFIG)
        assert mdm.swap_style == "fast"
        assert not mdm.slow_swaps

    def test_axes_config_validates(self):
        with pytest.raises(ConfigError):
            PolicyAxesConfig(swap_style="warp")
        with pytest.raises(ConfigError):
            PolicyAxesConfig(stc_replacement="plru")
        with pytest.raises(ConfigError):
            PolicyAxesConfig(bypass_rate=1.5)


def _run(policy: str, requests: int = 400) -> object:
    config = paper_quad_core(scale=256)
    spec = RunSpec(
        kind="multi",
        programs=("zeusmp", "mcf"),
        policy=policy,
        config=config,
        requests=requests,
        seed=0,
        trace_scale=256,
    )
    return execute_spec(spec)


class TestAxisBehavior:
    def test_noswap_suppresses_all_migration_traffic(self):
        assert _run("mdm+swap:noswap").total_swaps == 0

    def test_bypass_reduces_swaps(self):
        base = _run("mdm").total_swaps
        bypassed = _run("mdm+bypass:0.5").total_swaps
        assert 0 < bypassed < base

    def test_default_axes_unchanged_from_plain_run(self):
        # The bypass RNG must not exist (and draw nothing) at rate 0.
        plain = _run("mdm")
        spelled = _run("mdm+swap:fast")
        assert plain.total_swaps == spelled.total_swaps
        assert plain.cycles == spelled.cycles

    def test_slow_and_smart_styles_cost_extra_moves(self):
        fast = _run("mdm")
        slow = _run("mdm+swap:slow")
        smart = _run("mdm+swap:smart")
        assert slow.cycles > fast.cycles
        assert fast.cycles <= smart.cycles <= slow.cycles

    def test_stc_replacement_changes_hit_rate(self):
        assert (
            _run("mdm+stc:lfu").stc_hit_rate != _run("mdm").stc_hit_rate
        )

    def test_result_policy_label_is_canonical(self):
        assert _run("mdm+rsm", requests=200).policy == "profess"


class TestCacheKeyCompatibility:
    def test_pinned_config_tokens(self):
        assert paper_quad_core(scale=64).cache_token() == QUAD64_TOKEN
        assert paper_single_core(scale=64).cache_token() == SINGLE64_TOKEN

    def test_non_default_axes_changes_token(self):
        config = replace(CONFIG, axes=PolicyAxesConfig(swap_style="slow"))
        assert config.cache_token() != QUAD64_TOKEN

    def test_pinned_run_spec_keys(self):
        mdm = RunSpec(
            kind="multi",
            programs=("zeusmp", "mcf", "lbm", "omnetpp"),
            policy="mdm",
            config=paper_quad_core(scale=64),
            requests=50_000,
            seed=0,
            trace_scale=64,
        )
        assert mdm.cache_key() == MDM_MULTI_KEY
        profess = RunSpec(
            kind="single",
            programs=("zeusmp",),
            policy="profess",
            config=paper_single_core(scale=64),
            requests=60_000,
            seed=0,
            trace_scale=64,
        )
        assert profess.cache_key() == PROFESS_SINGLE_KEY

    def test_equivalent_spellings_share_a_key(self):
        def key(policy: str) -> str:
            return RunSpec(
                kind="single",
                programs=("zeusmp",),
                policy=policy,
                config=paper_single_core(scale=64),
                requests=60_000,
                seed=0,
                trace_scale=64,
            ).cache_key()

        assert key("mdm+rsm") == key("profess") == PROFESS_SINGLE_KEY

    def test_run_spec_rejects_unknown_policy(self):
        with pytest.raises(UnknownPolicyError):
            RunSpec(
                kind="single",
                programs=("zeusmp",),
                policy="nope",
                config=paper_single_core(scale=64),
                requests=100,
                seed=0,
                trace_scale=64,
            )


class TestDeprecationShims:
    def test_make_policy_warns_and_delegates(self):
        from repro.policies import make_policy

        with pytest.warns(DeprecationWarning, match="build_policy"):
            policy = make_policy("pom", CONFIG)
        assert policy.name == "pom"

    def test_class_reexport_warns(self):
        import repro.policies as policies

        with pytest.warns(DeprecationWarning, match="build_policy"):
            cls = policies.PoMPolicy
        assert cls.__name__ == "PoMPolicy"

    def test_unknown_attribute_is_attribute_error(self):
        import repro.policies as policies

        with pytest.raises(AttributeError):
            policies.NoSuchPolicy

    def test_defining_module_import_stays_silent(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            from repro.policies.pom import PoMPolicy  # noqa: F401


class TestCli:
    def test_unknown_policy_exits_2_with_known_names(self, capsys):
        from repro import cli

        code = cli.main(["run", "ext-policy-matrix", "--policy", "nope"])
        assert code == 2
        err = capsys.readouterr().err
        assert "nope" in err and "profess" in err

    def test_malformed_spec_exits_2(self, capsys):
        from repro import cli

        code = cli.main(
            ["run", "ext-policy-matrix", "--policy", "mdm+bypass:2"]
        )
        assert code == 2
        assert "bypass" in capsys.readouterr().err

    def test_policies_listing(self, capsys):
        from repro import cli

        assert cli.main(["policies"]) == 0
        out = capsys.readouterr().out
        assert "profess" in out and "swap styles" in out

    def test_policies_markdown(self, capsys):
        from repro import cli

        assert cli.main(["policies", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert "| `profess` | mdm | RSM |" in out
        assert "| `+stc:POLICY` |" in out


class TestMatrixSerialParallelIdentity:
    def test_restricted_sweep_identical_across_jobs(self):
        from repro.experiments.extensions import run_policy_matrix
        from repro.experiments.runner import ExperimentRunner

        def rows(jobs: int) -> list:
            runner = ExperimentRunner(
                scale=256,
                multi_requests=250,
                single_requests=250,
                jobs=jobs,
                policies=["pom", "mdm+rsm", "mdm+stc:lfu"],
            )
            return run_policy_matrix(runner).rows

        serial = rows(1)
        parallel = rows(2)
        assert serial == parallel
        assert [row[0] for row in serial] == ["pom", "profess", "mdm+stc:lfu"]
