"""Resilient-execution tests: taxonomy, journal, retries, timeouts.

The deterministic chaos harness (repro.exec.chaos) drives the Executor's
degradation paths; the end-to-end acceptance scenario (parallel chaos
sweep + resume == clean serial run, byte for byte) lives in
``tests/test_chaos.py``.
"""

import pickle
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.common.config import paper_single_core
from repro.common.errors import InvalidValueError, SimulationError
from repro.exec import (
    Executor,
    ResultCache,
    RetryPolicy,
    RunJournal,
    RunSpec,
    SpecTimeoutError,
    SweepFailure,
    WorkerFailure,
    format_failure_table,
)
from repro.exec.chaos import ChaosError, ChaosKilledError, ChaosPlan
from repro.exec.resilience import (
    RunFailure,
    failure_from_error,
    is_retryable,
)

SCALE = 128
CONFIG = paper_single_core(scale=SCALE)


def spec(program="zeusmp", policy="pom", **overrides) -> RunSpec:
    base = dict(
        kind="single",
        programs=(program,),
        policy=policy,
        config=CONFIG,
        requests=500,
        seed=0,
        trace_scale=SCALE,
    )
    base.update(overrides)
    return RunSpec(**base)


def retry_free() -> RetryPolicy:
    """A no-wait policy so retry tests spend zero time sleeping."""
    return RetryPolicy(retries=1, backoff_base=0.0)


class TestRetryTaxonomy:
    @pytest.mark.parametrize(
        "error,expected",
        [
            (BrokenProcessPool("worker died"), True),
            (SpecTimeoutError("over budget"), True),
            (OSError("flaky filesystem"), True),
            (ChaosKilledError("injected kill"), True),
            (SimulationError("deterministic bug"), False),
            (ChaosError("injected failure"), False),
            (ValueError("plain library error"), False),
        ],
    )
    def test_is_retryable(self, error, expected):
        assert is_retryable(error) is expected

    def test_worker_failure_defers_to_inner_classification(self):
        transient = WorkerFailure.wrap("k", "r", "label", OSError("io"))
        fatal = WorkerFailure.wrap("k", "r", "label", SimulationError("bug"))
        assert is_retryable(transient)
        assert not is_retryable(fatal)

    def test_should_retry_respects_attempt_budget(self):
        policy = RetryPolicy(retries=2)
        error = OSError("transient")
        assert policy.max_attempts == 3
        assert policy.should_retry(error, 1)
        assert policy.should_retry(error, 2)
        assert not policy.should_retry(error, 3)
        assert not policy.should_retry(SimulationError("fatal"), 1)

    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(retries=3, backoff_base=0.05, backoff_cap=0.4)
        first = policy.backoff("somekey", 1)
        assert first == policy.backoff("somekey", 1)
        assert first != policy.backoff("otherkey", 1)
        for attempt in range(1, 6):
            delay = policy.backoff("somekey", attempt)
            assert 0.0 < delay <= 0.4
        assert RetryPolicy(backoff_base=0.0).backoff("somekey", 1) == 0.0

    def test_invalid_policy_rejected(self):
        with pytest.raises(InvalidValueError):
            RetryPolicy(retries=-1)


class TestWorkerFailure:
    def test_pickle_roundtrip_preserves_provenance(self):
        original = WorkerFailure.wrap(
            "a" * 64, "run-7", "single:zeusmp:pom", OSError("disk hiccup")
        )
        restored = pickle.loads(pickle.dumps(original))
        assert isinstance(restored, WorkerFailure)
        assert restored.key == original.key
        assert restored.run_id == "run-7"
        assert restored.label == "single:zeusmp:pom"
        assert restored.error_type == "OSError"
        assert restored.message == "disk hiccup"
        assert restored.traceback_digest == original.traceback_digest
        assert restored.retryable is True

    def test_str_carries_key_and_type(self):
        failure = WorkerFailure.wrap("b" * 64, "run-1", "lbl", ValueError("x"))
        text = str(failure)
        assert "ValueError" in text and "b" * 12 in text

    def test_failure_record_from_worker_failure(self):
        wrapped = WorkerFailure.wrap(
            "c" * 64, "run-2", "single:lbm:mdm", SimulationError("bad state")
        )
        record = failure_from_error("c" * 64, "fallback", wrapped, attempts=3)
        assert record.error_type == "SimulationError"
        assert record.label == "single:lbm:mdm"
        assert record.attempts == 3
        assert record.retryable is False
        as_dict = record.to_dict()
        assert as_dict["key"] == "c" * 64
        assert as_dict["traceback_digest"] == wrapped.traceback_digest
        assert "SimulationError" in record.summary()

    def test_failure_table_renders_every_row(self):
        records = [
            RunFailure("d" * 64, "single:mcf:pom", "ChaosError", "boom",
                       "abc123def456", 1, False),
            RunFailure("e" * 64, "x" * 50, "SpecTimeoutError", "slow",
                       "fedcba654321", 2, True),
        ]
        table = format_failure_table(records)
        assert "2 failed run(s)" in table
        assert "ChaosError" in table and "SpecTimeoutError" in table
        assert "..." in table  # long labels truncate, not overflow
        assert format_failure_table([]) == "no failures"


class TestRunJournal:
    def test_append_and_replay_roundtrip(self, tmp_path):
        journal = RunJournal.beside(tmp_path)
        journal.submitted("k1", "run-1", 1, "single:zeusmp:pom")
        journal.submitted("k2", "run-1", 1, "single:lbm:pom")
        journal.completed("k1", "run-1", "pool", 1.25)
        failure = RunFailure("k2", "single:lbm:pom", "ChaosError", "boom",
                             "abc123def456", 2, False)
        journal.failed(failure, "run-1")
        state = journal.replay()
        assert state.completed == {"k1"}
        assert set(state.failed) == {"k2"}
        assert state.failed["k2"]["error_type"] == "ChaosError"
        assert state.submitted == {"k1", "k2"}
        assert state.pending() == set()
        assert state.skipped_lines == 0

    def test_completion_clears_earlier_failure(self, tmp_path):
        journal = RunJournal.beside(tmp_path)
        failure = RunFailure("k1", "lbl", "OSError", "io", "0" * 12, 1, True)
        journal.failed(failure, "run-1")
        journal.completed("k1", "run-2", "serial", 0.5)
        state = journal.replay()
        assert state.completed == {"k1"}
        assert state.failed == {}

    def test_truncated_tail_line_is_skipped(self, tmp_path):
        journal = RunJournal.beside(tmp_path)
        journal.submitted("k1", "run-1", 1, "lbl")
        journal.completed("k1", "run-1", "serial", 0.5)
        with journal.path.open("a") as handle:
            handle.write('{"v": 1, "event": "compl')  # crash mid-append
        state = journal.replay()
        assert state.completed == {"k1"}
        assert state.skipped_lines == 1

    def test_missing_journal_replays_empty(self, tmp_path):
        state = RunJournal.beside(tmp_path / "nowhere").replay()
        assert state.completed == set() and state.pending() == set()

    def test_unwritable_journal_never_raises(self, tmp_path):
        journal = RunJournal(tmp_path / "file.txt" / "journal.jsonl")
        (tmp_path / "file.txt").write_text("a file, not a directory\n")
        journal.submitted("k1", "run-1", 1, "lbl")
        assert journal.write_errors == 1


class TestExecutorRetries:
    def test_serial_kill_injection_recovers_on_retry(self):
        chaos = ChaosPlan(seed=0, kill_rate=1.0)
        clean = Executor(jobs=1).run(spec())
        executor = Executor(jobs=1, retry=retry_free(), chaos=chaos)
        result = executor.run(spec())
        assert result.to_dict() == clean.to_dict()
        assert executor.retried == 1
        assert executor.failures == []

    def test_serial_fatal_injection_is_isolated(self):
        # raise_rate=1.0 injects a (non-retryable) ChaosError into every
        # first attempt; the wave must finish with structured failures,
        # not propagate the exception.
        chaos = ChaosPlan(seed=0, raise_rate=1.0)
        executor = Executor(jobs=1, retry=retry_free(), chaos=chaos)
        wave = executor.run_wave([spec(), spec("lbm")])
        assert wave.results == [None, None]
        assert not wave.ok
        assert [f.error_type for f in wave.failures] == [
            "ChaosError", "ChaosError",
        ]
        assert all(f.attempts == 1 for f in wave.failures)  # never retried
        assert executor.retried == 0

    def test_run_many_raises_sweep_failure(self):
        chaos = ChaosPlan(seed=0, raise_rate=1.0)
        executor = Executor(jobs=1, chaos=chaos)
        with pytest.raises(SweepFailure) as excinfo:
            executor.run_many([spec()])
        assert excinfo.value.failures[0].error_type == "ChaosError"

    def test_fail_fast_aborts_the_wave(self):
        chaos = ChaosPlan(seed=0, raise_rate=1.0)
        executor = Executor(jobs=1, chaos=chaos, fail_fast=True)
        with pytest.raises(SweepFailure):
            executor.run_wave([spec(), spec("lbm")])
        assert len(executor.failures) == 1  # aborted before the second

    def test_retry_budget_exhaustion_records_attempts(self):
        # Kills injected on every attempt: even a retryable fault fails
        # once the budget runs out, and the record counts the attempts.
        chaos = ChaosPlan(seed=0, kill_rate=1.0, inject_attempts=99)
        executor = Executor(jobs=1, retry=retry_free(), chaos=chaos)
        wave = executor.run_wave([spec()])
        assert wave.results == [None]
        failure = wave.failures[0]
        assert failure.error_type == "ChaosKilledError"
        assert failure.attempts == 2
        assert failure.retryable is True

    def test_pool_worker_death_recovers_and_matches_serial(self):
        chaos = ChaosPlan(seed=0, kill_rate=1.0)
        specs = [spec(), spec("lbm"), spec("mcf")]
        clean = Executor(jobs=1).run_many(specs)
        executor = Executor(
            jobs=2, retry=RetryPolicy(retries=3, backoff_base=0.0),
            chaos=chaos,
        )
        survived = executor.run_many(specs)
        assert [r.to_dict() for r in survived] == [
            r.to_dict() for r in clean
        ]
        assert executor.retried >= 3  # every spec's first attempt died

    def test_pool_timeout_expires_and_fails_without_retries(self):
        chaos = ChaosPlan(seed=0, stall_rate=1.0, stall_seconds=30.0)
        executor = Executor(
            jobs=2, run_timeout=0.5, retry=RetryPolicy(retries=0),
            chaos=chaos,
        )
        wave = executor.run_wave([spec(), spec("lbm")])
        assert wave.results == [None, None]
        assert {f.error_type for f in wave.failures} == {"SpecTimeoutError"}
        assert all(f.retryable for f in wave.failures)

    def test_pool_timeout_recovers_on_retry(self):
        chaos = ChaosPlan(seed=0, stall_rate=1.0, stall_seconds=30.0)
        clean = Executor(jobs=1).run(spec())
        executor = Executor(
            jobs=2, run_timeout=0.5, retry=retry_free(), chaos=chaos
        )
        results = executor.run_many([spec(), spec("lbm")])
        assert results[0].to_dict() == clean.to_dict()
        assert executor.retried >= 2

    def test_wave_journals_submissions_and_outcomes(self, tmp_path):
        chaos = ChaosPlan(seed=0, raise_rate=1.0)
        journal = RunJournal.beside(tmp_path)
        cache = ResultCache(tmp_path)
        executor = Executor(
            jobs=1, cache=cache, journal=journal, chaos=chaos,
            retry=retry_free(),
        )
        good = spec()
        executor.chaos = None
        executor.run(good)
        bad = spec("lbm")
        executor.chaos = chaos
        wave = executor.run_wave([bad])
        assert not wave.ok
        state = journal.replay()
        assert state.completed == {good.cache_key()}
        assert set(state.failed) == {bad.cache_key()}
        # A resumed executor sees the completed key as a cache hit and
        # re-attempts the failed one (no chaos now): the journal's failed
        # set drains to empty.
        resumed = Executor(jobs=1, cache=cache, journal=journal)
        results = resumed.run_many([good, bad])
        assert resumed.executed == 1  # only the failed key re-simulated
        assert results[0].to_dict() == executor.run(good).to_dict()
        assert journal.replay().failed == {}
