"""Batched trace decoding tests: decoder tables, chunk boundaries, and
TraceCore's chunked refill (DESIGN.md §12).

The refill boundary cases the CI coverage gate pins down: a pass shorter
than one chunk, a pass that is an exact multiple of the chunk size, and
a trailing partial chunk — each must issue every request, retire every
instruction, and produce simulation results identical to the
single-chunk decode.
"""

import math

import pytest

from repro.common.config import CoreConfig
from repro.common.errors import TraceError
from repro.common.events import EventQueue
from repro.cpu.core_model import TraceCore
from repro.cpu.trace import Trace
from repro.perf.decode_bench import batched_decode, legacy_decode
from repro.traces.decode import DEFAULT_CHUNK_REQUESTS, TraceDecoder
from repro.traces.generator import synthesize_trace


def _mixed_trace(n=24):
    """Gaps including zero-runs, writes interleaved, varied lines."""
    records = [
        (0 if i % 3 == 0 else (i * 7) % 19, (i * 13) % 40, i % 4 == 1)
        for i in range(n)
    ]
    return Trace.from_records(records)


class TestDecoderTables:
    def test_compute_cycles_match_scalar_ceil(self):
        trace = _mixed_trace()
        for ipc in (0.5, 1.0, 1.5, 2.0, 3.0):
            decoder = TraceDecoder(trace, ipc)
            chunk = decoder.chunk(0)
            expected = [
                math.ceil(int(gap) / ipc) if int(gap) > 0 else 0
                for gap in trace.gaps
            ]
            assert chunk.cycles == expected

    def test_decode_matches_legacy_front_end(self):
        trace = synthesize_trace("mcf", 2_000, scale=128, seed=3)
        assert batched_decode(trace, 2.0) == legacy_decode(trace, 2.0)

    def test_values_are_plain_python_objects(self):
        chunk = TraceDecoder(_mixed_trace(), 2.0).chunk(0)
        assert all(type(value) is int for value in chunk.cycles)
        assert all(type(value) is int for value in chunk.lines)
        assert all(type(value) is bool for value in chunk.writes)
        assert all(type(value) is int for value in chunk.retired_prefix)

    def test_retired_prefix_is_cumulative_gap_plus_one(self):
        trace = _mixed_trace()
        chunk = TraceDecoder(trace, 2.0).chunk(0)
        total = 0
        assert chunk.retired_prefix[0] == 0
        for i, gap in enumerate(trace.gaps):
            total += int(gap) + 1
            assert chunk.retired_prefix[i + 1] == total
        assert chunk.retired_prefix[-1] == trace.instructions

    def test_total_instructions_matches_trace(self):
        trace = _mixed_trace()
        assert TraceDecoder(trace, 2.0).total_instructions == trace.instructions

    def test_rejects_bad_parameters(self):
        trace = _mixed_trace()
        with pytest.raises(TraceError):
            TraceDecoder(trace, 0.0)
        with pytest.raises(TraceError):
            TraceDecoder(trace, 2.0, chunk_requests=0)
        with pytest.raises(TraceError):
            TraceDecoder(trace, 2.0).chunk(99)


class TestChunking:
    @pytest.mark.parametrize(
        "requests,chunk_requests,expected_chunks",
        [
            (3, 8, 1),   # pass shorter than one chunk
            (8, 4, 2),   # exact multiple of the chunk size
            (10, 4, 3),  # trailing partial chunk
        ],
    )
    def test_chunk_count_and_coverage(
        self, requests, chunk_requests, expected_chunks
    ):
        trace = _mixed_trace(requests)
        decoder = TraceDecoder(trace, 2.0, chunk_requests=chunk_requests)
        assert decoder.num_chunks == expected_chunks
        starts, lines = [], []
        for index in range(decoder.num_chunks):
            chunk = decoder.chunk(index)
            starts.append(chunk.start)
            lines.extend(chunk.lines)
            assert len(chunk.retired_prefix) == chunk.length + 1
        assert starts == [
            i * chunk_requests for i in range(expected_chunks)
        ]
        assert lines == [int(line) for line in trace.lines]

    def test_chunked_concatenation_equals_single_chunk(self):
        trace = _mixed_trace(10)
        whole = TraceDecoder(trace, 2.0).chunk(0)
        decoder = TraceDecoder(trace, 2.0, chunk_requests=4)
        cycles, prefix_total = [], 0
        for index in range(decoder.num_chunks):
            chunk = decoder.chunk(index)
            cycles.extend(chunk.cycles)
            prefix_total += chunk.retired_prefix[chunk.length]
        assert cycles == whole.cycles
        assert prefix_total == whole.retired_prefix[whole.length]

    def test_first_chunk_is_cached(self):
        decoder = TraceDecoder(_mixed_trace(10), 2.0, chunk_requests=4)
        assert decoder.chunk(0) is decoder.chunk(0)
        assert decoder.chunk(1) is not decoder.chunk(1)

    def test_default_chunk_holds_typical_traces(self):
        assert DEFAULT_CHUNK_REQUESTS >= 20_000


class InstantMemory:
    """Completes every request after a fixed latency."""

    def __init__(self, events, latency=100):
        self.events = events
        self.latency = latency
        self.requests = []

    def access(self, core_id, line, is_write, on_complete):
        self.requests.append((core_id, line, is_write))
        self.events.schedule(self.events.now + self.latency, on_complete)


def _run_core(trace, chunk_requests, passes=1, latency=100):
    events = EventQueue()
    memory = InstantMemory(events, latency)
    seen_passes = []

    def on_pass(core_id, now):
        seen_passes.append(now)
        return len(seen_passes) < passes

    core = TraceCore(
        core_id=0,
        config=CoreConfig(),
        trace=trace,
        events=events,
        access=memory.access,
        on_pass_complete=on_pass,
        chunk_requests=chunk_requests,
    )
    core.start()
    events.run()
    return core, memory


class TestCoreChunkedRefill:
    @pytest.mark.parametrize("requests", [3, 8, 10])
    def test_every_request_issues_across_refills(self, requests):
        trace = _mixed_trace(requests)
        core, memory = _run_core(trace, chunk_requests=4)
        assert len(memory.requests) == requests
        assert [line for _c, line, _w in memory.requests] == [
            int(line) for line in trace.lines
        ]
        assert core.instructions_retired == trace.instructions
        assert core.passes_completed == 1

    @pytest.mark.parametrize("requests", [3, 8, 10])
    def test_chunked_run_is_identical_to_unchunked(self, requests):
        trace = _mixed_trace(requests)
        chunked_core, chunked_memory = _run_core(trace, chunk_requests=4)
        whole_core, whole_memory = _run_core(
            trace, chunk_requests=DEFAULT_CHUNK_REQUESTS
        )
        assert chunked_memory.requests == whole_memory.requests
        assert chunked_core.finished_at == whole_core.finished_at
        assert (
            chunked_core.instructions_retired
            == whole_core.instructions_retired
        )

    def test_replay_spans_chunks(self):
        trace = _mixed_trace(10)
        core, memory = _run_core(trace, chunk_requests=4, passes=3)
        assert core.passes_completed == 3
        assert len(memory.requests) == 30
        assert core.instructions_retired == 3 * trace.instructions

    def test_index_and_retired_track_position(self):
        trace = Trace.from_records([(5, i, False) for i in range(6)])
        events = EventQueue()
        memory = InstantMemory(events, latency=10)
        core = TraceCore(
            0,
            CoreConfig(),
            trace,
            events,
            memory.access,
            chunk_requests=2,
        )
        core.start()
        assert core.index == 0
        assert core.instructions_retired == 0
        events.run()
        assert core.instructions_retired == trace.instructions
        assert core.ipc > 0

    def test_multi_chunk_simulation_result_is_unchanged(self):
        # Full-stack variant: a driver whose cores straddle chunk
        # boundaries must produce byte-identical results to the default
        # single-chunk decode.
        from repro.common.config import paper_single_core
        from repro.sim.engine import SimulationDriver

        config = paper_single_core(scale=128)
        trace = synthesize_trace("zeusmp", 1_000, scale=128, seed=0)
        baseline = SimulationDriver(
            config, "pom", [("zeusmp", trace)], seed=0
        ).run()
        driver = SimulationDriver(config, "pom", [("zeusmp", trace)], seed=0)
        for core in driver.cores:
            # Rebuild each core's front end with a tiny chunk size.
            core._decoder = TraceDecoder(core.trace, config.core.issue_ipc, 96)
            core._retired_base = 0
            core._load_chunk(0)
        assert driver.run().to_dict() == baseline.to_dict()
