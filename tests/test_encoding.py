"""ST-entry bit-packing tests (Figure 4 layout)."""

import pytest
from hypothesis import given, strategies as st

from repro.hybrid.encoding import (
    ENTRY_BYTES,
    EncodingError,
    decode_st_entry,
    encode_st_entry,
    entry_from_bytes,
    entry_to_bytes,
    storage_overhead_bits,
)
from repro.hybrid.st_entry import STEntry


def entry_with(swaps=(), qac=None, owner=None):
    entry = STEntry(9)
    for a, b in swaps:
        entry.swap(a, b)
    if qac:
        entry.qac = list(qac)
    entry.m1_owner = owner
    return entry


class TestLayout:
    def test_paper_storage_accounting(self):
        bits = storage_overhead_bits()
        # Section 4.1: 36 ATB + 18 QAC + 2 PID = 7 bytes, 1 reserved.
        assert bits["atb_bits"] == 36
        assert bits["qac_bits"] == 18
        assert bits["pid_bits"] == 2
        assert bits["used_bits"] == 56
        assert bits["reserved_bits"] == 8

    def test_identity_entry_encodes_deterministically(self):
        a = encode_st_entry(entry_with())
        b = encode_st_entry(entry_with())
        assert a == b

    def test_eight_bytes(self):
        assert len(entry_to_bytes(entry_with())) == ENTRY_BYTES


class TestRoundtrip:
    def test_swapped_entry(self):
        entry = entry_with(swaps=[(0, 5), (3, 7)], owner=2)
        decoded = decode_st_entry(encode_st_entry(entry))
        assert decoded.loc_of_slot == entry.loc_of_slot
        assert decoded.slot_of_loc == entry.slot_of_loc
        assert decoded.m1_owner == 2

    def test_qac_preserved(self):
        entry = entry_with(qac=[0, 1, 2, 3, 0, 1, 2, 3, 0])
        assert decode_st_entry(encode_st_entry(entry)).qac == entry.qac

    def test_bytes_roundtrip(self):
        entry = entry_with(swaps=[(1, 8)], qac=[3] * 9, owner=1)
        decoded = entry_from_bytes(entry_to_bytes(entry))
        assert decoded.loc_of_slot == entry.loc_of_slot
        assert decoded.qac == entry.qac

    def test_none_owner_uses_substitute(self):
        entry = entry_with(owner=None)
        decoded = decode_st_entry(encode_st_entry(entry, owner_bits=3))
        assert decoded.m1_owner == 3

    @given(
        swaps=st.lists(
            st.tuples(st.integers(0, 8), st.integers(0, 8)), max_size=20
        ),
        qac=st.lists(st.integers(0, 3), min_size=9, max_size=9),
        owner=st.integers(0, 3),
    )
    def test_roundtrip_property(self, swaps, qac, owner):
        entry = STEntry(9)
        for a, b in swaps:
            if a != b:
                entry.swap(a, b)
        entry.qac = list(qac)
        entry.m1_owner = owner
        decoded = decode_st_entry(encode_st_entry(entry))
        assert decoded.loc_of_slot == entry.loc_of_slot
        assert decoded.qac == entry.qac
        assert decoded.m1_owner == owner


class TestValidation:
    def test_wrong_group_size(self):
        with pytest.raises(EncodingError):
            encode_st_entry(STEntry(5))

    def test_qac_overflow(self):
        with pytest.raises(EncodingError):
            encode_st_entry(entry_with(qac=[4] + [0] * 8))

    def test_owner_overflow(self):
        with pytest.raises(EncodingError):
            encode_st_entry(entry_with(owner=4))

    def test_corrupt_word_detected(self):
        # All-zero ATB: every slot claims location 0.
        with pytest.raises(EncodingError):
            decode_st_entry(0)

    def test_wrong_byte_count(self):
        with pytest.raises(EncodingError):
            entry_from_bytes(b"\x00" * 4)
