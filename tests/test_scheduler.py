"""FR-FCFS-Cap scheduler tests (Section 4.1: cap = 4).

The batched (columnar) selection path is property-tested against the
scalar reference: for any queue state and any request sequence, both
implementations must choose the same index and carry the same row-hit
streak.
"""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.mem.request import DeviceAddress, MemRequest, Module
from repro.mem.scheduler import FrFcfsCapScheduler


def _req(bank: int, row: int) -> MemRequest:
    return MemRequest(
        core_id=0,
        address=DeviceAddress(Module.M1, bank, row),
        is_write=False,
        arrival=0,
    )


class TestSelection:
    def test_prefers_row_hit_over_older_miss(self):
        sched = FrFcfsCapScheduler(cap=4)
        pending = [_req(0, 1), _req(0, 2)]
        chosen = sched.select(pending, lambda r: r.address.row == 2)
        assert chosen == 1

    def test_oldest_when_no_hits(self):
        sched = FrFcfsCapScheduler(cap=4)
        pending = [_req(0, 1), _req(0, 2)]
        assert sched.select(pending, lambda r: False) == 0

    def test_cap_limits_consecutive_hits(self):
        sched = FrFcfsCapScheduler(cap=2)
        hit = lambda r: r.address.row == 9
        pending = [_req(0, 1), _req(0, 9)]
        # Two hits allowed...
        assert sched.select(pending, hit) == 1
        assert sched.select(pending, hit) == 1
        # ...then the oldest (a miss) must be chosen.
        assert sched.select(pending, hit) == 0

    def test_miss_resets_streak(self):
        sched = FrFcfsCapScheduler(cap=2)
        hit = lambda r: r.address.row == 9
        pending_hit = [_req(0, 1), _req(0, 9)]
        sched.select(pending_hit, hit)
        sched.select([_req(0, 1)], hit)  # a miss
        # Streak reset: hits allowed again.
        assert sched.select(pending_hit, hit) == 1

    def test_reset_streak_explicit(self):
        sched = FrFcfsCapScheduler(cap=1)
        hit = lambda r: True
        sched.select([_req(0, 1)], hit)
        sched.reset_streak()
        assert sched.select([_req(0, 2), _req(0, 3)], hit) == 0

    def test_oldest_hit_chosen_first(self):
        sched = FrFcfsCapScheduler(cap=4)
        pending = [_req(0, 5), _req(1, 9), _req(2, 9)]
        hit = lambda r: r.address.row == 9
        assert sched.select(pending, hit) == 1


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            FrFcfsCapScheduler().select([], lambda r: False)

    def test_rejects_bad_cap(self):
        with pytest.raises(ValueError):
            FrFcfsCapScheduler(cap=0)


# ----------------------------------------------------------------------
# Batched (columnar) selection: must mirror the scalar reference exactly
# ----------------------------------------------------------------------
def _columns(requests: list[tuple[int, int]]):
    """SoA columns for a batch of (bank, row) pairs in arrival order."""
    order = np.arange(len(requests), dtype=np.int64)
    bank_key = np.array([bank for bank, _row in requests], dtype=np.int64)
    row = np.array([row for _bank, row in requests], dtype=np.int64)
    return order, bank_key, row


def _select_batched(sched, requests, open_rows):
    order, bank_key, row = _columns(requests)
    return sched.select_batched(
        order, len(requests), bank_key, row, np.asarray(open_rows, np.int64)
    )


class TestBatchedSelection:
    def test_empty_ready_set_raises(self):
        sched = FrFcfsCapScheduler(cap=4)
        order, bank_key, row = _columns([(0, 1)])
        with pytest.raises(ValueError):
            sched.select_batched(order, 0, bank_key, row, np.zeros(1, np.int64))

    def test_cap_exhaustion_mid_batch_falls_back_to_oldest(self):
        # Row 9 is open in bank 0: the hit at index 1 wins until the
        # streak hits the cap mid-sequence, then the oldest miss issues.
        sched = FrFcfsCapScheduler(cap=2)
        requests = [(0, 1), (0, 9)]
        open_rows = [9]
        assert _select_batched(sched, requests, open_rows) == 1
        assert _select_batched(sched, requests, open_rows) == 1
        assert _select_batched(sched, requests, open_rows) == 0
        # Serving the miss resets the streak: hits flow again.
        assert _select_batched(sched, requests, open_rows) == 1

    def test_same_cycle_ties_break_in_fifo_order(self):
        # Two equally-ready row hits arriving in the same tick: the
        # older one (lower order index) must win, as must the oldest
        # among all-miss candidates.
        sched = FrFcfsCapScheduler(cap=4)
        assert _select_batched(sched, [(0, 5), (1, 9), (2, 9)], [5, 9, 9]) == 0
        sched.reset_streak()
        assert _select_batched(sched, [(0, 1), (1, 9), (2, 9)], [0, 9, 9]) == 1
        sched.reset_streak()
        assert _select_batched(sched, [(0, 1), (1, 2), (2, 3)], [9, 9, 9]) == 0

    def test_single_candidate_updates_streak(self):
        sched = FrFcfsCapScheduler(cap=1)
        assert _select_batched(sched, [(0, 7)], [7]) == 0  # hit: streak 1
        # Cap reached: with two candidates the oldest must now issue.
        assert _select_batched(sched, [(0, 1), (0, 7)], [7]) == 0

    @given(
        cap=st.integers(min_value=1, max_value=5),
        open_rows=st.lists(
            st.integers(min_value=0, max_value=3), min_size=4, max_size=4
        ),
        batches=st.lists(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=3),
                    st.integers(min_value=0, max_value=3),
                ),
                min_size=1,
                max_size=8,
            ),
            min_size=1,
            max_size=12,
        ),
    )
    def test_batched_matches_scalar_reference(self, cap, open_rows, batches):
        """Both paths agree on every pick and carry the same streak."""
        scalar = FrFcfsCapScheduler(cap=cap)
        batched = FrFcfsCapScheduler(cap=cap)
        for requests in batches:
            pending = [_req(bank, row) for bank, row in requests]
            expected = scalar.select(
                pending,
                lambda r: open_rows[r.address.bank] == r.address.row,
            )
            actual = _select_batched(batched, requests, open_rows)
            assert actual == expected
            assert (
                batched._consecutive_hits == scalar._consecutive_hits
            ), "streak accounting diverged"
