"""FR-FCFS-Cap scheduler tests (Section 4.1: cap = 4)."""

import pytest

from repro.mem.request import DeviceAddress, MemRequest, Module
from repro.mem.scheduler import FrFcfsCapScheduler


def _req(bank: int, row: int) -> MemRequest:
    return MemRequest(
        core_id=0,
        address=DeviceAddress(Module.M1, bank, row),
        is_write=False,
        arrival=0,
    )


class TestSelection:
    def test_prefers_row_hit_over_older_miss(self):
        sched = FrFcfsCapScheduler(cap=4)
        pending = [_req(0, 1), _req(0, 2)]
        chosen = sched.select(pending, lambda r: r.address.row == 2)
        assert chosen == 1

    def test_oldest_when_no_hits(self):
        sched = FrFcfsCapScheduler(cap=4)
        pending = [_req(0, 1), _req(0, 2)]
        assert sched.select(pending, lambda r: False) == 0

    def test_cap_limits_consecutive_hits(self):
        sched = FrFcfsCapScheduler(cap=2)
        hit = lambda r: r.address.row == 9
        pending = [_req(0, 1), _req(0, 9)]
        # Two hits allowed...
        assert sched.select(pending, hit) == 1
        assert sched.select(pending, hit) == 1
        # ...then the oldest (a miss) must be chosen.
        assert sched.select(pending, hit) == 0

    def test_miss_resets_streak(self):
        sched = FrFcfsCapScheduler(cap=2)
        hit = lambda r: r.address.row == 9
        pending_hit = [_req(0, 1), _req(0, 9)]
        sched.select(pending_hit, hit)
        sched.select([_req(0, 1)], hit)  # a miss
        # Streak reset: hits allowed again.
        assert sched.select(pending_hit, hit) == 1

    def test_reset_streak_explicit(self):
        sched = FrFcfsCapScheduler(cap=1)
        hit = lambda r: True
        sched.select([_req(0, 1)], hit)
        sched.reset_streak()
        assert sched.select([_req(0, 2), _req(0, 3)], hit) == 0

    def test_oldest_hit_chosen_first(self):
        sched = FrFcfsCapScheduler(cap=4)
        pending = [_req(0, 5), _req(1, 9), _req(2, 9)]
        hit = lambda r: r.address.row == 9
        assert sched.select(pending, hit) == 1


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            FrFcfsCapScheduler().select([], lambda r: False)

    def test_rejects_bad_cap(self):
        with pytest.raises(ValueError):
            FrFcfsCapScheduler(cap=0)
