"""Swap-group Table Cache tests (Figure 4 semantics)."""

from repro.cache.stc import STC, STCEntry


def make_stc(sets=2, assoc=2):
    return STC(num_sets=sets, associativity=assoc, group_size=9)


class TestEntries:
    def test_counters_start_zero(self):
        entry = STCEntry(group=1, qac_at_insert=(0,) * 9)
        assert entry.counters == [0] * 9

    def test_bump_saturates(self):
        entry = STCEntry(group=1, qac_at_insert=(0,) * 9)
        entry.bump(3, 60, maximum=63)
        entry.bump(3, 60, maximum=63)
        assert entry.count(3) == 63

    def test_any_other_accessed(self):
        entry = STCEntry(group=1, qac_at_insert=(0,) * 9)
        assert not entry.any_other_accessed(0)
        entry.bump(4, 1, 63)
        assert entry.any_other_accessed(0)
        assert not entry.any_other_accessed(4)


class TestCacheBehaviour:
    def test_insert_then_lookup(self):
        stc = make_stc()
        stc.insert(5, (0,) * 9)
        entry = stc.lookup(5)
        assert entry is not None
        assert entry.group == 5

    def test_qac_snapshot_preserved(self):
        stc = make_stc()
        stc.insert(5, (0, 1, 2, 3, 0, 0, 0, 0, 0))
        assert stc.lookup(5).qac_at_insert == (0, 1, 2, 3, 0, 0, 0, 0, 0)

    def test_eviction_callback_fires(self):
        stc = make_stc(sets=1, assoc=1)
        evicted = []
        stc.on_eviction(evicted.append)
        stc.insert(0, (0,) * 9)
        stc.insert(1, (0,) * 9)
        assert [e.group for e in evicted] == [0]

    def test_eviction_callback_sees_counters(self):
        stc = make_stc(sets=1, assoc=1)
        seen = []
        stc.on_eviction(lambda e: seen.append(list(e.counters)))
        stc.insert(0, (0,) * 9)
        stc.bump(stc.peek(0), 2, 5)
        stc.insert(1, (0,) * 9)
        assert seen[0][2] == 5

    def test_hit_rate(self):
        stc = make_stc()
        stc.lookup(0)  # miss
        stc.insert(0, (0,) * 9)
        stc.lookup(0)  # hit
        assert stc.hit_rate == 0.5
        assert stc.hits == 1
        assert stc.misses == 1

    def test_peek_stat_free(self):
        stc = make_stc()
        stc.insert(0, (0,) * 9)
        stc.peek(0)
        assert stc.hits == 0

    def test_flush_evicts_all(self):
        stc = make_stc()
        evicted = []
        stc.on_eviction(lambda e: evicted.append(e.group))
        stc.insert(0, (0,) * 9)
        stc.insert(1, (0,) * 9)
        flushed = stc.flush()
        assert sorted(e.group for e in flushed) == [0, 1]
        assert sorted(evicted) == [0, 1]
        assert stc.peek(0) is None

    def test_counter_max_respected(self):
        stc = STC(num_sets=1, associativity=1, group_size=9, counter_max=7)
        stc.insert(0, (0,) * 9)
        entry = stc.peek(0)
        stc.bump(entry, 0, 100)
        assert entry.count(0) == 7
