"""Trace container and cache-filter tests."""

import numpy as np
import pytest

from repro.cache.hierarchy import CacheHierarchy
from repro.common.config import CacheLevelConfig
from repro.common.errors import TraceError
from repro.cpu.trace import Trace, filter_through_caches


def simple_trace():
    return Trace.from_records([(10, 0, False), (5, 1, True), (0, 2, False)])


class TestTrace:
    def test_length(self):
        assert len(simple_trace()) == 3

    def test_iteration(self):
        records = list(simple_trace())
        assert records[0] == (10, 0, False)
        assert records[1] == (5, 1, True)

    def test_instructions(self):
        # gaps 10+5+0 plus one instruction per memory op.
        assert simple_trace().instructions == 18

    def test_mpki(self):
        assert simple_trace().mpki == pytest.approx(1000 * 3 / 18)

    def test_write_fraction(self):
        assert simple_trace().write_fraction == pytest.approx(1 / 3)

    def test_footprint_lines(self):
        assert simple_trace().footprint_lines == 3

    def test_max_line(self):
        assert simple_trace().max_line() == 2

    def test_truncated(self):
        short = simple_trace().truncated(2)
        assert len(short) == 2
        assert short.max_line() == 1

    def test_truncated_no_op_when_longer(self):
        trace = simple_trace()
        assert trace.truncated(100) is trace

    def test_truncate_rejects_zero(self):
        with pytest.raises(TraceError):
            simple_trace().truncated(0)

    def test_rejects_empty(self):
        with pytest.raises(TraceError):
            Trace.from_records([])

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(TraceError):
            Trace(
                gaps=np.array([1]),
                lines=np.array([1, 2]),
                writes=np.array([True]),
            )

    def test_rejects_negative_gap(self):
        with pytest.raises(TraceError):
            Trace.from_records([(-1, 0, False)])

    def test_save_load_roundtrip(self, tmp_path):
        trace = simple_trace()
        path = tmp_path / "t.npz"
        trace.save(path)
        loaded = Trace.load(path)
        assert list(loaded) == list(trace)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            Trace.load(tmp_path / "missing.npz")


class TestCacheFilter:
    def test_hits_are_filtered_out(self):
        hierarchy = CacheHierarchy([CacheLevelConfig(64 * 64, 4, 2)])
        stream = [(0, 5, False)] * 10  # same line: one miss, nine hits
        trace = filter_through_caches(stream, hierarchy)
        assert len(trace) == 1

    def test_gaps_accumulate_across_hits(self):
        hierarchy = CacheHierarchy([CacheLevelConfig(64 * 64, 4, 2)])
        stream = [(3, 5, False), (3, 5, False), (3, 6, False)]
        trace = filter_through_caches(stream, hierarchy)
        # Second miss carries its own gap + the hit's gap + 1 retired hit.
        assert trace.gaps[1] == 3 + 3 + 1

    def test_writebacks_appear_as_writes(self):
        hierarchy = CacheHierarchy([CacheLevelConfig(2 * 64, 2, 2)])
        stream = [(0, 0, True)] + [(0, line, False) for line in range(1, 8)]
        trace = filter_through_caches(stream, hierarchy)
        assert bool(trace.writes.any())

    def test_all_hits_rejected(self):
        hierarchy = CacheHierarchy([CacheLevelConfig(64 * 64, 4, 2)])
        hierarchy.access(5)
        with pytest.raises(TraceError):
            filter_through_caches([(0, 5, False)], hierarchy)
