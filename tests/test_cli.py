"""CLI tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig5"])
        assert args.experiment == ["fig5"]
        assert args.scale == 64
        assert args.seed == 0
        assert args.jobs == 1
        assert args.cache_dir is None

    def test_run_overrides(self):
        args = build_parser().parse_args(
            ["run", "fig13", "--scale", "128", "--requests", "1000"]
        )
        assert args.scale == 128
        assert args.requests == 1000

    def test_run_accepts_id_list(self):
        args = build_parser().parse_args(["run", "fig5", "fig7", "table1"])
        assert args.experiment == ["fig5", "fig7", "table1"]

    def test_execution_flags(self):
        args = build_parser().parse_args(
            ["run", "fig5", "--jobs", "4", "--cache-dir", "c"]
        )
        assert args.jobs == 4
        assert str(args.cache_dir) == "c"

    def test_rejects_nonpositive_jobs(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["run", "fig5", "--jobs", "0"])
        assert excinfo.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_rejects_cache_dir_that_is_a_file(self, tmp_path, capsys):
        blocker = tmp_path / "notadir"
        blocker.write_text("")
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(
                ["run", "fig5", "--cache-dir", str(blocker)]
            )
        assert excinfo.value.code == 2
        assert "not a directory" in capsys.readouterr().err

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_exits_zero(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out
        assert "table4" in out

    def test_unknown_experiment_exits_two(self, capsys):
        code = main(
            ["run", "fig99", "--scale", "128", "--requests", "500",
             "--single-requests", "500"]
        )
        assert code == 2

    def test_unknown_id_in_list_aborts_before_running(self, tmp_path, capsys):
        # table1 is valid and cheap, but the bad trailing id must abort
        # the whole request up front: exit 2, nothing simulated/written.
        code = main(
            ["run", "table1", "fig99", "--scale", "128", "--requests", "500",
             "--single-requests", "500", "--out", str(tmp_path)]
        )
        assert code == 2
        assert not list(tmp_path.iterdir())
        assert "fig99" in capsys.readouterr().err

    def test_verbose_surfaces_cache_counters(self, tmp_path, capsys):
        argv = [
            "run", "fig7", "--scale", "128", "--requests", "500",
            "--single-requests", "500", "--verbose",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "simulations executed:" in cold
        assert "simulations executed: 0" not in cold
        # Second invocation: everything served from the disk cache.
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "simulations executed: 0" in warm

    def test_run_writes_report(self, tmp_path, capsys):
        code = main(
            [
                "run",
                "table1",
                "--scale",
                "128",
                "--requests",
                "500",
                "--single-requests",
                "500",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        report = (tmp_path / "table1.txt").read_text()
        assert "Table 1" in report


class TestReportCommand:
    def test_parse_defaults(self):
        args = build_parser().parse_args(["report"])
        assert args.command == "report"
        assert str(args.output) == "EXPERIMENTS.md"
        assert args.store is None

    def test_parse_overrides(self):
        args = build_parser().parse_args(
            ["report", "--scale", "128", "--store", "out", "--output", "E.md"]
        )
        assert args.scale == 128
        assert str(args.store) == "out"
        assert str(args.output) == "E.md"


class TestGoldenCommand:
    def test_parse_defaults(self):
        args = build_parser().parse_args(["golden"])
        assert args.command == "golden"
        assert args.check is None
        assert args.out is None

    def test_check_passes_and_writes_digests(self, tmp_path, capsys):
        import json
        from pathlib import Path

        out = tmp_path / "digests.json"
        golden_dir = Path(__file__).parent / "golden"
        code = main(
            ["golden", "--check", str(golden_dir), "--out", str(out)]
        )
        assert code == 0
        assert "byte-identical" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert set(payload) == {"python", "scenarios"}
        assert all(
            len(digest) == 64 for digest in payload["scenarios"].values()
        )

    def test_check_fails_on_mismatching_blobs(self, tmp_path, capsys):
        (tmp_path / "single_pom.json").write_text("{}\n")
        code = main(["golden", "--check", str(tmp_path)])
        assert code == 1
        assert "GOLDEN MISMATCH" in capsys.readouterr().err


class TestPerfSummaryFlag:
    def test_summary_appends_markdown_table(self, tmp_path, capsys):
        summary = tmp_path / "summary.md"
        summary.write_text("# existing\n")
        code = main(
            [
                "perf",
                "--quick",
                "--repeats",
                "1",
                "--out",
                str(tmp_path / "bench.json"),
                "--summary",
                str(summary),
            ]
        )
        assert code == 0
        text = summary.read_text()
        assert text.startswith("# existing\n")
        assert "| single |" in text and "| multi |" in text


class TestTraceCommands:
    def test_trace_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "t.npz"
        code = main(
            ["trace", "zeusmp", str(out), "--requests", "500", "--scale", "128"]
        )
        assert code == 0
        assert out.exists()
        assert "500 requests" in capsys.readouterr().out

    def test_characterize_program(self, capsys):
        code = main(
            ["characterize", "zeusmp", "--requests", "500", "--scale", "128"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "MPKI" in out
        assert "footprint" in out

    def test_characterize_file(self, tmp_path, capsys):
        out = tmp_path / "t.npz"
        main(["trace", "lbm", str(out), "--requests", "400", "--scale", "128"])
        capsys.readouterr()
        assert main(["characterize", str(out)]) == 0
        assert "write fraction" in capsys.readouterr().out
