"""CLI tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig5"])
        assert args.experiment == ["fig5"]
        assert args.scale == 64
        assert args.seed == 0
        assert args.jobs == 1
        assert args.cache_dir is None

    def test_run_overrides(self):
        args = build_parser().parse_args(
            ["run", "fig13", "--scale", "128", "--requests", "1000"]
        )
        assert args.scale == 128
        assert args.requests == 1000

    def test_run_accepts_id_list(self):
        args = build_parser().parse_args(["run", "fig5", "fig7", "table1"])
        assert args.experiment == ["fig5", "fig7", "table1"]

    def test_execution_flags(self):
        args = build_parser().parse_args(
            ["run", "fig5", "--jobs", "4", "--cache-dir", "c"]
        )
        assert args.jobs == 4
        assert str(args.cache_dir) == "c"

    @pytest.mark.parametrize("jobs", ["0", "-3"])
    def test_rejects_nonpositive_jobs(self, jobs, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["run", "fig5", "--jobs", jobs])
        assert excinfo.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_transport_defaults_to_auto(self):
        for command in (["run", "fig5"], ["report"]):
            assert build_parser().parse_args(command).transport == "auto"

    def test_transport_accepts_known_names(self):
        args = build_parser().parse_args(
            ["run", "fig5", "--transport", "shm"]
        )
        assert args.transport == "shm"

    def test_rejects_unknown_transport(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(
                ["run", "fig5", "--transport", "carrier-pigeon"]
            )
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_rejects_cache_dir_that_is_a_file(self, tmp_path, capsys):
        blocker = tmp_path / "notadir"
        blocker.write_text("")
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(
                ["run", "fig5", "--cache-dir", str(blocker)]
            )
        assert excinfo.value.code == 2
        assert "not a directory" in capsys.readouterr().err

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_exits_zero(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out
        assert "table4" in out

    def test_unknown_experiment_exits_two(self, capsys):
        code = main(
            ["run", "fig99", "--scale", "128", "--requests", "500",
             "--single-requests", "500"]
        )
        assert code == 2

    def test_unknown_id_in_list_aborts_before_running(self, tmp_path, capsys):
        # table1 is valid and cheap, but the bad trailing id must abort
        # the whole request up front: exit 2, nothing simulated/written.
        code = main(
            ["run", "table1", "fig99", "--scale", "128", "--requests", "500",
             "--single-requests", "500", "--out", str(tmp_path)]
        )
        assert code == 2
        assert not list(tmp_path.iterdir())
        assert "fig99" in capsys.readouterr().err

    def test_verbose_surfaces_cache_counters(self, tmp_path, capsys):
        argv = [
            "run", "fig7", "--scale", "128", "--requests", "500",
            "--single-requests", "500", "--verbose",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "simulations executed:" in cold
        assert "simulations executed: 0" not in cold
        # Second invocation: everything served from the disk cache.
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "simulations executed: 0" in warm

    def test_run_writes_report(self, tmp_path, capsys):
        code = main(
            [
                "run",
                "table1",
                "--scale",
                "128",
                "--requests",
                "500",
                "--single-requests",
                "500",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        report = (tmp_path / "table1.txt").read_text()
        assert "Table 1" in report


class TestReportCommand:
    def test_parse_defaults(self):
        args = build_parser().parse_args(["report"])
        assert args.command == "report"
        assert str(args.output) == "EXPERIMENTS.md"
        assert args.store is None

    def test_parse_overrides(self):
        args = build_parser().parse_args(
            ["report", "--scale", "128", "--store", "out", "--output", "E.md"]
        )
        assert args.scale == 128
        assert str(args.store) == "out"
        assert str(args.output) == "E.md"


class TestGoldenCommand:
    def test_parse_defaults(self):
        args = build_parser().parse_args(["golden"])
        assert args.command == "golden"
        assert args.check is None
        assert args.out is None

    def test_check_passes_and_writes_digests(self, tmp_path, capsys):
        import json
        from pathlib import Path

        out = tmp_path / "digests.json"
        golden_dir = Path(__file__).parent / "golden"
        code = main(
            ["golden", "--check", str(golden_dir), "--out", str(out)]
        )
        assert code == 0
        assert "byte-identical" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert set(payload) == {"python", "scenarios"}
        assert all(
            len(digest) == 64 for digest in payload["scenarios"].values()
        )

    def test_check_fails_on_mismatching_blobs(self, tmp_path, capsys):
        (tmp_path / "single_pom.json").write_text("{}\n")
        code = main(["golden", "--check", str(tmp_path)])
        assert code == 1
        assert "GOLDEN MISMATCH" in capsys.readouterr().err


class TestPerfSummaryFlag:
    def test_summary_appends_markdown_table(self, tmp_path, capsys):
        summary = tmp_path / "summary.md"
        summary.write_text("# existing\n")
        code = main(
            [
                "perf",
                "--quick",
                "--repeats",
                "1",
                "--out",
                str(tmp_path / "bench.json"),
                "--summary",
                str(summary),
            ]
        )
        assert code == 0
        text = summary.read_text()
        assert text.startswith("# existing\n")
        assert "| single |" in text and "| multi |" in text


class TestCacheCommand:
    def _populate(self, tmp_path):
        cache_dir = tmp_path / "cache"
        quarantine = cache_dir / "quarantine"
        quarantine.mkdir(parents=True)
        (cache_dir / "deadbeef.json").write_text("{}\n")
        (quarantine / "bad.json").write_text("{}\n")
        (quarantine / "bad.reason.txt").write_text("integrity mismatch\n")
        return cache_dir

    def test_reports_counts(self, tmp_path, capsys):
        cache_dir = self._populate(tmp_path)
        assert main(["cache", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "1 entr(ies)" in out
        assert "1 quarantined" in out

    def test_prune_quarantine(self, tmp_path, capsys):
        cache_dir = self._populate(tmp_path)
        code = main(
            ["cache", "--cache-dir", str(cache_dir), "--prune-quarantine"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pruned 1 quarantined" in out
        assert "0 quarantined" in out
        # Entries survive a quarantine-only prune; reason files go too.
        assert (cache_dir / "deadbeef.json").exists()
        assert not list((cache_dir / "quarantine").iterdir())

    def test_clear_and_prune_together(self, tmp_path, capsys):
        cache_dir = self._populate(tmp_path)
        code = main(
            ["cache", "--cache-dir", str(cache_dir), "--clear",
             "--prune-quarantine"]
        )
        assert code == 0
        assert "0 entr(ies), 0 quarantined" in capsys.readouterr().out

    def test_requires_cache_dir(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["cache"])
        assert excinfo.value.code == 2


class TestPerfSweep:
    def test_parse_defaults(self):
        args = build_parser().parse_args(["perf", "--sweep"])
        assert args.sweep
        assert args.sweep_specs == 200
        assert args.jobs == 1
        assert args.transport == "auto"
        assert args.max_rss_ratio == pytest.approx(1.4)
        assert args.out is None

    def test_sweep_runs_and_gates_against_itself(self, tmp_path, capsys):
        out = tmp_path / "BENCH_sweep.json"
        summary = tmp_path / "summary.md"
        code = main(
            ["perf", "--sweep", "--sweep-specs", "6", "--transport", "shm",
             "--out", str(out), "--summary", str(summary)]
        )
        assert code == 0
        import json

        payload = json.loads(out.read_text())
        assert payload["spec_count"] == 6
        assert payload["completed"] == 6
        assert payload["failed"] == 0
        assert payload["requests_per_sec"] > 0
        assert "peak_rss_mb" in payload
        assert "| requests/sec |" in summary.read_text()
        capsys.readouterr()
        # Gate a second run against a baseline recorded per the
        # documented recipe (throughput halved, RSS headroom added) —
        # gating against the raw first measurement is timing-noise
        # flaky when the suite runs on a loaded machine.
        baseline = dict(payload)
        baseline["requests_per_sec"] = payload["requests_per_sec"] / 2
        baseline["peak_rss_mb"] = payload["peak_rss_mb"] * 1.3
        recorded = tmp_path / "baseline.json"
        recorded.write_text(json.dumps(baseline))
        code = main(
            ["perf", "--sweep", "--sweep-specs", "6", "--transport", "shm",
             "--out", str(tmp_path / "b2.json"),
             "--baseline", str(recorded)]
        )
        assert code == 0
        assert "within" in capsys.readouterr().out

    def test_sweep_size_mismatch_fails(self, tmp_path, capsys):
        out = tmp_path / "BENCH_sweep.json"
        assert main(
            ["perf", "--sweep", "--sweep-specs", "4", "--out", str(out)]
        ) == 0
        capsys.readouterr()
        code = main(
            ["perf", "--sweep", "--sweep-specs", "6",
             "--out", str(tmp_path / "b2.json"), "--baseline", str(out)]
        )
        assert code == 1
        assert "sweep size mismatch" in capsys.readouterr().err


class TestTraceCommands:
    def test_trace_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "t.npz"
        code = main(
            ["trace", "zeusmp", str(out), "--requests", "500", "--scale", "128"]
        )
        assert code == 0
        assert out.exists()
        assert "500 requests" in capsys.readouterr().out

    def test_characterize_program(self, capsys):
        code = main(
            ["characterize", "zeusmp", "--requests", "500", "--scale", "128"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "MPKI" in out
        assert "footprint" in out

    def test_characterize_file(self, tmp_path, capsys):
        out = tmp_path / "t.npz"
        main(["trace", "lbm", str(out), "--requests", "400", "--scale", "128"])
        capsys.readouterr()
        assert main(["characterize", str(out)]) == 0
        assert "write fraction" in capsys.readouterr().out
