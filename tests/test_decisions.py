"""Predictor-calibration analysis tests."""

import pytest

from repro.analysis.decisions import calibrate, calibration_by_bucket
from repro.common.config import paper_single_core
from repro.core.mdm import MDMPolicy
from repro.sim.engine import SimulationDriver
from repro.traces.generator import synthesize_trace


class TestCalibrate:
    def test_perfect_predictions(self):
        pairs = [(5.0, 5.0), (20.0, 20.0), (1.0, 1.0)]
        report = calibrate(pairs)
        assert report.bias == 0.0
        assert report.mean_absolute_error == 0.0
        assert report.decision_accuracy == 1.0
        assert report.rank_correlation == pytest.approx(1.0)

    def test_bias_sign(self):
        over = calibrate([(10.0, 5.0)] * 3)
        under = calibrate([(5.0, 10.0)] * 3)
        assert over.bias > 0 > under.bias

    def test_decision_confusion(self):
        pairs = [
            (10.0, 10.0),  # true promote
            (10.0, 0.0),  # false promote
            (0.0, 0.0),  # true skip
            (0.0, 10.0),  # false skip
        ]
        report = calibrate(pairs, min_benefit=8.0)
        assert report.true_promotes == 1
        assert report.false_promotes == 1
        assert report.true_skips == 1
        assert report.false_skips == 1
        assert report.decision_accuracy == 0.5

    def test_anticorrelated_rank(self):
        pairs = [(1.0, 30.0), (10.0, 20.0), (20.0, 10.0), (30.0, 1.0)]
        assert calibrate(pairs).rank_correlation == pytest.approx(-1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            calibrate([])

    def test_constant_series_zero_correlation(self):
        assert calibrate([(5.0, 3.0)] * 4).rank_correlation == 0.0


class TestBuckets:
    def test_bucket_assignment(self):
        pairs = [(2.0, 1.0), (10.0, 12.0), (50.0, 40.0)]
        rows = calibration_by_bucket(pairs, edges=(0, 8, 32))
        labels = [r[0] for r in rows]
        assert labels == ["[0, 8)", "[8, 32)", "[32, inf)"]
        assert all(r[1] == 1 for r in rows)

    def test_empty_buckets_skipped(self):
        rows = calibration_by_bucket([(2.0, 1.0)], edges=(0, 8, 32))
        assert len(rows) == 1


class TestRecordingIntegration:
    def test_pairs_recorded_in_simulation(self):
        config = paper_single_core(scale=128)
        policy = MDMPolicy(config, record_predictions=True)
        trace = synthesize_trace("zeusmp", 3000, scale=128, seed=2)
        SimulationDriver(config, policy, [("zeusmp", trace)]).run()
        assert policy.prediction_log
        for predicted, actual in policy.prediction_log:
            assert actual >= 0

    def test_recording_off_by_default(self):
        config = paper_single_core(scale=128)
        policy = MDMPolicy(config)
        trace = synthesize_trace("zeusmp", 2000, scale=128, seed=2)
        SimulationDriver(config, policy, [("zeusmp", trace)]).run()
        assert not policy.prediction_log

    def test_one_record_per_residency(self):
        config = paper_single_core(scale=128)
        policy = MDMPolicy(config, record_predictions=True)
        trace = synthesize_trace("zeusmp", 3000, scale=128, seed=2)
        SimulationDriver(config, policy, [("zeusmp", trace)]).run()
        # The log cannot exceed the number of ST-entry eviction events
        # times the group size; sanity-bound it by total decisions.
        assert len(policy.prediction_log) <= policy.decisions
