"""Trace synthesis tests: MPKI, footprint scaling, determinism."""

import pytest

from repro.common.errors import TraceError
from repro.common.units import MB
from repro.traces.generator import (
    LINES_PER_PAGE,
    cached_trace,
    footprint_pages,
    synthesize_trace,
)
from repro.traces.spec import PROGRAM_PROFILES, profile


class TestFootprintScaling:
    def test_paper_scale(self):
        pages = footprint_pages(profile("libquantum"), scale=1)
        assert pages == 32 * MB // 4096

    def test_scaling_divides(self):
        full = footprint_pages(profile("mcf"), scale=1)
        scaled = footprint_pages(profile("mcf"), scale=64)
        assert scaled == pytest.approx(full / 64, rel=0.01)

    def test_minimum_floor(self):
        assert footprint_pages(profile("libquantum"), scale=1 << 20) >= 4


class TestSynthesis:
    def test_mpki_approximates_profile(self):
        trace = synthesize_trace("mcf", 20_000, scale=64, seed=1)
        assert trace.mpki == pytest.approx(60, rel=0.15)

    def test_low_mpki_program(self):
        trace = synthesize_trace("zeusmp", 20_000, scale=64, seed=1)
        assert trace.mpki == pytest.approx(5, rel=0.15)

    def test_footprint_within_bounds(self):
        trace = synthesize_trace("omnetpp", 30_000, scale=64, seed=1)
        limit = footprint_pages(profile("omnetpp"), 64) * LINES_PER_PAGE
        assert trace.max_line() < limit

    def test_write_fraction_reasonable(self):
        trace = synthesize_trace("lbm", 30_000, scale=64, seed=1)
        assert 0.25 < trace.write_fraction < 0.55

    def test_deterministic(self):
        a = synthesize_trace("milc", 5_000, scale=64, seed=7)
        b = synthesize_trace("milc", 5_000, scale=64, seed=7)
        assert (a.lines == b.lines).all()
        assert (a.gaps == b.gaps).all()

    def test_seeds_differ(self):
        a = synthesize_trace("milc", 5_000, scale=64, seed=7)
        b = synthesize_trace("milc", 5_000, scale=64, seed=8)
        assert (a.lines != b.lines).any()

    def test_cached_identity(self):
        a = cached_trace("milc", 5_000, 64, 7)
        b = cached_trace("milc", 5_000, 64, 7)
        assert a is b

    def test_rejects_zero_requests(self):
        with pytest.raises(TraceError):
            synthesize_trace("milc", 0, scale=64)

    def test_unknown_program(self):
        with pytest.raises(KeyError):
            synthesize_trace("gcc", 100, scale=64)

    def test_custom_profile_accepted(self):
        trace = synthesize_trace(profile("lbm"), 1_000, scale=64)
        assert len(trace) == 1_000


class TestProfiles:
    def test_all_table9_present(self):
        assert len(PROGRAM_PROFILES) == 10

    @pytest.mark.parametrize("name", sorted(PROGRAM_PROFILES))
    def test_weights_sum_to_one(self, name):
        assert sum(c.weight for c in profile(name).components) == pytest.approx(1.0)

    def test_table9_mpki_values(self):
        assert profile("mcf").mpki == 60
        assert profile("zeusmp").mpki == 5
        assert profile("lbm").footprint_mb == 402

    def test_irregular_programs_have_chase(self):
        for name in ("mcf", "omnetpp"):
            kinds = {c.kind for c in profile(name).components}
            assert "chase" in kinds

    def test_libquantum_is_pure_stream(self):
        kinds = [c.kind for c in profile("libquantum").components]
        assert kinds == ["stream"]
