"""Runtime invariant-checker tests, including a light fuzz."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.common.config import paper_quad_core
from repro.sim.engine import SimulationDriver
from repro.sim.validation import ValidationError, validate_controller
from repro.traces.generator import synthesize_trace

SCALE = 128
CONFIG = paper_quad_core(scale=SCALE)


def run(policy, programs, requests=2000, seed=3):
    traces = [
        (name, synthesize_trace(name, requests, scale=SCALE, seed=index))
        for index, name in enumerate(programs)
    ]
    driver = SimulationDriver(CONFIG, policy, traces, seed=seed)
    driver.run()
    return driver.controller


class TestCleanRuns:
    @pytest.mark.parametrize(
        "policy", ["static", "cameo", "pom", "silcfm", "mempod", "mdm", "profess"]
    )
    def test_every_policy_passes_validation(self, policy):
        controller = run(policy, ["soplex", "milc"])
        assert validate_controller(controller) > 0


class TestViolationsDetected:
    def test_broken_permutation(self):
        controller = run("mdm", ["soplex"])
        group = controller.st.touched_groups()[0]
        controller.st.entry(group).loc_of_slot[0] = 5  # corrupt
        with pytest.raises(ValidationError):
            validate_controller(controller)

    def test_out_of_range_qac(self):
        controller = run("mdm", ["soplex"])
        group = controller.st.touched_groups()[0]
        controller.st.entry(group).qac[3] = 9
        with pytest.raises(ValidationError):
            validate_controller(controller)

    def test_wrong_m1_owner(self):
        controller = run("mdm", ["soplex"])
        for group in controller.st.touched_groups():
            entry = controller.st.entry(group)
            real = controller.owner_of_slot(group, entry.m1_slot)
            if real is not None:
                entry.m1_owner = real + 1
                break
        with pytest.raises(ValidationError):
            validate_controller(controller)

    def test_inconsistent_rsm(self):
        controller = run("profess", ["soplex", "milc"])
        controller.rsm.counters[0].num_swap_self = (
            controller.rsm.counters[0].num_swap_total + 5
        )
        with pytest.raises(ValidationError):
            validate_controller(controller)


class TestValidateEvery:
    """Periodic in-run auditing (``validate_every`` / ``--validate-every``)."""

    def _driver(self, validate_every):
        traces = [("soplex", synthesize_trace("soplex", 2000, scale=SCALE, seed=0))]
        return SimulationDriver(
            CONFIG, "mdm", traces, seed=3, validate_every=validate_every
        )

    def test_clean_run_unaffected(self):
        baseline = self._driver(0).run()
        audited = self._driver(5000).run()
        assert audited.cycles == baseline.cycles
        assert audited.total_swaps == baseline.total_swaps
        assert audited.total_requests == baseline.total_requests

    def test_catches_injected_st_corruption(self):
        driver = self._driver(2000)
        controller = driver.controller

        def corrupt(now):
            # Break the ST permutation of the first touched group (or
            # group 0, materialized on demand): duplicate one location.
            groups = controller.st.touched_groups()
            entry = controller.st.entry(groups[0] if groups else 0)
            entry.loc_of_slot[0] = entry.loc_of_slot[1]

        driver.events.schedule(1000, corrupt)
        with pytest.raises(ValidationError):
            driver.run()

    def test_corruption_after_run_end_not_audited(self):
        # The audit stops re-arming once the measured run ends: a clean
        # run that ends before the next audit tick completes normally.
        driver = self._driver(10**9)
        result = driver.run()
        assert result.cycles > 0

    def test_negative_rejected(self):
        from repro.common.errors import SimulationError

        with pytest.raises(SimulationError):
            self._driver(-1)

    def test_runner_plumbs_flag_into_specs(self):
        from repro.experiments.runner import ExperimentRunner

        runner = ExperimentRunner(scale=128, validate_every=777)
        assert runner.spec_single("soplex", "mdm").validate_every == 777
        assert runner.spec_alone("soplex", "mdm").validate_every == 777
        assert runner.spec_mix(["soplex", "milc"], "mdm").validate_every == 777

    def test_cache_key_excludes_validate_every(self):
        # Diagnostic-only: a validated result must be interchangeable
        # with (and served from the cache of) an unvalidated one.
        from dataclasses import replace

        from repro.experiments.runner import ExperimentRunner

        spec = ExperimentRunner(scale=128).spec_single("soplex", "mdm")
        assert (
            replace(spec, validate_every=123).cache_key() == spec.cache_key()
        )


class TestFuzz:
    """Random mixes and policies keep every invariant (mini fuzz)."""

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        policy=st.sampled_from(["cameo", "pom", "mdm", "profess"]),
        programs=st.lists(
            st.sampled_from(["soplex", "milc", "zeusmp", "omnetpp", "lbm"]),
            min_size=1,
            max_size=4,
        ),
        seed=st.integers(min_value=0, max_value=7),
    )
    def test_random_runs_stay_valid(self, policy, programs, seed):
        controller = run(policy, programs, requests=800, seed=seed)
        assert validate_controller(controller) > 0
