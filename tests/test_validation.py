"""Runtime invariant-checker tests, including a light fuzz."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.common.config import paper_quad_core
from repro.sim.engine import SimulationDriver
from repro.sim.validation import ValidationError, validate_controller
from repro.traces.generator import synthesize_trace

SCALE = 128
CONFIG = paper_quad_core(scale=SCALE)


def run(policy, programs, requests=2000, seed=3):
    traces = [
        (name, synthesize_trace(name, requests, scale=SCALE, seed=index))
        for index, name in enumerate(programs)
    ]
    driver = SimulationDriver(CONFIG, policy, traces, seed=seed)
    driver.run()
    return driver.controller


class TestCleanRuns:
    @pytest.mark.parametrize(
        "policy", ["static", "cameo", "pom", "silcfm", "mempod", "mdm", "profess"]
    )
    def test_every_policy_passes_validation(self, policy):
        controller = run(policy, ["soplex", "milc"])
        assert validate_controller(controller) > 0


class TestViolationsDetected:
    def test_broken_permutation(self):
        controller = run("mdm", ["soplex"])
        group = controller.st.touched_groups()[0]
        controller.st.entry(group).loc_of_slot[0] = 5  # corrupt
        with pytest.raises(ValidationError):
            validate_controller(controller)

    def test_out_of_range_qac(self):
        controller = run("mdm", ["soplex"])
        group = controller.st.touched_groups()[0]
        controller.st.entry(group).qac[3] = 9
        with pytest.raises(ValidationError):
            validate_controller(controller)

    def test_wrong_m1_owner(self):
        controller = run("mdm", ["soplex"])
        for group in controller.st.touched_groups():
            entry = controller.st.entry(group)
            real = controller.owner_of_slot(group, entry.m1_slot)
            if real is not None:
                entry.m1_owner = real + 1
                break
        with pytest.raises(ValidationError):
            validate_controller(controller)

    def test_inconsistent_rsm(self):
        controller = run("profess", ["soplex", "milc"])
        controller.rsm.counters[0].num_swap_self = (
            controller.rsm.counters[0].num_swap_total + 5
        )
        with pytest.raises(ValidationError):
            validate_controller(controller)


class TestFuzz:
    """Random mixes and policies keep every invariant (mini fuzz)."""

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        policy=st.sampled_from(["cameo", "pom", "mdm", "profess"]),
        programs=st.lists(
            st.sampled_from(["soplex", "milc", "zeusmp", "omnetpp", "lbm"]),
            min_size=1,
            max_size=4,
        ),
        seed=st.integers(min_value=0, max_value=7),
    )
    def test_random_runs_stay_valid(self, policy, programs, seed):
        controller = run(policy, programs, requests=800, seed=seed)
        assert validate_controller(controller) > 0
