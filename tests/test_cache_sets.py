"""Set-associative array tests, including a hypothesis model check."""

import pytest
from hypothesis import given, strategies as st

from repro.cache.sets import SetAssociativeCache
from repro.common.errors import ConfigError


class TestBasics:
    def test_miss_then_hit(self):
        cache = SetAssociativeCache[int](4, 2)
        assert cache.lookup(5) is None
        cache.insert(5, 50)
        assert cache.lookup(5) == 50

    def test_hit_miss_counters(self):
        cache = SetAssociativeCache[int](4, 2)
        cache.lookup(1)
        cache.insert(1, 1)
        cache.lookup(1)
        assert cache.misses == 1
        assert cache.hits == 1
        assert cache.hit_rate == 0.5

    def test_peek_does_not_touch(self):
        cache = SetAssociativeCache[int](1, 2)
        cache.insert(0, 0)
        cache.insert(4, 4)  # LRU order: 0, 4
        cache.peek(0)
        victim = cache.insert(8, 8)
        assert victim.key == 0  # peek did not refresh 0

    def test_lookup_refreshes_lru(self):
        cache = SetAssociativeCache[int](1, 2)
        cache.insert(0, 0)
        cache.insert(4, 4)
        cache.lookup(0)
        victim = cache.insert(8, 8)
        assert victim.key == 4

    def test_eviction_is_lru(self):
        cache = SetAssociativeCache[int](1, 2)
        cache.insert(1, 1)
        cache.insert(2, 2)
        victim = cache.insert(3, 3)
        assert victim.key == 1

    def test_set_isolation(self):
        cache = SetAssociativeCache[int](2, 1)
        cache.insert(0, 0)  # set 0
        cache.insert(1, 1)  # set 1
        assert cache.lookup(0) == 0
        assert cache.lookup(1) == 1

    def test_reinsert_updates_in_place(self):
        cache = SetAssociativeCache[int](1, 1)
        cache.insert(1, 10)
        assert cache.insert(1, 20) is None
        assert cache.peek(1) == 20

    def test_dirty_propagation(self):
        cache = SetAssociativeCache[int](1, 1)
        cache.insert(1, 1)
        cache.mark_dirty(1)
        victim = cache.insert(2, 2)
        assert victim.dirty

    def test_insert_dirty(self):
        cache = SetAssociativeCache[int](1, 1)
        cache.insert(1, 1, dirty=True)
        assert cache.insert(2, 2).dirty

    def test_invalidate(self):
        cache = SetAssociativeCache[int](1, 2)
        cache.insert(1, 11)
        assert cache.invalidate(1) == 11
        assert cache.lookup(1) is None

    def test_contains_stat_free(self):
        cache = SetAssociativeCache[int](1, 2)
        cache.insert(1, 1)
        assert cache.contains(1)
        assert not cache.contains(2)
        assert cache.misses == 0

    def test_len_and_items(self):
        cache = SetAssociativeCache[int](2, 2)
        cache.insert(0, 0)
        cache.insert(1, 1)
        assert len(cache) == 2
        assert dict(cache.items()) == {0: 0, 1: 1}


class TestValidation:
    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigError):
            SetAssociativeCache(3, 2)

    def test_rejects_zero_assoc(self):
        with pytest.raises(ConfigError):
            SetAssociativeCache(4, 0)


class TestModelEquivalence:
    """Compare against a brute-force LRU reference across random ops."""

    @given(
        st.lists(
            st.tuples(st.sampled_from(["lookup", "insert"]), st.integers(0, 31)),
            max_size=200,
        )
    )
    def test_against_reference(self, ops):
        num_sets, assoc = 4, 2
        cache = SetAssociativeCache[int](num_sets, assoc)
        reference: dict[int, list[int]] = {s: [] for s in range(num_sets)}

        for op, key in ops:
            bucket = reference[key % num_sets]
            if op == "lookup":
                expected = key if key in bucket else None
                actual = cache.lookup(key)
                actual_key = None if actual is None else key
                assert actual_key == expected
                if key in bucket:
                    bucket.remove(key)
                    bucket.append(key)
            else:
                cache.insert(key, key)
                if key in bucket:
                    bucket.remove(key)
                elif len(bucket) >= assoc:
                    bucket.pop(0)
                bucket.append(key)

        resident = {key for key, _value in cache.items()}
        expected_resident = {k for b in reference.values() for k in b}
        assert resident == expected_resident


class TestReplacementPolicies:
    def test_fifo_ignores_hits(self):
        cache = SetAssociativeCache[int](1, 2, replacement="fifo")
        cache.insert(0, 0)
        cache.insert(4, 4)
        cache.lookup(0)  # would refresh under LRU
        victim = cache.insert(8, 8)
        assert victim.key == 0  # FIFO: insertion order rules

    def test_lru_respects_hits(self):
        cache = SetAssociativeCache[int](1, 2, replacement="lru")
        cache.insert(0, 0)
        cache.insert(4, 4)
        cache.lookup(0)
        victim = cache.insert(8, 8)
        assert victim.key == 4

    def test_random_is_deterministic_in_seed(self):
        def victims(seed):
            cache = SetAssociativeCache[int](1, 2, replacement="random", seed=seed)
            out = []
            for key in range(0, 40, 4):
                victim = cache.insert(key, key)
                if victim:
                    out.append(victim.key)
            return out

        assert victims(1) == victims(1)

    def test_random_varies_with_seed(self):
        def victims(seed):
            cache = SetAssociativeCache[int](1, 4, replacement="random", seed=seed)
            out = []
            for key in range(0, 200, 4):
                victim = cache.insert(key, key)
                if victim:
                    out.append(victim.key)
            return out

        assert any(victims(1)[i] != victims(2)[i] for i in range(10))

    def test_random_evicts_resident_key(self):
        cache = SetAssociativeCache[int](1, 3, replacement="random")
        resident = set()
        for key in range(0, 60, 4):
            victim = cache.insert(key, key)
            resident.add(key)
            if victim:
                assert victim.key in resident
                resident.discard(victim.key)

    def test_lfu_evicts_least_frequent(self):
        cache = SetAssociativeCache[int](1, 2, replacement="lfu")
        cache.insert(0, 0)
        cache.insert(4, 4)
        cache.lookup(0)  # freq(0)=2, freq(4)=1
        victim = cache.insert(8, 8)
        assert victim.key == 4

    def test_lfu_tie_breaks_by_insertion_order(self):
        cache = SetAssociativeCache[int](1, 2, replacement="lfu")
        cache.insert(0, 0)
        cache.insert(4, 4)  # both freq 1
        victim = cache.insert(8, 8)
        assert victim.key == 0  # oldest of the minimum-frequency entries

    def test_lfu_reinsert_bumps_frequency(self):
        cache = SetAssociativeCache[int](1, 2, replacement="lfu")
        cache.insert(0, 0)
        cache.insert(0, 10)  # freq(0)=2
        cache.insert(4, 4)
        victim = cache.insert(8, 8)
        assert victim.key == 4

    def test_lru_lip_inserts_at_lru_position(self):
        cache = SetAssociativeCache[int](1, 2, replacement="lru-lip")
        cache.insert(0, 0)
        cache.insert(4, 4)  # LIP: 4 lands at the LRU end
        victim = cache.insert(8, 8)
        assert victim.key == 4

    def test_lru_lip_hit_promotes(self):
        cache = SetAssociativeCache[int](1, 2, replacement="lru-lip")
        cache.insert(0, 0)
        cache.insert(4, 4)
        cache.lookup(4)  # promote the LIP-inserted entry
        victim = cache.insert(8, 8)
        assert victim.key == 0

    def test_unknown_policy_rejected(self):
        import pytest as _pytest
        from repro.common.errors import ConfigError as _ConfigError

        with _pytest.raises(_ConfigError):
            SetAssociativeCache(1, 2, replacement="plru")
