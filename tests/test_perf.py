"""Perf-harness tests: KernelProfile accounting, the benchmark payload,
the baseline regression gate, the markdown summary, the decode
before/after benchmark, and the instrumented event loop."""

import json

from repro.common.config import paper_single_core
from repro.perf.bench import (
    BENCH_SCHEMA_VERSION,
    compare_to_baseline,
    compatibility_warnings,
    markdown_summary,
    run_scenario,
    standard_scenarios,
    write_bench_json,
)
from repro.perf.decode_bench import run_decode_benchmark
from repro.perf.profile import KernelProfile
from repro.sim.engine import SimulationDriver
from repro.traces.generator import synthesize_trace


def _tiny_driver(profile=None):
    config = paper_single_core(scale=128)
    traces = [("zeusmp", synthesize_trace("zeusmp", 300, scale=128, seed=0))]
    return SimulationDriver(config, "static", traces, seed=0, profile=profile)


class TestKernelProfile:
    def test_accumulates_across_runs(self):
        profile = KernelProfile()
        profile.record_run(events=100, requests=10, cycles=50, wall_seconds=0.5)
        profile.record_run(events=300, requests=30, cycles=150, wall_seconds=0.5)
        assert profile.runs == 2
        assert profile.events_processed == 400
        assert profile.events_per_sec == 400.0
        assert profile.requests_per_sec == 40.0

    def test_zero_wall_time_is_not_a_division_error(self):
        assert KernelProfile().events_per_sec == 0.0

    def test_to_dict_omits_components_when_off(self):
        profile = KernelProfile()
        profile.record_run(events=1, requests=1, cycles=1, wall_seconds=1.0)
        assert "components" not in profile.to_dict()

    def test_driver_fills_counters(self):
        profile = KernelProfile()
        result = _tiny_driver(profile).run()
        assert profile.runs == 1
        assert profile.events_processed > result.total_requests
        assert profile.requests_served == result.total_requests == 300
        assert profile.cycles_simulated == result.cycles
        assert profile.wall_seconds > 0

    def test_component_timing_preserves_results(self):
        # The instrumented loop must be observationally identical to the
        # fast path — it only adds timing, never reordering.
        plain = _tiny_driver().run()
        instrumented_profile = KernelProfile(component_timing=True)
        instrumented = _tiny_driver(instrumented_profile).run()
        assert instrumented.to_dict() == plain.to_dict()
        table = instrumented_profile.component_table()
        assert table, "instrumented run produced no component buckets"
        assert sum(calls for _label, calls, _s in table) == (
            instrumented_profile.events_processed
        )


class TestBenchmark:
    def test_quick_scenarios_are_smaller(self):
        quick = {s.name: s for s in standard_scenarios(quick=True)}
        full = {s.name: s for s in standard_scenarios(quick=False)}
        assert set(quick) == set(full) == {"single", "multi"}
        for name in quick:
            quick_requests = sum(r for _p, r, _s in quick[name].programs)
            full_requests = sum(r for _p, r, _s in full[name].programs)
            assert quick_requests < full_requests

    def test_run_scenario_reports_best_repeat(self):
        scenario = standard_scenarios(quick=True)[0]
        tiny = type(scenario)(
            name=scenario.name,
            policy=scenario.policy,
            programs=(("zeusmp", 300, 0),),
            quad=False,
        )
        result = run_scenario(tiny, repeats=2)
        assert result.requests == 300
        assert result.events > result.requests
        assert result.events_per_sec > 0

    def test_write_bench_json_round_trips(self, tmp_path):
        payload = {"schema_version": BENCH_SCHEMA_VERSION, "scenarios": []}
        out = tmp_path / "bench.json"
        write_bench_json(payload, out)
        assert json.loads(out.read_text()) == payload


def _payload(quick=False, single=100_000.0, multi=100_000.0):
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "quick": quick,
        "scenarios": [
            {"name": "single", "events_per_sec": single},
            {"name": "multi", "events_per_sec": multi},
        ],
    }


class TestBaselineGate:
    def test_passes_at_or_above_floor(self):
        current = _payload(single=70_000.0, multi=200_000.0)
        assert compare_to_baseline(current, _payload(), min_ratio=0.7) == []

    def test_fails_below_floor(self):
        current = _payload(single=69_000.0)
        failures = compare_to_baseline(current, _payload(), min_ratio=0.7)
        assert len(failures) == 1
        assert "'single'" in failures[0]

    def test_mode_mismatch_is_an_error(self):
        failures = compare_to_baseline(_payload(quick=True), _payload())
        assert failures and "mode mismatch" in failures[0]

    def test_scenario_missing_from_baseline_is_skipped(self):
        baseline = _payload()
        baseline["scenarios"] = baseline["scenarios"][:1]  # drop "multi"
        current = _payload(single=100_000.0, multi=1.0)
        assert compare_to_baseline(current, baseline) == []


class TestBackendRows:
    def test_benchmark_backends_selection(self):
        from repro.mem.backend import compiled_available
        from repro.perf.bench import benchmark_backends

        assert benchmark_backends("python") == ["python"]
        assert benchmark_backends("compiled") == ["compiled"]
        auto = benchmark_backends("auto")
        assert auto[0] == "python"
        assert ("compiled" in auto) == compiled_available()

    def test_run_scenario_records_backend(self):
        scenario = standard_scenarios(quick=True)[0]
        tiny = type(scenario)(
            name=scenario.name,
            policy=scenario.policy,
            programs=(("zeusmp", 300, 0),),
            quad=False,
        )
        result = run_scenario(tiny, repeats=1, mem_backend="compiled")
        assert result.backend == "compiled"
        assert result.to_dict()["backend"] == "compiled"

    def test_gate_ignores_compiled_rows(self):
        # A slow compiled row must not fail the python-floor gate, and a
        # compiled-only baseline row must not gate python runs.
        current = _payload(single=100_000.0, multi=100_000.0)
        current["scenarios"].append(
            {"name": "single", "backend": "compiled", "events_per_sec": 1.0}
        )
        baseline = _payload()
        baseline["scenarios"].append(
            {"name": "multi", "backend": "compiled", "events_per_sec": 1e12}
        )
        assert compare_to_baseline(current, baseline, min_ratio=0.7) == []

    def test_markdown_summary_reports_compiled_speedup(self):
        payload = _payload(single=100_000.0, multi=100_000.0)
        payload["scenarios"].append(
            {
                "name": "single",
                "backend": "compiled",
                "events_per_sec": 250_000.0,
            }
        )
        text = markdown_summary(payload)
        assert "| single | compiled | 250,000 |" in text
        assert "Compiled-vs-python speedup: single 2.50x" in text


class TestCompatibilityWarnings:
    def test_warns_on_python_minor_mismatch(self):
        current = dict(_payload(), python="3.12.4")
        baseline = dict(_payload(), python="3.10.14")
        warnings = compatibility_warnings(current, baseline)
        assert len(warnings) == 1
        assert "3.10.14" in warnings[0] and "3.12.4" in warnings[0]

    def test_silent_on_same_minor_different_patch(self):
        current = dict(_payload(), python="3.12.4")
        baseline = dict(_payload(), python="3.12.1")
        assert compatibility_warnings(current, baseline) == []

    def test_silent_when_baseline_does_not_record_python(self):
        # The checked-in floor baseline predates the python field.
        current = dict(_payload(), python="3.12.4")
        assert compatibility_warnings(current, _payload()) == []

    def test_warns_on_machine_mismatch(self):
        current = dict(_payload(), machine="aarch64")
        baseline = dict(_payload(), machine="x86_64")
        warnings = compatibility_warnings(current, baseline)
        assert len(warnings) == 1
        assert "x86_64" in warnings[0]

    def test_warns_on_numpy_minor_mismatch(self):
        current = dict(_payload(), numpy="2.1.3")
        baseline = dict(_payload(), numpy="1.26.4")
        warnings = compatibility_warnings(current, baseline)
        assert len(warnings) == 1
        assert "numpy" in warnings[0] and "1.26.4" in warnings[0]

    def test_silent_on_same_numpy_minor(self):
        current = dict(_payload(), numpy="2.1.3")
        baseline = dict(_payload(), numpy="2.1.0")
        assert compatibility_warnings(current, baseline) == []

    def test_silent_when_baseline_does_not_record_numpy(self):
        current = dict(_payload(), numpy="2.1.3")
        assert compatibility_warnings(current, _payload()) == []


class TestMarkdownSummary:
    def test_table_has_one_row_per_scenario_with_delta(self):
        current = _payload(single=150_000.0, multi=50_000.0)
        current["quick"] = True
        current["repeats"] = 3
        text = markdown_summary(current, _payload(quick=False) | {"quick": True})
        assert "| single | python | 150,000 |" in text
        assert "1.50x" in text  # 150k vs 100k baseline
        assert "0.50x" in text  # 50k vs 100k baseline
        assert text.count("|---") == 0  # header uses spaced pipes
        assert "quick, best of 3" in text

    def test_without_baseline_deltas_are_dashes(self):
        text = markdown_summary(_payload())
        assert "—" in text

    def test_includes_decode_section_and_warnings(self):
        current = dict(_payload(), python="3.12.0")
        current["decode"] = {
            "requests": 50_000,
            "legacy_seconds": 0.02,
            "batched_seconds": 0.01,
            "speedup": 2.0,
            "identical": True,
        }
        baseline = dict(_payload(), python="3.10.0")
        text = markdown_summary(current, baseline)
        assert "Trace decode (50,000 requests)" in text
        assert "**2.0x**" in text
        assert ":warning:" in text


def _sweep_payload(**overrides):
    payload = {
        "schema_version": 1,
        "kind": "sweep",
        "spec_count": 200,
        "jobs": 4,
        "transport": "shm",
        "requests_per_sec": 10_000.0,
        "peak_rss_mb": 40.0,
    }
    payload.update(overrides)
    return payload


class TestSweepGate:
    def test_passes_within_both_bounds(self):
        from repro.perf.sweep_bench import compare_sweep_to_baseline

        current = _sweep_payload(
            requests_per_sec=7_000.0, peak_rss_mb=56.0
        )
        assert compare_sweep_to_baseline(current, _sweep_payload()) == []

    def test_fails_below_throughput_floor(self):
        from repro.perf.sweep_bench import compare_sweep_to_baseline

        current = _sweep_payload(requests_per_sec=6_900.0)
        failures = compare_sweep_to_baseline(
            current, _sweep_payload(), min_ratio=0.7
        )
        assert len(failures) == 1
        assert "throughput" in failures[0]

    def test_fails_above_rss_ceiling(self):
        from repro.perf.sweep_bench import compare_sweep_to_baseline

        current = _sweep_payload(peak_rss_mb=57.0)
        failures = compare_sweep_to_baseline(
            current, _sweep_payload(), max_rss_ratio=1.4
        )
        assert len(failures) == 1
        assert "peak RSS" in failures[0]

    def test_spec_count_mismatch_fails_fast(self):
        from repro.perf.sweep_bench import compare_sweep_to_baseline

        current = _sweep_payload(
            spec_count=100, requests_per_sec=1.0, peak_rss_mb=1e9
        )
        failures = compare_sweep_to_baseline(current, _sweep_payload())
        assert len(failures) == 1
        assert "mismatch" in failures[0]

    def test_missing_rss_skips_only_the_rss_check(self):
        # A platform without the resource module reports peak_rss_mb 0;
        # the throughput floor must still gate.
        from repro.perf.sweep_bench import compare_sweep_to_baseline

        current = _sweep_payload(requests_per_sec=1.0, peak_rss_mb=0.0)
        failures = compare_sweep_to_baseline(current, _sweep_payload())
        assert len(failures) == 1
        assert "throughput" in failures[0]

    def test_checked_in_baseline_is_comparable(self):
        # The real CI baseline must parse and be self-consistent with
        # the gate's expectations (spec_count present, positive bounds).
        import pathlib

        from repro.perf.sweep_bench import compare_sweep_to_baseline

        baseline = json.loads(
            (
                pathlib.Path(__file__).parent.parent
                / "benchmarks/baselines/sweep_rss_baseline.json"
            ).read_text()
        )
        assert baseline["spec_count"] == 200
        assert baseline["requests_per_sec"] > 0
        assert baseline["peak_rss_mb"] > 0
        # A run exactly at the baseline passes its own gate.
        assert compare_sweep_to_baseline(baseline, baseline) == []

    def test_markdown_summary_rows(self):
        from repro.perf.sweep_bench import sweep_markdown_summary

        current = _sweep_payload(
            requests_per_sec=15_000.0, peak_rss_mb=30.0, wall_seconds=4.0
        )
        text = sweep_markdown_summary(current, _sweep_payload())
        assert "| requests/sec | 15,000 | 10,000 | 1.50x |" in text
        assert "| parent peak RSS (MiB) | 30.0 | 40.0 | 0.75x |" in text

    def test_markdown_summary_without_baseline(self):
        from repro.perf.sweep_bench import sweep_markdown_summary

        text = sweep_markdown_summary(_sweep_payload(failed=2))
        assert "—" in text
        assert "2 spec(s) failed" in text

    def test_peak_rss_is_positive_here(self):
        from repro.perf.sweep_bench import peak_rss_mb

        assert peak_rss_mb() > 0


class TestSweepBenchmark:
    def test_tiny_sweep_end_to_end(self):
        from repro.perf.sweep_bench import (
            build_sweep_specs,
            run_sweep_benchmark,
        )

        specs = build_sweep_specs(8)
        assert len({spec.cache_key() for spec in specs}) == 8
        payload = run_sweep_benchmark(count=4, jobs=1, transport="pickle")
        assert payload["completed"] == 4
        assert payload["failed"] == 0
        assert payload["total_requests"] > 0
        assert payload["requests_per_sec"] > 0


class TestDecodeBenchmark:
    def test_quick_payload_shape_and_equivalence(self):
        payload = run_decode_benchmark(quick=True, repeats=1)
        assert payload["identical"] is True
        assert payload["requests"] == 50_000
        assert payload["legacy_seconds"] > 0
        assert payload["batched_seconds"] > 0
        assert payload["speedup"] > 0
