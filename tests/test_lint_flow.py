"""Unit tests for the flow layer: CFG builder, taint traces, selection.

The fixture meta-suite (``test_lint.py``) proves the D11x rules fire and
stay silent; this file pins down the machinery underneath — the shape of
the control-flow graph, the source→sink traces attached to findings, and
how the dataflow rules interact with ``--select`` / ``--ignore``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Optional

from repro.lint import Finding, lint_sources
from repro.lint.cfg import build_cfg

FIXTURES = Path(__file__).parent / "lint_fixtures"


def _cfg_of(source: str):
    tree = ast.parse(source)
    func = tree.body[0]
    assert isinstance(func, ast.FunctionDef)
    return build_cfg(func)


def _reachable(cfg) -> set[int]:
    seen = {cfg.entry}
    stack = [cfg.entry]
    while stack:
        for succ in cfg.blocks[stack.pop()].succs:
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return seen


class TestCfgBuilder:
    def test_straight_line_is_one_block(self):
        cfg = _cfg_of("def f():\n    a = 1\n    b = a\n    return b\n")
        entry = cfg.blocks[cfg.entry]
        assert len(entry.elements) == 3
        assert entry.succs == [cfg.exit]

    def test_if_else_diamond(self):
        cfg = _cfg_of(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    return a\n"
        )
        entry = cfg.blocks[cfg.entry]
        # The branch test is lifted into the entry block as an element.
        assert any(isinstance(e, ast.expr) for e in entry.elements)
        assert len(entry.succs) == 2
        then_block, else_block = (cfg.blocks[i] for i in entry.succs)
        # Both arms rejoin at a single after-block.
        assert then_block.succs == else_block.succs

    def test_if_without_else_has_fallthrough_edge(self):
        cfg = _cfg_of("def f(x):\n    if x:\n        a = 1\n    return x\n")
        entry = cfg.blocks[cfg.entry]
        assert len(entry.succs) == 2  # then-arm and direct fall-through

    def test_while_loop_has_back_edge(self):
        cfg = _cfg_of("def f(x):\n    while x:\n        x -= 1\n    return x\n")
        headers = [
            b
            for b in cfg.blocks
            if any(isinstance(e, ast.expr) for e in b.elements)
        ]
        assert len(headers) == 1
        header = headers[0]
        body = next(
            cfg.blocks[i]
            for i in header.succs
            if any(isinstance(e, ast.AugAssign) for e in cfg.blocks[i].elements)
        )
        assert header.index in body.succs  # the back edge

    def test_for_header_holds_the_for_node(self):
        cfg = _cfg_of("def f(xs):\n    for x in xs:\n        y = x\n")
        assert any(
            isinstance(e, ast.For) for b in cfg.blocks for e in b.elements
        )

    def test_return_edges_to_exit_and_kills_flow(self):
        cfg = _cfg_of("def f():\n    return 1\n    unreachable = 2\n")
        entry = cfg.blocks[cfg.entry]
        assert entry.succs == [cfg.exit]
        stored = [
            e for b in cfg.blocks for e in b.elements if isinstance(e, ast.Assign)
        ]
        assert stored == []  # dead code after return is dropped

    def test_try_body_edges_into_every_handler(self):
        cfg = _cfg_of(
            "def f():\n"
            "    try:\n"
            "        a = 1\n"
            "    except ValueError:\n"
            "        b = 2\n"
            "    except KeyError:\n"
            "        c = 3\n"
        )

        def block_with(name: str) -> int:
            for block in cfg.blocks:
                for element in block.elements:
                    if isinstance(element, ast.Assign) and any(
                        isinstance(t, ast.Name) and t.id == name
                        for t in element.targets
                    ):
                        return block.index
            raise AssertionError(name)

        body = cfg.blocks[block_with("a")]
        assert block_with("b") in body.succs
        assert block_with("c") in body.succs

    def test_break_exits_loop_continue_reenters(self):
        cfg = _cfg_of(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        if x:\n"
            "            break\n"
            "        continue\n"
            "    return 0\n"
        )
        # Everything except dead blocks is reachable and the exit is too.
        assert cfg.exit in _reachable(cfg)

    def test_with_body_stays_in_block_stream(self):
        cfg = _cfg_of(
            "def f(ctx):\n    with ctx as c:\n        a = c\n    return a\n"
        )
        entry = cfg.blocks[cfg.entry]
        kinds = [type(e).__name__ for e in entry.elements]
        assert kinds == ["With", "Assign", "Return"]


def _lint(
    name: str,
    module: str = "repro.sim.fixture",
    select: Optional[str] = None,
    ignore: Optional[str] = None,
) -> list[Finding]:
    path = FIXTURES / f"{name}.py"
    return lint_sources(
        {module: (str(path), path.read_text(encoding="utf-8"))},
        select=select,
        ignore=ignore,
        hot_classes=frozenset(),
        hot_functions=frozenset(),
        batch_functions=frozenset(),
    )


class TestTraces:
    """Every flow finding carries a full source→sink trace."""

    def test_d110_trace_has_source_and_sink(self):
        finding = next(
            f
            for f in _lint("d110_bad", select="D110")
            if "self.stamp" in f.message
        )
        notes = [step.note for step in finding.trace]
        assert any(note.startswith("source:") for note in notes)
        assert any(note.startswith("sink:") for note in notes)
        # The intermediate assignment appears between source and sink.
        assert any("assigned to 'now'" in note for note in notes)

    def test_d111_trace_names_the_alias_binding(self):
        (finding,) = _lint("d111_bad", select="D111")
        assert "alias" in finding.message
        assert "time.time" in finding.message

    def test_d112_trace_crosses_the_helper_call(self):
        findings = _lint("d112_bad", select="D112")
        assert findings
        for finding in findings:
            notes = [step.note for step in finding.trace]
            assert any("call to" in note for note in notes)
            assert any(note.startswith("sink:") for note in notes)

    def test_trace_lines_are_positive_and_pathed(self):
        for finding in _lint("d110_bad", select="D110"):
            for step in finding.trace:
                assert step.line >= 1
                assert step.path.endswith(".py")

    def test_render_trace_includes_steps(self):
        finding = _lint("d110_bad", select="D110")[0]
        rendered = finding.render_trace()
        assert "source:" in rendered and "sink:" in rendered


class TestFlowSelection:
    """--select / --ignore compose with the dataflow rules."""

    def test_select_d11_family_drops_d103(self):
        # d110_bad also contains a direct time.time() call (D103), but a
        # D11-prefix selection keeps only the dataflow findings.
        findings = _lint("d110_bad", select="D11")
        assert findings
        assert {f.rule for f in findings} == {"D110"}

    def test_ignore_d11_keeps_direct_call_rule(self):
        findings = _lint("d110_bad", select="D", ignore="D11")
        assert findings  # D103 still reports the direct clock call
        assert "D110" not in {f.rule for f in findings}

    def test_flow_rules_silent_outside_sim_scope(self):
        # Identical code under an analysis module: D11x does not apply.
        assert _lint("d110_bad", module="repro.analysis.fixture", select="D110") == []
