"""Trace-driven core timing-model tests."""


from repro.common.config import CoreConfig
from repro.common.events import EventQueue
from repro.cpu.core_model import TraceCore
from repro.cpu.trace import Trace


class InstantMemory:
    """Completes every request after a fixed latency."""

    def __init__(self, events, latency=100):
        self.events = events
        self.latency = latency
        self.requests = []

    def access(self, core_id, line, is_write, on_complete):
        self.requests.append((core_id, line, is_write))
        self.events.schedule(self.events.now + self.latency, on_complete)


def run_core(trace, core_cfg=None, latency=100, on_pass=None):
    events = EventQueue()
    memory = InstantMemory(events, latency)
    core = TraceCore(
        core_id=0,
        config=core_cfg or CoreConfig(),
        trace=trace,
        events=events,
        access=memory.access,
        on_pass_complete=on_pass,
    )
    core.start()
    events.run()
    return core, memory


class TestExecution:
    def test_all_requests_issued(self):
        trace = Trace.from_records([(10, i, False) for i in range(5)])
        core, memory = run_core(trace)
        assert len(memory.requests) == 5

    def test_instructions_counted(self):
        trace = Trace.from_records([(10, 0, False), (20, 1, True)])
        core, _memory = run_core(trace)
        assert core.instructions_retired == 10 + 1 + 20 + 1

    def test_compute_time_respected(self):
        # One request after a 100-instruction gap at IPC 2 -> issue at 50.
        trace = Trace.from_records([(100, 0, False)])
        core, _memory = run_core(trace, CoreConfig(issue_ipc=2.0))
        # The single request dispatches only after 100/2 compute cycles.
        assert core.finished_at >= 50

    def test_finish_time_recorded(self):
        trace = Trace.from_records([(0, 0, False)])
        core, _ = run_core(trace)
        assert core.finished_at is not None
        assert core.passes_completed == 1

    def test_ipc_positive(self):
        trace = Trace.from_records([(50, i, False) for i in range(10)])
        core, _ = run_core(trace)
        assert core.ipc > 0


class TestMLP:
    def test_reads_overlap_up_to_mlp(self):
        # 4 zero-gap reads with MLP 4 overlap: finish ~ single latency.
        trace = Trace.from_records([(0, i, False) for i in range(4)])
        core, _ = run_core(trace, CoreConfig(mlp=4), latency=1000)
        assert core.finished_at < 1500

    def test_mlp_one_serializes(self):
        trace = Trace.from_records([(0, i, False) for i in range(4)])
        core, _ = run_core(trace, CoreConfig(mlp=1), latency=1000)
        # Each read must complete before the next issues; the 4th issues
        # at 3000 (finish marks issue completion, not drain).
        assert core.finished_at >= 3000

    def test_stall_resumes_after_completion(self):
        trace = Trace.from_records([(0, i, False) for i in range(8)])
        core, memory = run_core(trace, CoreConfig(mlp=2), latency=500)
        assert len(memory.requests) == 8
        assert core.finished_at >= (8 // 2 - 1) * 500


class TestWrites:
    def test_writes_do_not_block_below_buffer(self):
        trace = Trace.from_records([(0, i, True) for i in range(4)])
        core, _ = run_core(trace, CoreConfig(write_buffer=8), latency=1000)
        assert core.finished_at < 1200

    def test_full_write_buffer_blocks(self):
        trace = Trace.from_records([(0, i, True) for i in range(4)])
        core, _ = run_core(trace, CoreConfig(write_buffer=1), latency=1000)
        assert core.finished_at >= 3000


class TestRepetition:
    def test_replay_on_true(self):
        trace = Trace.from_records([(0, 0, False)])
        passes = []

        def on_pass(core_id, now):
            passes.append(now)
            return len(passes) < 3

        core, memory = run_core(trace, on_pass=on_pass)
        assert core.passes_completed == 3
        assert len(memory.requests) == 3

    def test_stop_prevents_new_issues(self):
        trace = Trace.from_records([(0, i, False) for i in range(100)])
        events = EventQueue()
        memory = InstantMemory(events, 10)
        core = TraceCore(0, CoreConfig(), trace, events, memory.access)
        core.start()
        events.run(stop_after_cycle=15)
        core.stop()
        events.run()
        assert len(memory.requests) < 100
