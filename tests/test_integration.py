"""End-to-end invariants across full (small) simulations."""

import pytest

from repro.common.config import paper_quad_core, paper_single_core
from repro.sim.engine import SimulationDriver
from repro.traces.generator import synthesize_trace

SCALE = 128
QUAD = paper_quad_core(scale=SCALE)
SINGLE = paper_single_core(scale=SCALE)


def run(policy, programs, config=QUAD, requests=2500):
    traces = [
        (name, synthesize_trace(name, requests, scale=SCALE, seed=index))
        for index, name in enumerate(programs)
    ]
    driver = SimulationDriver(config, policy, traces, seed=3)
    return driver, driver.run()


class TestTranslationIntegrity:
    @pytest.mark.parametrize("policy", ["cameo", "pom", "mdm", "profess"])
    def test_st_entries_stay_permutations(self, policy):
        driver, _result = run(policy, ["soplex", "milc"])
        st = driver.controller.st
        for group in st.touched_groups():
            entry = st.entry(group)
            assert sorted(entry.loc_of_slot) == list(range(9))
            assert sorted(entry.slot_of_loc) == list(range(9))

    def test_cameo_migrates_heavily(self):
        driver, result = run("cameo", ["soplex"])
        assert result.total_swaps > 100
        assert driver.controller.st.migrated_groups()

    def test_static_never_migrates(self):
        driver, result = run("static", ["soplex", "milc"])
        assert result.total_swaps == 0
        assert not driver.controller.st.migrated_groups()

    def test_m1_owner_consistent_with_translation(self):
        driver, _ = run("mdm", ["soplex", "milc"])
        controller = driver.controller
        for group in controller.st.touched_groups():
            entry = controller.st.entry(group)
            expected = controller.owner_of_slot(group, entry.m1_slot)
            assert entry.m1_owner == expected or entry.m1_owner is None


class TestAccountingInvariants:
    def test_rsm_request_totals_match_served(self):
        driver, result = run("profess", ["soplex", "milc"])
        rsm = driver.controller.rsm
        # Raw counters were reset at each sample; reconstruct totals from
        # served counts: every served request was counted exactly once.
        for core in range(2):
            counted = (
                rsm.counters[core].num_req_total_p
                + rsm.counters[core].num_req_total_s
            )
            sampled = sum(
                1 for s in rsm.history if s.program == core
            ) * driver.config.rsm.m_samp
            assert counted + sampled == result.programs[core].requests

    def test_m1_fraction_bounded(self):
        _driver, result = run("mdm", ["soplex", "milc"])
        for program in result.programs:
            assert 0.0 <= program.m1_fraction <= 1.0

    def test_energy_components_positive(self):
        driver, result = run("pom", ["soplex"])
        meter = driver.controller.energy
        assert meter.dynamic_energy_nj() > 0
        assert meter.background_energy_nj(result.cycles) > 0
        assert result.energy_efficiency > 0

    def test_swaps_add_energy(self):
        _d1, static = run("static", ["soplex"])
        _d2, cameo = run("cameo", ["soplex"])
        # Same served requests; CAMEO's swaps move far more data.
        assert cameo.energy_joules > static.energy_joules

    def test_request_conservation(self):
        driver, result = run("mdm", ["soplex", "milc"])
        channel_data = sum(
            c.stats.reads + c.stats.writes - c.stats.st_reads - c.stats.st_writes
            for c in driver.controller.channels
        )
        assert channel_data == result.total_requests


class TestManagementHelps:
    def test_migration_beats_static_under_pressure(self):
        # leslie3d: hot-set + stream blend with footprint above M1.
        _d1, static = run("static", ["leslie3d"], config=SINGLE, requests=8000)
        _d2, mdm = run("mdm", ["leslie3d"], config=SINGLE, requests=8000)
        assert mdm.program(0).ipc > static.program(0).ipc

    def test_m1_fraction_rises_under_migration(self):
        _d1, static = run("static", ["leslie3d"], config=SINGLE, requests=8000)
        _d2, mdm = run("mdm", ["leslie3d"], config=SINGLE, requests=8000)
        assert mdm.program(0).m1_fraction > static.program(0).m1_fraction

    def test_profess_tracks_mdm_when_alone(self):
        # With one program there is no cross-program guidance to apply, so
        # ProFess must behave very close to plain MDM.
        _d1, mdm = run("mdm", ["soplex"], config=SINGLE, requests=4000)
        _d2, prf = run("profess", ["soplex"], config=SINGLE, requests=4000)
        assert prf.program(0).ipc == pytest.approx(mdm.program(0).ipc, rel=0.02)
        assert prf.total_swaps == pytest.approx(mdm.total_swaps, rel=0.05)
