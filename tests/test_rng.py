"""Deterministic RNG substream tests."""

from repro.common.rng import make_rng, substream_seed


class TestSubstreams:
    def test_same_name_same_seed(self):
        assert substream_seed(1, "a", "b") == substream_seed(1, "a", "b")

    def test_different_names_differ(self):
        assert substream_seed(1, "a") != substream_seed(1, "b")

    def test_different_roots_differ(self):
        assert substream_seed(1, "a") != substream_seed(2, "a")

    def test_positive_63_bit(self):
        seed = substream_seed(123, "trace", "mcf", 64)
        assert 0 <= seed < (1 << 63)

    def test_generator_determinism(self):
        a = make_rng(7, "x").integers(0, 1_000_000, size=16)
        b = make_rng(7, "x").integers(0, 1_000_000, size=16)
        assert (a == b).all()

    def test_generator_independence(self):
        a = make_rng(7, "x").integers(0, 1_000_000, size=16)
        b = make_rng(7, "y").integers(0, 1_000_000, size=16)
        assert (a != b).any()

    def test_numeric_names_stable(self):
        # Adding consumers must not perturb existing streams: the seed
        # depends only on the exact name path.
        assert substream_seed(5, "trace", 0) == substream_seed(5, "trace", "0")
