"""Streaming aggregation suite: reducers, grouping, and equivalence.

The contract under test (DESIGN.md §17): **streamed reduction equals
materialize-then-reduce**.  For any completion order, any retry
schedule, and any subset of failed specs, folding results one at a time
through a reducer must leave exactly the state that materializing the
whole wave and reducing it afterwards would have produced.

* unit tests pin :class:`GroupReducer`'s refcounting — results are held
  only while an unfinished group needs them, failures poison exactly the
  groups that need the failed key (including groups declared later);
* a hypothesis property drives random group structures through random
  completion/failure interleavings against a brute-force reference;
* an end-to-end test runs a real figure sweep both ways — the streamed
  accumulator versus the materializing fallback — and asserts identical
  metrics, then that the runner's metrics memo makes re-sweeps free.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec.resilience import RunFailure
from repro.exec.streaming import GroupReducer, ListReducer
from repro.experiments.multi import _materialized_sweep, sweep
from repro.experiments.runner import ExperimentRunner

KEYS = [f"{c}" * 64 for c in "abcdefgh"]


def failure_for(key: str) -> RunFailure:
    return RunFailure(
        key=key,
        label=f"fake:{key[:4]}",
        error_type="ChaosError",
        message="injected",
        traceback_digest="0123456789ab",
        attempts=1,
        retryable=False,
    )


class Recording(GroupReducer):
    """Captures hook firings so tests can assert exactly-once delivery."""

    def __init__(self):
        super().__init__()
        self.completions: dict[str, dict[str, object]] = {}
        self.failures: dict[str, RunFailure] = {}

    def group_completed(self, group_id, results):
        assert group_id not in self.completions, "hook fired twice"
        self.completions[group_id] = dict(results)

    def group_failed(self, group_id, failure):
        assert group_id not in self.failures, "hook fired twice"
        self.failures[group_id] = failure


class TestGroupReducer:
    def test_group_resolves_when_last_key_lands(self):
        reducer = Recording()
        reducer.add_group("g", [KEYS[0], KEYS[1]])
        reducer.fold(KEYS[0], None, "r0")
        assert reducer.completions == {}
        reducer.fold(KEYS[1], None, "r1")
        assert reducer.completions == {"g": {KEYS[0]: "r0", KEYS[1]: "r1"}}
        assert reducer.held_count == 0

    def test_shared_key_released_with_last_group(self):
        # A stand-alone reference run is needed by many cells; it must
        # stay held until the last interested group resolves, then drop.
        reducer = Recording()
        reducer.add_group("g1", [KEYS[0], KEYS[1]])
        reducer.add_group("g2", [KEYS[0], KEYS[2]])
        reducer.fold(KEYS[0], None, "shared")
        assert reducer.held_count == 1
        reducer.fold(KEYS[1], None, "r1")
        assert "g1" in reducer.completions
        assert reducer.held_count == 1  # g2 still needs KEYS[0]
        reducer.fold(KEYS[2], None, "r2")
        assert reducer.completions["g2"][KEYS[0]] == "shared"
        assert reducer.held_count == 0

    def test_uninteresting_keys_never_held(self):
        reducer = Recording()
        reducer.add_group("g", [KEYS[0]])
        reducer.fold(KEYS[1], None, "nobody asked")
        assert reducer.held_count == 0

    def test_group_after_keys_resolves_synchronously(self):
        reducer = Recording()
        reducer.add_group("early", [KEYS[0]])
        # Hold KEYS[0] alive for a later group via a second declaration.
        reducer.add_group("keeper", [KEYS[0], KEYS[1]])
        reducer.fold(KEYS[0], None, "r0")
        assert "early" in reducer.completions
        reducer.add_group("late", [KEYS[0], KEYS[1]])
        reducer.fold(KEYS[1], None, "r1")
        assert "late" in reducer.completions
        assert reducer.held_count == 0

    def test_failure_poisons_current_and_future_groups(self):
        reducer = Recording()
        reducer.add_group("now", [KEYS[0], KEYS[1]])
        reducer.fold_failure(failure_for(KEYS[0]))
        assert "now" in reducer.failures
        # The failed key is remembered: a group declared afterwards that
        # needs it fails at declaration time.
        reducer.add_group("later", [KEYS[0], KEYS[2]])
        assert "later" in reducer.failures
        assert reducer.held_count == 0

    def test_failure_releases_held_results(self):
        reducer = Recording()
        reducer.add_group("g", [KEYS[0], KEYS[1]])
        reducer.fold(KEYS[0], None, "r0")
        assert reducer.held_count == 1
        reducer.fold_failure(failure_for(KEYS[1]))
        assert "g" in reducer.failures
        assert reducer.held_count == 0

    def test_duplicate_group_id_rejected(self):
        reducer = Recording()
        reducer.add_group("g", [KEYS[0]])
        with pytest.raises(ValueError):
            reducer.add_group("g", [KEYS[1]])

    def test_list_reducer_is_order_independent(self):
        forward, backward = ListReducer(), ListReducer()
        for key in KEYS:
            forward.fold(key, None, key[:4])
        for key in reversed(KEYS):
            backward.fold(key, None, key[:4])
        assert forward.by_key == backward.by_key


# ----------------------------------------------------------------------
# Property: any interleaving == materialize-then-reduce
# ----------------------------------------------------------------------
@st.composite
def wave_scenarios(draw):
    """Random group structure + completion/failure interleaving."""
    keys = draw(
        st.lists(st.sampled_from(KEYS), min_size=1, max_size=8, unique=True)
    )
    n_groups = draw(st.integers(min_value=1, max_value=6))
    groups = {
        f"g{i}": draw(
            st.lists(
                st.sampled_from(keys), min_size=1, max_size=len(keys),
                unique=True,
            )
        )
        for i in range(n_groups)
    }
    failed = draw(st.sets(st.sampled_from(keys)))
    order = draw(st.permutations(keys))
    return groups, failed, order


@given(wave_scenarios())
@settings(max_examples=200, deadline=None)
def test_streamed_equals_materialized(scenario):
    groups, failed, order = scenario
    reducer = Recording()
    for group_id, members in groups.items():
        reducer.add_group(group_id, list(members))
    # Stream the wave in the drawn completion order: each key lands
    # exactly once, as a result or as a terminal failure (which is what
    # the executor's exactly-once sink guarantees even under retries).
    for key in order:
        if key in failed:
            reducer.fold_failure(failure_for(key))
        else:
            reducer.fold(key, None, f"result:{key[:4]}")

    # The materialized reference: group outcomes from global knowledge.
    for group_id, members in groups.items():
        if any(key in failed for key in members):
            assert group_id in reducer.failures
            assert group_id not in reducer.completions
        else:
            assert reducer.completions[group_id] == {
                key: f"result:{key[:4]}" for key in members
            }
            assert group_id not in reducer.failures
    # Every key was delivered, so nothing can still be held.
    assert reducer.held_count == 0
    assert set(reducer.completed_groups) == set(reducer.completions)
    assert set(reducer.failed_groups) == set(reducer.failures)


# ----------------------------------------------------------------------
# End-to-end: a real figure sweep, streamed vs materialized
# ----------------------------------------------------------------------
WORKLOADS = ["w01", "w02"]
POLICIES = ["pom", "mdm"]


def small_runner(**overrides) -> ExperimentRunner:
    params = dict(
        scale=128, multi_requests=500, single_requests=500, seed=0
    )
    params.update(overrides)
    return ExperimentRunner(**params)


class TestSweepEquivalence:
    def test_streamed_sweep_matches_materialized(self):
        streamed_runner = small_runner(transport="shm", jobs=2)
        streamed = sweep(streamed_runner, POLICIES, WORKLOADS)
        materialized_runner = small_runner()
        materialized = _materialized_sweep(
            materialized_runner, POLICIES, WORKLOADS
        )
        assert streamed == materialized

    def test_metrics_memo_makes_resweep_free(self):
        runner = small_runner(jobs=2)
        sweep(runner, POLICIES, WORKLOADS)
        executed = runner.executor.executed
        assert executed > 0
        again = sweep(runner, POLICIES, WORKLOADS)
        assert runner.executor.executed == executed  # zero new sims
        assert runner.metrics_memory_hits >= len(WORKLOADS) * len(POLICIES)
        assert again == sweep(runner, POLICIES, WORKLOADS)
