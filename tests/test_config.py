"""Configuration and preset tests (Table 8, Section 4.1 derivations)."""

import dataclasses

import pytest

from repro.common.config import (
    CacheLevelConfig,
    HybridMemoryConfig,
    MDMConfig,
    MemTimings,
    ProFessConfig,
    STCConfig,
    SystemConfig,
    paper_quad_core,
    paper_single_core,
    with_overrides,
)
from repro.common.errors import ConfigError
from repro.common.units import KB, MB


class TestMemTimings:
    def test_dram_defaults_match_table8(self):
        t = MemTimings.dram()
        assert t.t_rcd_ns == 13.75
        assert t.t_wr_ns == 15.0
        assert t.cl_ns == 13.75
        assert t.t_rp_ns == 13.75

    def test_nvm_derivation(self):
        nvm = MemTimings.nvm_from_dram()
        assert nvm.t_rcd_ns == pytest.approx(137.5)
        assert nvm.t_wr_ns == pytest.approx(275.0)
        assert nvm.cl_ns == 13.75

    def test_cycles(self):
        t = MemTimings.dram()
        assert t.t_rcd == 44
        assert t.line_burst == 16  # 5 ns

    def test_read_latencies(self):
        t = MemTimings.dram()
        assert t.read_hit_latency() == t.cl + t.line_burst
        assert t.read_miss_latency() == t.t_rp + t.t_rcd + t.cl + t.line_burst


class TestHybridGeometry:
    def test_group_size_is_nine(self):
        assert HybridMemoryConfig().group_size == 9

    def test_groups_per_channel(self):
        cfg = HybridMemoryConfig(m1_capacity_per_channel=2 * MB)
        assert cfg.groups_per_channel == 1024

    def test_blocks_per_row(self):
        assert HybridMemoryConfig().blocks_per_row == 4

    def test_lines_per_block(self):
        assert HybridMemoryConfig().lines_per_block == 32

    def test_translation_bits(self):
        # ceil(log2 9) = 4, as in Section 2.3.
        assert HybridMemoryConfig().translation_bits_per_location == 4

    def test_rejects_non_power_of_two_regions(self):
        with pytest.raises(ConfigError):
            HybridMemoryConfig(num_regions=100)

    def test_rejects_too_small_m1(self):
        with pytest.raises(ConfigError):
            HybridMemoryConfig(m1_capacity_per_channel=256 * KB)


class TestSystemDerived:
    def test_total_capacity_is_nine_m1(self):
        cfg = paper_quad_core(scale=64)
        assert cfg.total_capacity == 9 * cfg.total_m1_capacity

    def test_paper_swap_latency_about_796ns(self):
        cfg = paper_quad_core(scale=64)
        latency_ns = cfg.swap_latency_cycles() / 3.2
        # Section 4.1: analytic 796.25 ns, observed ~820 ns (within 3%).
        assert latency_ns == pytest.approx(796.25, rel=0.05)

    def test_derived_k_is_seven(self):
        # Section 4.1: K = ceil(796.25 / 123.75) = 7 (the paper rounds to 8).
        assert paper_quad_core(scale=64).derived_k() == 7

    def test_pom_k_default_is_eight(self):
        assert paper_quad_core().pom.k == 8

    def test_min_benefit_matches_k(self):
        cfg = paper_quad_core()
        assert cfg.mdm.min_benefit == cfg.pom.k

    def test_write_weight_is_eight(self):
        assert paper_quad_core().write_access_weight == 8


class TestPresets:
    def test_quad_shape(self):
        cfg = paper_quad_core(scale=64)
        assert cfg.num_cores == 4
        assert cfg.num_channels == 2
        assert cfg.hybrid.m1_capacity_per_channel == 2 * MB

    def test_single_shape(self):
        cfg = paper_single_core(scale=64)
        assert cfg.num_cores == 1
        assert cfg.num_channels == 1
        assert cfg.hybrid.m1_capacity_per_channel == 1 * MB

    def test_unscaled_matches_paper(self):
        cfg = paper_quad_core()
        assert cfg.total_m1_capacity == 256 * MB
        assert cfg.stc.capacity == 64 * KB
        assert cfg.stc.num_entries == 8 * 1024
        assert cfg.rsm.m_samp == 128 * 1024

    def test_scale_must_be_power_of_two(self):
        with pytest.raises(ConfigError):
            paper_quad_core(scale=48)

    def test_stc_scales_with_m1(self):
        big = paper_quad_core(scale=1)
        small = paper_quad_core(scale=64)
        ratio_groups = big.total_groups / small.total_groups
        ratio_stc = big.stc.num_entries / small.stc.num_entries
        assert ratio_groups == ratio_stc

    def test_ratio_override(self):
        cfg = paper_quad_core(scale=64, m2_to_m1_ratio=4)
        assert cfg.hybrid.group_size == 5
        assert cfg.total_capacity == 5 * cfg.total_m1_capacity

    def test_m_samp_override(self):
        cfg = paper_quad_core(scale=64, m_samp=9999)
        assert cfg.rsm.m_samp == 9999

    def test_with_overrides(self):
        cfg = with_overrides(paper_quad_core(scale=64), frfcfs_cap=2)
        assert cfg.frfcfs_cap == 2

    def test_configs_are_frozen(self):
        cfg = paper_quad_core(scale=64)
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.num_cores = 2


class TestSubConfigs:
    def test_mdm_qac_value_count(self):
        assert MDMConfig().num_qac_values == 4

    def test_mdm_counter_max(self):
        assert MDMConfig().access_counter_max == 63

    def test_profess_factors(self):
        p = ProFessConfig()
        assert p.sf_factor == pytest.approx(1.03125)
        assert p.product_factor == pytest.approx(1.0625)

    def test_stc_entry_count(self):
        assert STCConfig(capacity=64 * KB).num_entries == 8192

    def test_cache_level_sets(self):
        cfg = CacheLevelConfig(32 * KB, 4, 2)
        assert cfg.num_sets == 128

    def test_cache_level_rejects_bad_capacity(self):
        with pytest.raises(ConfigError):
            CacheLevelConfig(1000, 3, 2)

    def test_system_rejects_zero_cores(self):
        with pytest.raises(ConfigError):
            SystemConfig(num_cores=0)
