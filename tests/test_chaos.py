"""Chaos acceptance suite: injected faults never corrupt a sweep.

Two end-to-end scenarios against a parallel (``jobs=4``) sweep of eight
single-core specs, both asserting byte-identity (via
:func:`repro.sim.golden.result_digest`) against a clean serial run:

* **fatal + resume** — seeded mid-simulation raises plus truncated cache
  writes: the wave reports exactly the injected failures, a resumed run
  quarantines each corrupt entry exactly once, re-attempts only the
  failures, and converges to the clean results.
* **transient recovery** — seeded worker kills and stalls: retries and
  worker replacement absorb every fault and the wave completes with
  results identical to serial.

The fault schedules are discovered by seed search over the plan space,
so the suite keeps its coverage even when spec keys change.
"""

import pytest

from repro.common.config import paper_single_core
from repro.exec import (
    Executor,
    ResultCache,
    RetryPolicy,
    RunJournal,
    RunSpec,
    TruncatingResultCache,
)
from repro.exec.chaos import ACTION_RAISE, ChaosPlan
from repro.sim.golden import result_digest

SCALE = 128
CONFIG = paper_single_core(scale=SCALE)
PROGRAMS = ("zeusmp", "lbm", "mcf", "libquantum")
POLICIES = ("pom", "mdm")


def all_specs() -> list[RunSpec]:
    return [
        RunSpec(
            kind="single",
            programs=(program,),
            policy=policy,
            config=CONFIG,
            requests=500,
            seed=0,
            trace_scale=SCALE,
        )
        for program in PROGRAMS
        for policy in POLICIES
    ]


def find_raise_plan(keys: list[str]) -> ChaosPlan:
    """A seeded plan injecting fatal raises into some (not all) keys."""
    for seed in range(500):
        plan = ChaosPlan(seed=seed, raise_rate=0.25)
        victims = plan.victims(keys)
        if victims and len(victims) < len(keys):
            return plan
    raise AssertionError("no seed yields a proper subset of raise victims")


def find_transient_plan(keys: list[str]) -> ChaosPlan:
    """A seeded plan with at least one kill and one stall victim."""
    for seed in range(500):
        plan = ChaosPlan(
            seed=seed, kill_rate=0.25, stall_rate=0.25, stall_seconds=30.0
        )
        kinds = set(plan.victims(keys).values())
        if {"kill", "stall"} <= kinds:
            return plan
    raise AssertionError("no seed yields both kill and stall victims")


def find_truncating_cache(
    directory, keys: list[str], completing: set[str]
) -> TruncatingResultCache:
    """A cache whose corrupted first writes hit >= 1 completing key."""
    for seed in range(500):
        cache = TruncatingResultCache(directory, seed=seed, truncate_rate=0.3)
        victims = set(cache.truncate_victims(keys))
        if victims & completing and len(victims) < len(keys):
            return cache
    raise AssertionError("no seed truncates a completing key")


@pytest.fixture(scope="module")
def clean_digests():
    """Digest of every spec's result from an uninjected serial run."""
    specs = all_specs()
    results = Executor(jobs=1).run_many(specs)
    return {
        spec.cache_key(): result_digest(result)
        for spec, result in zip(specs, results)
    }


class TestFatalInjectionAndResume:
    def test_failures_resume_and_quarantine(self, tmp_path, clean_digests):
        specs = all_specs()
        keys = [spec.cache_key() for spec in specs]
        plan = find_raise_plan(keys)
        raise_keys = set(plan.victims(keys))
        assert all(
            action == ACTION_RAISE for action in plan.victims(keys).values()
        )
        cache_dir = tmp_path / "cache"
        cache = find_truncating_cache(
            cache_dir, keys, set(keys) - raise_keys
        )
        truncated = set(cache.truncate_victims(keys)) - raise_keys
        journal = RunJournal.beside(cache_dir)

        # --- the injected sweep: fatal raises + corrupted cache writes.
        # No kills are injected, so every first attempt really executes:
        # the failure set is exactly the plan's raise victims.
        executor = Executor(
            jobs=4,
            cache=cache,
            retry=RetryPolicy(retries=1, backoff_base=0.0),
            journal=journal,
            chaos=plan,
        )
        wave = executor.run_wave(specs)
        assert {f.key for f in wave.failures} == raise_keys
        assert all(f.error_type == "ChaosError" for f in wave.failures)
        assert all(not f.retryable for f in wave.failures)
        assert all(f.attempts == 1 for f in wave.failures)  # never retried
        for spec, result in zip(specs, wave.results):
            if spec.cache_key() in raise_keys:
                assert result is None
            else:
                assert result_digest(result) == clean_digests[spec.cache_key()]

        # --- the journal knows what is done and what failed.
        state = journal.replay()
        assert state.completed == set(keys) - raise_keys
        assert set(state.failed) == raise_keys
        assert state.pending() == set()

        # --- resume: a fresh executor over the same cache directory.
        # Completed keys come from disk — except the truncated entries,
        # which quarantine (exactly once) and re-simulate; failed keys
        # re-attempt cleanly (chaos injected attempt 1 only, and the
        # resume is a fresh run without chaos).
        resume_cache = ResultCache(cache_dir)
        resumed = Executor(jobs=4, cache=resume_cache, journal=journal)
        final = resumed.run_many(specs)
        assert {
            spec.cache_key(): result_digest(result)
            for spec, result in zip(specs, final)
        } == clean_digests
        assert resume_cache.quarantined == len(truncated)
        assert resume_cache.quarantine_count() == len(truncated)
        assert resumed.executed == len(raise_keys) + len(truncated)
        assert journal.replay().failed == {}

        # --- a warm rerun is pure cache traffic: nothing re-simulates,
        # nothing new quarantines (corrupt entries cost one quarantine).
        warm_cache = ResultCache(cache_dir)
        warm = Executor(jobs=4, cache=warm_cache, journal=journal)
        again = warm.run_many(specs)
        assert warm.executed == 0
        assert warm_cache.quarantined == 0
        assert warm_cache.quarantine_count() == len(truncated)
        assert {
            spec.cache_key(): result_digest(result)
            for spec, result in zip(specs, again)
        } == clean_digests


class TestTransientRecovery:
    def test_kills_and_stalls_recover_byte_identically(
        self, clean_digests
    ):
        specs = all_specs()
        keys = [spec.cache_key() for spec in specs]
        plan = find_transient_plan(keys)
        executor = Executor(
            jobs=4,
            retry=RetryPolicy(retries=3, backoff_base=0.0),
            run_timeout=1.0,
            chaos=plan,
        )
        results = executor.run_many(specs)  # raises if anything failed
        assert executor.failures == []
        assert executor.retried >= 1  # at least one fault was absorbed
        assert {
            spec.cache_key(): result_digest(result)
            for spec, result in zip(specs, results)
        } == clean_digests
