"""Relative-Slowdown Monitor tests (Section 3.1, Eqs. 2-3, Table 3)."""

import pytest

from repro.common.config import RSMConfig
from repro.core.rsm import RSM, RSMCounters, _ratio_sf_a, _ratio_sf_b


def make_rsm(m_samp=100, programs=2, track=False):
    return RSM(
        RSMConfig(m_samp=m_samp),
        num_programs=programs,
        num_regions=128,
        track_regions=track,
    )


class TestCounters:
    def test_private_request_counting(self):
        rsm = make_rsm()
        rsm.on_request(0, region=0, region_is_private_own=True, served_from_m1=True)
        c = rsm.counters[0]
        assert c.num_req_m1_p == 1
        assert c.num_req_total_p == 1
        assert c.num_req_total_s == 0

    def test_shared_request_counting(self):
        rsm = make_rsm()
        rsm.on_request(0, 10, False, False)
        c = rsm.counters[0]
        assert c.num_req_total_s == 1
        assert c.num_req_m1_s == 0

    def test_swap_self(self):
        rsm = make_rsm()
        rsm.on_swap(0, 0)
        assert rsm.counters[0].num_swap_self == 1
        assert rsm.counters[0].num_swap_total == 1

    def test_swap_cross_program(self):
        rsm = make_rsm()
        rsm.on_swap(0, 1)
        assert rsm.counters[0].num_swap_total == 1
        assert rsm.counters[1].num_swap_total == 1
        assert rsm.counters[0].num_swap_self == 0

    def test_swap_with_vacant_m1(self):
        rsm = make_rsm()
        rsm.on_swap(0, None)
        assert rsm.counters[0].num_swap_total == 1
        assert rsm.counters[0].num_swap_self == 0

    def test_reset(self):
        c = RSMCounters(1, 2, 3, 4, 5, 6)
        c.reset()
        assert c.as_tuple() == (0,) * 6


class TestRatios:
    def test_sf_a_eq2(self):
        # (10/20) / (25/100) = 2.0
        assert _ratio_sf_a(10, 20, 25, 100) == pytest.approx(2.0)

    def test_sf_a_none_on_zero_denominator(self):
        assert _ratio_sf_a(1, 0, 1, 1) is None
        assert _ratio_sf_a(1, 1, 0, 1) is None

    def test_sf_b_eq3(self):
        assert _ratio_sf_b(5, 20) == pytest.approx(4.0)

    def test_sf_b_none_without_self_swaps(self):
        assert _ratio_sf_b(0, 10) is None


class TestSampling:
    def test_sample_after_m_samp_requests(self):
        rsm = make_rsm(m_samp=10)
        for index in range(10):
            rsm.on_request(0, 0, index % 5 == 0, index % 2 == 0)
        assert len(rsm.history) == 1
        assert rsm.sf_a[0] is not None
        assert rsm.counters[0].as_tuple() == (0,) * 6  # reset after sample

    def test_ready_requires_all_programs(self):
        rsm = make_rsm(m_samp=5, programs=2)
        for _ in range(5):
            rsm.on_request(0, 0, True, True)
        assert not rsm.ready
        for _ in range(5):
            rsm.on_request(1, 1, True, True)
        assert rsm.ready

    def test_no_competition_sf_a_near_one(self):
        # Equal M1 fractions in private and shared regions -> SF_A ~ 1.
        rsm = make_rsm(m_samp=300)
        for index in range(300):
            private = index % 10 == 0
            rsm.on_request(0, 0 if private else 50, private, index % 3 == 0)
        sample = rsm.history[0]
        assert sample.smoothed_sf_a == pytest.approx(1.0, abs=0.2)

    def test_competition_raises_sf_a(self):
        # M1 hits common in the private region, rare in shared regions.
        rsm = make_rsm(m_samp=200)
        for index in range(200):
            private = index % 10 == 0
            served_m1 = private or index % 20 == 0
            rsm.on_request(0, 0 if private else 50, private, served_m1)
        assert rsm.sf_a[0] > 2.0

    def test_sf_b_reflects_foreign_swaps(self):
        rsm = make_rsm(m_samp=10)
        for _ in range(3):
            rsm.on_swap(0, 1)  # foreign
        rsm.on_swap(0, 0)  # self
        for _ in range(10):
            rsm.on_request(0, 5, False, True)
        # raw SF_B = total/self = 4/1.
        assert rsm.history[0].raw_sf_b == pytest.approx(4.0)

    def test_smoothing_converges(self):
        rsm = make_rsm(m_samp=120)
        for _period in range(50):
            for index in range(120):
                private = index % 4 == 0
                rsm.on_request(0, 0 if private else 9, private, index % 3 == 0)
        samples = rsm.samples_for(0)
        assert samples[-1].smoothed_sf_a == pytest.approx(1.0, abs=0.1)

    def test_period_indices_increment(self):
        rsm = make_rsm(m_samp=5)
        for _ in range(15):
            rsm.on_request(0, 3, False, True)
        assert [s.period_index for s in rsm.samples_for(0)] == [0, 1, 2]


class TestRegionTracking:
    def test_sigma_req_computed(self):
        rsm = make_rsm(m_samp=256, track=True)
        for index in range(256):
            rsm.on_request(0, index % 128, False, True)
        sample = rsm.history[0]
        # Perfectly uniform distribution: sigma 0.
        assert sample.sigma_req == pytest.approx(0.0)

    def test_sigma_req_nonzero_for_skew(self):
        rsm = make_rsm(m_samp=256, track=True)
        for _ in range(256):
            rsm.on_request(0, 7, False, True)
        assert rsm.history[0].sigma_req > 1.0

    def test_sigma_absent_without_tracking(self):
        rsm = make_rsm(m_samp=10, track=False)
        for _ in range(10):
            rsm.on_request(0, 0, False, True)
        assert rsm.history[0].sigma_req is None

    def test_region_counts_reset_each_period(self):
        rsm = make_rsm(m_samp=128, track=True)
        for _ in range(2):
            for index in range(128):
                rsm.on_request(0, index % 128, False, True)
        assert rsm.history[1].sigma_req == pytest.approx(0.0)
