"""Baseline migration-policy tests (Table 2 behaviours)."""

import pytest

from repro.cache.stc import STCEntry
from repro.common.config import paper_quad_core
from repro.hybrid.st_entry import STEntry
from repro.policies import make_policy
from repro.policies.base import AccessContext
from repro.policies.cameo import CameoPolicy
from repro.policies.silcfm import SilcFMPolicy
from repro.policies.static import StaticPolicy

CONFIG = paper_quad_core(scale=64)


def make_ctx(slot=2, location=2, count=1, is_write=False, group=0):
    st_entry = STEntry(9)
    st_entry.m1_owner = 0
    stc_entry = STCEntry(group=group, qac_at_insert=(0,) * 9)
    stc_entry.counters[slot] = count
    return AccessContext(
        core_id=0,
        group=group,
        slot=slot,
        location=location,
        is_write=is_write,
        owner=0,
        m1_owner=0,
        st_entry=st_entry,
        stc_entry=stc_entry,
        now=0,
    )


class TestFactory:
    @pytest.mark.parametrize(
        "name", ["static", "cameo", "pom", "silcfm", "mempod", "mdm", "profess"]
    )
    def test_known_names(self, name):
        policy = make_policy(name, CONFIG)
        assert policy.name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_policy("nope", CONFIG)

    def test_case_insensitive(self):
        assert make_policy("PoM", CONFIG).name == "pom"


class TestStatic:
    def test_never_swaps(self):
        policy = StaticPolicy(CONFIG)
        assert policy.on_access(make_ctx()) is None
        assert policy.on_access(make_ctx(location=0, slot=0)) is None

    def test_write_weight_one(self):
        assert StaticPolicy(CONFIG).write_weight == 1


class TestCameo:
    def test_promotes_on_first_access(self):
        policy = CameoPolicy(CONFIG)
        assert policy.on_access(make_ctx(count=1)) == 2

    def test_never_promotes_m1(self):
        policy = CameoPolicy(CONFIG)
        assert policy.on_access(make_ctx(slot=0, location=0)) is None


class TestSilcFM:
    def test_promotes_on_first_access(self):
        policy = SilcFMPolicy(CONFIG)
        assert policy.on_access(make_ctx()) == 2

    def test_lock_protects_hot_m1_block(self):
        policy = SilcFMPolicy(CONFIG)
        # Heat up the M1 resident (slot 0, block = group 0 slot 0) well
        # past the lock threshold of 50.
        for _ in range(60):
            policy.on_access(make_ctx(slot=0, location=0))
        assert policy.on_access(make_ctx(slot=2, location=2)) is None
        assert policy.locked_denials == 1

    def test_aging_unlocks(self):
        cfg = paper_quad_core(scale=64)
        policy = SilcFMPolicy(cfg)
        for _ in range(60):
            policy.on_access(make_ctx(slot=0, location=0))
        # Age several epochs: counters halve each epoch.
        interval = cfg.silcfm.aging_interval_requests
        for _ in range(interval * 4):
            policy.on_access(make_ctx(slot=3, location=3, group=1))
        assert policy.on_access(make_ctx(slot=2, location=2)) == 2

    def test_write_weight_default_one(self):
        assert SilcFMPolicy(CONFIG).write_weight == 1


class TestRSMGuidedPoM:
    def test_factory_name(self):
        policy = make_policy("rsm-pom", CONFIG)
        assert policy.name == "rsm-pom"

    def test_inherits_pom_write_weight(self):
        assert make_policy("rsm-pom", CONFIG).write_weight == 8

    def test_case2_vetoes_pom_swap(self):
        from repro.core.rsm_guided import RSMGuidedPoMPolicy

        class FakeRSM:
            sf_a = [3.0, 1.0]
            sf_b = [3.0, 1.0]

        class FakeController:
            rsm = FakeRSM()

        policy = RSMGuidedPoMPolicy(CONFIG)
        policy.bind(FakeController())
        policy.threshold = 1
        ctx = make_ctx(count=1)
        ctx.owner = 1
        ctx.m1_owner = 0
        ctx.st_entry.m1_owner = 0
        # PoM alone would swap at threshold 1; Case 2 protects program 0.
        assert policy.on_access(ctx) is None
        assert policy.case_counts[2] == 1

    def test_case1_forces_promotion(self):
        from repro.core.rsm_guided import RSMGuidedPoMPolicy

        class FakeRSM:
            sf_a = [1.0, 3.0]
            sf_b = [1.0, 3.0]

        class FakeController:
            rsm = FakeRSM()

        policy = RSMGuidedPoMPolicy(CONFIG)
        policy.bind(FakeController())
        policy.threshold = 48  # PoM alone would not swap yet
        ctx = make_ctx(count=1)
        ctx.owner = 1
        ctx.m1_owner = 0
        ctx.st_entry.m1_owner = 0
        assert policy.on_access(ctx) == ctx.slot
        assert policy.case_counts[1] == 1

    def test_case1_respects_prohibition(self):
        from repro.core.rsm_guided import RSMGuidedPoMPolicy

        class FakeRSM:
            sf_a = [1.0, 3.0]
            sf_b = [1.0, 3.0]

        class FakeController:
            rsm = FakeRSM()

        policy = RSMGuidedPoMPolicy(CONFIG)
        policy.bind(FakeController())
        policy.threshold = None  # epoch decided to prohibit swaps
        ctx = make_ctx(count=1)
        ctx.owner = 1
        ctx.m1_owner = 0
        ctx.st_entry.m1_owner = 0
        assert policy.on_access(ctx) is None
