"""Figure-driver tests on a stubbed runner (no simulation)."""

from repro.experiments import fig02, fig16
from repro.sim.metrics import WorkloadMetrics
from repro.workloads.table10 import WORKLOADS


class StubRunner:
    """Canned per-policy slowdowns for the detail workloads."""

    SLOWDOWNS = {
        "pom": (4.0, 3.0, 2.5, 2.0),
        "mdm": (3.6, 2.9, 2.4, 2.1),
        "profess": (3.2, 2.8, 2.6, 2.2),
    }

    def workload_metrics(self, name, policy, config=None):
        slowdowns = self.SLOWDOWNS[policy]
        return WorkloadMetrics(
            policy=policy,
            program_names=WORKLOADS[name],
            slowdowns=slowdowns,
            weighted_speedup=sum(1 / s for s in slowdowns),
            unfairness=max(slowdowns),
            energy_efficiency=1e6,
            average_read_latency=100.0,
            swap_fraction=0.02,
        )


class TestFig02:
    def test_rows_per_workload_program(self):
        result = fig02.run(StubRunner())
        assert len(result.rows) == 12
        workloads = {row[0] for row in result.rows}
        assert workloads == {"w09", "w16", "w19"}

    def test_spread_computed(self):
        result = fig02.run(StubRunner())
        for value in result.summary.values():
            assert value == 2.0  # 4.0 / 2.0


class TestFig16:
    def test_three_policies_per_row(self):
        result = fig16.run(StubRunner())
        assert result.headers[-3:] == ["pom", "mdm", "profess"]
        for row in result.rows:
            assert len(row) == 5

    def test_max_summary_lines(self):
        result = fig16.run(StubRunner())
        assert "w09 max slowdown pom/mdm/profess" in result.summary
        assert result.summary["w09 max slowdown pom/mdm/profess"] == (
            "4.00 / 3.60 / 3.20"
        )

    def test_program_names_match_table10(self):
        result = fig16.run(StubRunner())
        w09_rows = [row for row in result.rows if row[0] == "w09"]
        assert tuple(row[1] for row in w09_rows) == WORKLOADS["w09"]
