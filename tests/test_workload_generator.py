"""Random workload-mix generator tests."""

import pytest

from repro.traces.spec import PROGRAM_PROFILES
from repro.workloads.generator import (
    HEAVY,
    LIGHT,
    MEDIUM,
    random_mix,
    random_mixes,
)


class TestClasses:
    def test_classes_partition_table9(self):
        assert set(HEAVY) | set(MEDIUM) | set(LIGHT) == set(PROGRAM_PROFILES)
        assert not set(HEAVY) & set(MEDIUM)
        assert not set(MEDIUM) & set(LIGHT)

    def test_known_members(self):
        assert "mcf" in HEAVY
        assert "zeusmp" in LIGHT


class TestRandomMix:
    def test_size(self):
        assert len(random_mix(seed=1)) == 4

    def test_deterministic(self):
        assert random_mix(seed=1, index=3) == random_mix(seed=1, index=3)

    def test_indices_differ(self):
        mixes = {random_mix(seed=1, index=i) for i in range(10)}
        assert len(mixes) > 5

    def test_contains_heavy_and_light(self):
        for index in range(20):
            mix = random_mix(seed=2, index=index)
            assert any(p in HEAVY for p in mix)
            assert any(p not in HEAVY for p in mix)

    def test_all_programs_valid(self):
        for index in range(20):
            for program in random_mix(seed=3, index=index):
                assert program in PROGRAM_PROFILES

    def test_no_duplicates_mode(self):
        for index in range(20):
            mix = random_mix(seed=4, index=index, allow_duplicates=False)
            assert len(set(mix)) == len(mix)

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            random_mix(seed=1, size=1)


class TestRandomMixes:
    def test_named_and_counted(self):
        mixes = random_mixes(seed=5, count=3)
        assert sorted(mixes) == ["r01", "r02", "r03"]
        assert all(len(m) == 4 for m in mixes.values())
