"""D110 stays silent: seeded substreams and sorted iteration."""
from repro.common.rng import make_rng


class Engine:
    def tick(self, seed):
        rng = make_rng(seed)
        self.stamp = rng.random()

    def enqueue(self):
        pending = {3, 1, 2}
        for item in sorted(pending):
            self.queue.append(item)
