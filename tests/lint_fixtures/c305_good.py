"""C305 clean: policies constructed through the composable registry."""

from repro.policies.registry import build_policy


def build(config):
    return build_policy("mdm+rsm+stc:lfu", config)


def build_with_kwargs(config):
    return build_policy("mdm", config, record_predictions=True)
