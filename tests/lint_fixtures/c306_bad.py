"""C306: broad handlers that swallow the error without re-raising."""


def quiet_load(path):
    try:
        return path.read_text()
    except Exception:
        return None


def quiet_tuple(path):
    try:
        return path.read_text()
    except (ValueError, BaseException):
        return None
