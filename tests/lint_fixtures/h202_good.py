"""H202 clean: every instance attribute is a declared slot (inheritance
and ``dataclass(slots=True)`` both count)."""

from dataclasses import dataclass


class Packet:
    __slots__ = ("address", "is_write")

    def __init__(self, address, is_write):
        self.address = address
        self.is_write = is_write


class TimedPacket(Packet):
    __slots__ = ("issued_at",)

    def __init__(self, address, is_write, issued_at):
        super().__init__(address, is_write)
        self.issued_at = issued_at


@dataclass(slots=True)
class Stats:
    hits: int = 0
    misses: int = 0

    def record(self, hit):
        if hit:
            self.hits += 1
        else:
            self.misses += 1
