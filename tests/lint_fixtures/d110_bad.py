"""D110: nondeterministic values reach simulation state via dataflow.

The clock read and the set iteration are assigned to locals first, so
the syntactic rules cannot connect them to the stores — the flow
analysis must.
"""
import time


class Engine:
    def tick(self):
        now = time.time()
        self.stamp = now

    def enqueue(self):
        pending = {3, 1, 2}
        for item in pending:
            self.queue.append(item)
