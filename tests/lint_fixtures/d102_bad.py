"""D102: numpy.random used outside repro.common.rng."""

import numpy as np


def noise(n):
    return np.random.default_rng(0).normal(size=n)
