"""C303 clean: every raise reaches ReproError (builtin mixed in for
callers that expect the stdlib type); NotImplementedError stays legal."""

from repro.common.errors import ReproError


class FixtureError(ReproError):
    pass


class FixtureValueError(FixtureError, ValueError):
    pass


def fail():
    raise FixtureError("boom")


def reject(value):
    raise FixtureValueError(f"bad value: {value}")


def todo():
    raise NotImplementedError
