"""W001: suppressions that no longer match any finding."""


def compute():  # repro: noqa[D101]
    return 1
