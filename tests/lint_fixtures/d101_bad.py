"""D101: stdlib random imported outside repro.common.rng."""

import random
from random import choice


def pick(values):
    return choice(values) if values else random.random()
