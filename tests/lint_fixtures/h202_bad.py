"""H202: attribute assigned outside the declared __slots__."""


class Packet:
    __slots__ = ("address", "is_write")

    def __init__(self, address, is_write):
        self.address = address
        self.is_write = is_write
        self.extra = 0  # not a slot: AttributeError at runtime

    def mark(self):
        self.cached_line = self.address >> 6
