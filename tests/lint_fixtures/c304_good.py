"""C304 clean: public functions fully hinted; private and nested
functions are implementation detail and stay free-form."""

from typing import Optional


def combine(left: int, right: int) -> int:
    def add(a, b):  # nested: exempt
        return a + b

    return add(left, right)


def _helper(left, right):  # private: exempt
    return left + right


class Mapper:
    def lookup(self, key: str, default: Optional[int] = None) -> Optional[int]:
        return default
