"""H204 bad: per-request allocation inside a batched tick-loop function."""

from functools import partial


class Request:
    __slots__ = ("slot",)

    def __init__(self, slot):
        self.slot = slot


class Kernel:
    __slots__ = ("pending", "free")

    def __init__(self):
        self.pending = []
        self.free = []

    def tick(self, now):
        burst = [now, now + 4]  # list display
        state = {"now": now}  # dict display
        hits = [cycle for cycle in burst]  # comprehension
        hook = lambda cycle: cycle + 1  # noqa: E731  lambda closure

        def finish(cycle):  # nested function object
            return cycle

        request = Request(now)  # project-class construction
        deferred = partial(finish, now)  # allocating constructor
        return burst, state, hits, hook, request, deferred
