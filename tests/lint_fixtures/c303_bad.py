"""C303: exceptions outside the ReproError pedigree."""


class FixtureError(Exception):
    pass


def fail():
    raise FixtureError("boom")


def reject(value):
    raise ValueError(f"bad value: {value}")
