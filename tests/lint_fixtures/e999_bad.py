"""E999: this file does not parse (and that must be a finding, not a crash)."""


def broken(:
    return
