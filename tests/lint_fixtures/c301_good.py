"""C301 clean: handlers name the exceptions they mean to catch."""


def load(path):
    try:
        return path.read_text()
    except (OSError, UnicodeDecodeError):
        return None
