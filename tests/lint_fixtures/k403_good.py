"""K403 stays silent: token computation is a pure fold of field values."""
import hashlib
from dataclasses import dataclass

from repro.common.serialize import canonical_value


def _fold(value):
    return hashlib.sha256(repr(value).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class MiniConfig:
    size: int = 4

    def cache_token(self):
        return _fold(canonical_value(self))
