"""K401: a field deleted from the cache walk is read on a sim path.

``debug_level`` is excluded from ``cache_token()`` (the ``del``) but
not on any ``_CACHE_NEUTRAL_FIELDS`` allowlist, and ``reader`` consults
it — a config change the disk cache would silently ignore.
"""
from dataclasses import dataclass

from repro.common.serialize import canonical_digest, canonical_value


@dataclass(frozen=True)
class MiniConfig:
    size: int = 4
    debug_level: int = 0

    def cache_token(self):
        value = canonical_value(self)
        del value["debug_level"]
        return canonical_digest(value)


def reader(config: MiniConfig):
    return config.debug_level
