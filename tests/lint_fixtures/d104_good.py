"""D104 clean: membership tests are fine; iteration is sorted or listed."""


def charge(owners, stats):
    seen = set()
    for owner in owners:
        if owner in seen:
            continue
        seen.add(owner)
        stats[owner] += 1
    return [core for core in sorted(seen)]
