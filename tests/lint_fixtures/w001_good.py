"""W001 stays silent: the suppression still matches a real finding."""
import random  # repro: noqa[D101]
