"""D104: iterating hash-ordered sets in a simulation module."""


def charge(owners, stats):
    for owner in {owners[0], owners[1]}:
        stats[owner] += 1
    return [core for core in set(stats)]
