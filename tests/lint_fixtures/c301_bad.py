"""C301: bare except swallows SystemExit and KeyboardInterrupt."""


def load(path):
    try:
        return path.read_text()
    except:  # noqa is deliberate-free: this must fire
        return None
