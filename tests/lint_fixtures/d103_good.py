"""D103 clean: only simulated time; perf_counter is profiling, not state."""

import time


def stamp(events, profile):
    if profile is not None:
        profile.started = time.perf_counter()
    return events.now
