"""C304: public API in an annotated package without complete hints."""


def combine(left, right):
    return left + right


class Mapper:
    def lookup(self, key, default=None):
        return default
