"""H201 clean: manifest class declares __slots__."""


class HotThing:
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value
