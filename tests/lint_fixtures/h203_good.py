"""H203 clean: hot loop stays slim; f-strings only on the raise path,
formatting free elsewhere in the module."""

from repro.common.errors import SimulationError


class Loop:
    __slots__ = ("events",)

    def __init__(self, events):
        self.events = events

    def run(self):
        for event in self.events:
            if event is None:
                raise SimulationError(f"null event in {self.events!r}")
            event()


def report(loop):  # not on the manifest: formatting is fine here
    print(f"{len(loop.events)} events")
