"""Blanket line suppression: every rule silenced on the marked line."""

import random  # repro: noqa


def pick(values):
    return random.choice(values)
