"""A suppression for the wrong rule must NOT silence the finding."""

import random  # repro: noqa[D102]


def pick(values):
    return random.choice(values)
