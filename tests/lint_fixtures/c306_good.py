"""C306 clean: broad handlers re-raise or convert; narrow ones may swallow."""

from repro.common.errors import ReproError


def convert(path):
    try:
        return path.read_text()
    except Exception as error:
        raise ReproError(f"load failed: {error}")


def reraise_after_logging(path, log):
    try:
        return path.read_text()
    except Exception:
        log.append(path)
        raise


def narrow_swallow(path):
    try:
        return path.read_text()
    except OSError:
        return None  # narrow handlers may legitimately swallow


def justified(path):
    try:
        return path.read_text()
    except Exception:  # repro: noqa[C306]
        return None
