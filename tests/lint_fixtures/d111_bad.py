"""D111: a nondeterministic callable invoked through a local alias.

Syntactic D103 only sees direct ``time.time()`` spellings; the alias
hides the call site, so the flow analysis must track the binding.
"""
import time


class Engine:
    def tick(self):
        clock = time.time
        self.last = clock()
