"""C305: direct policy construction outside the policy packages."""

from repro.core.mdm import MDMPolicy
from repro.policies.pom import PoMPolicy


def build(config):
    return MDMPolicy(config)


def build_other(config):
    return PoMPolicy(config)
