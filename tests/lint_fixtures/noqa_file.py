# repro: noqa-file[D101]
"""File-level suppression: D101 silenced everywhere in this file."""

import random
from random import choice


def pick(values):
    return choice(values) if values else random.random()
