"""D103: wall-clock and entropy reads in a simulation module."""

import os
import time
from datetime import datetime


def stamp(event):
    return (time.time(), datetime.now(), os.urandom(4), event)
