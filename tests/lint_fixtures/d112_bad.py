"""D112: taint crosses a call boundary before reaching the sink.

Two shapes: a helper that mints the nondeterministic value and returns
it, and a helper that passes a tainted argument through unchanged.
Both need the cross-function call summaries.
"""
import time


def _jitter():
    return time.time() * 0.5


def _passthrough(value):
    return value


class Engine:
    def tick(self):
        self.stamp = _jitter()

    def mix(self):
        raw = time.time()
        self.skew = _passthrough(raw)
