"""H203: formatting, logging, and exception handling in a hot function."""


class Loop:
    __slots__ = ("events",)

    def __init__(self, events):
        self.events = events

    def run(self):
        for event in self.events:
            print(f"dispatch {event}")
            try:
                event()
            except ValueError:
                pass
