"""D105 clean: state keyed by stable request ids, not addresses."""


def track(pending, request):
    pending[request.request_id] = request
    return {request.request_id: 0}
