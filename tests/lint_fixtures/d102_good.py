"""D102 clean: numpy used, but never its global random state."""

import numpy as np

from repro.common.rng import make_rng


def noise(n, seed):
    rng = make_rng(seed, "noise")
    return np.asarray(rng.normal(size=n))
