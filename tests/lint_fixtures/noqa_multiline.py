"""A suppression on the *last* line of a multi-line statement works."""
import time


def snapshot():
    stamp = time.time(
        # the call spans physical lines; the comment sits on the close
    )  # repro: noqa[D103]
    return stamp
