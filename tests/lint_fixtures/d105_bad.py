"""D105: id()-keyed state in a simulation module."""


def track(pending, request):
    pending[id(request)] = request
    return {id(request): 0}
