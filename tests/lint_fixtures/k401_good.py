"""K401 stays silent: the exclusion is a reviewed allowlist entry."""
from dataclasses import dataclass

from repro.common.serialize import canonical_digest, canonical_value


@dataclass(frozen=True)
class MiniConfig:
    size: int = 4
    debug_level: int = 0

    # Reviewed: debug_level only toggles diagnostics, never results.
    _CACHE_NEUTRAL_FIELDS = ("debug_level",)

    def cache_token(self):
        value = canonical_value(self)
        del value["debug_level"]
        return canonical_digest(value)


def reader(config: MiniConfig):
    return config.debug_level
