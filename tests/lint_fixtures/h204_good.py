"""H204 good: the batched tick reuses preallocated columnar state.

Method calls on preallocated containers (``free.pop()``/``append()``)
and the error path (``raise`` with a formatted message) stay legal.
"""


class EmptyQueueError(Exception):
    pass


class Kernel:
    __slots__ = ("order", "count", "free", "out")

    def __init__(self):
        self.order = [0] * 64
        self.count = 0
        self.free = list(range(64))
        self.out = [0] * 4

    def tick(self, now):
        if self.count == 0:
            raise EmptyQueueError(f"tick at {now} with an empty queue")
        slot = self.free.pop()
        self.order[0] = slot
        self.out[0] = now
        self.free.append(slot)
        return self.out
