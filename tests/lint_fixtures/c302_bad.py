"""C302: mutable defaults are shared across every call."""


def collect(item, into=[], index={}, *, seen=set()):
    into.append(item)
    return into, index, seen
