"""D112 stays silent: helper routes only seed-derived values."""
from repro.common.rng import substream_seed


def _derive(seed):
    return substream_seed(seed, "engine")


class Engine:
    def tick(self, seed):
        self.stamp = _derive(seed)
