"""D101 clean: randomness comes from the seeded substream factory."""

from repro.common.rng import make_rng


def pick(values, seed):
    rng = make_rng(seed, "fixture")
    return values[int(rng.integers(0, len(values)))]
