"""K403: an environment read reachable from cache-token computation."""
import os
from dataclasses import dataclass

from repro.common.serialize import canonical_digest, canonical_value


def _salt():
    return os.environ.get("PROFESS_SALT", "")


@dataclass(frozen=True)
class MiniConfig:
    size: int = 4

    def cache_token(self):
        value = canonical_value(self)
        return canonical_digest({"value": value, "salt": _salt()})
