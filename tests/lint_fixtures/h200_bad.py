"""H200: the test's manifest names ``Missing``, defined nowhere here."""


class Present:
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value
