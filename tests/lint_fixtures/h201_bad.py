"""H201: on the hot-path manifest but unslotted (__dict__ per instance)."""


class HotThing:
    def __init__(self, value):
        self.value = value
