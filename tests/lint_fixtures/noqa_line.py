"""Targeted line suppression: D101 silenced, nothing else."""

import random  # repro: noqa[D101]


def pick(values):
    return random.choice(values)
