"""H200 clean: the test's manifest names ``Present``, defined below."""


class Present:
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value
