"""K402: stale allowlist entries — one names no field, one is covered."""
from dataclasses import dataclass

from repro.common.serialize import canonical_digest, canonical_value


@dataclass(frozen=True)
class MiniConfig:
    size: int = 4

    _CACHE_NEUTRAL_FIELDS = ("ghost", "size")

    def cache_token(self):
        return canonical_digest(canonical_value(self))
