"""C302 clean: None sentinels, fresh containers inside the function."""


def collect(item, into=None, index=None, *, seen=frozenset()):
    into = [] if into is None else into
    index = {} if index is None else index
    into.append(item)
    return into, index, seen
