"""D111 stays silent on a *direct* call: that spelling is D103's job."""
import time


class Engine:
    def tick(self):
        self.last = time.time()
