"""Columnar request batches and backend dispatch (DESIGN.md §14).

Covers the SoA :class:`RequestBatch` container, backend resolution
(``auto``/``python``/``compiled`` with the graceful numba fallback),
the cache-key exclusion contract, and — most importantly — byte
identity of simulation results across backends.
"""

from dataclasses import replace

import pytest

from repro.common.config import (
    MEM_BACKENDS,
    ConfigError,
    paper_quad_core,
    paper_single_core,
)
from repro.common.errors import InvalidValueError
from repro.exec.spec import RunSpec
from repro.mem.backend import (
    compiled_available,
    get_tick_kernel,
    mem_tick,
    resolve_backend,
)
from repro.mem.batch import INITIAL_CAPACITY, NO_ROW, RequestBatch
from repro.sim.engine import SimulationDriver
from repro.traces.generator import synthesize_trace


class TestRequestBatch:
    def test_push_records_columns_in_arrival_order(self):
        batch = RequestBatch()
        first = batch.push(3, 40, 0, 100, 0, None)
        second = batch.push(7, 41, 1, 101, 2, None)
        assert len(batch) == 2
        assert list(batch.order_v[:2]) == [first, second]
        assert batch.bank_key_v[first] == 3
        assert batch.row_v[second] == 41
        assert batch.is_write_v[second] == 1
        assert batch.arrival_v[first] == 100
        assert batch.kind_v[second] == 2

    def test_pop_at_preserves_fifo_of_remainder(self):
        batch = RequestBatch()
        slots = [batch.push(0, row, 0, 0, 0, None) for row in range(4)]
        popped = batch.pop_at(1)
        assert popped == slots[1]
        assert list(batch.order_v[: batch.count]) == [
            slots[0],
            slots[2],
            slots[3],
        ]

    def test_release_recycles_slot_and_clears_payload(self):
        batch = RequestBatch()
        slot = batch.push(0, 1, 0, 0, 0, lambda now: None, origin=object())
        batch.pop_at(0)
        batch.release(slot)
        assert batch.callbacks[slot] is None
        assert batch.origins[slot] is None
        assert batch.free[-1] == slot  # LIFO reuse
        assert batch.push(0, 2, 0, 0, 0, None) == slot

    def test_grow_doubles_capacity_and_keeps_entries(self):
        batch = RequestBatch(capacity=2)
        slots = [batch.push(bank, bank * 10, 0, 0, 0, None) for bank in range(3)]
        assert batch.capacity == 4
        assert list(batch.order_v[:3]) == slots
        assert [int(batch.bank_key_v[s]) for s in slots] == [0, 1, 2]
        # Views were rebound onto the grown arrays.
        assert len(batch.bank_key_v) == 4
        assert len(batch.callbacks) == 4

    def test_default_capacity(self):
        assert RequestBatch().capacity == INITIAL_CAPACITY

    def test_no_row_sentinel_is_outside_the_st_row_namespace(self):
        # ST rows use a negative namespace (-1 - k): the sentinel must
        # never collide with a representable row id.
        assert NO_ROW < -(1 << 40)


class TestBackendResolution:
    def test_explicit_backends_are_honored(self):
        assert resolve_backend("python") == "python"
        # "compiled" is honored even without numba (interpreted fallback).
        assert resolve_backend("compiled") == "compiled"

    def test_auto_follows_numba_availability(self):
        expected = "compiled" if compiled_available() else "python"
        assert resolve_backend("auto") == expected

    def test_unknown_backend_rejected(self):
        with pytest.raises(InvalidValueError):
            resolve_backend("fortran")

    def test_every_config_backend_resolves(self):
        for name in MEM_BACKENDS:
            assert resolve_backend(name) in ("python", "compiled")

    def test_kernel_falls_back_to_interpreted_mem_tick(self):
        kernel = get_tick_kernel()
        assert callable(kernel)
        if not compiled_available():
            assert kernel is mem_tick

    def test_config_validates_backend(self):
        with pytest.raises(ConfigError):
            replace(paper_single_core(scale=128), mem_backend="fortran")


class TestCacheKeyExclusion:
    def test_cache_token_ignores_backend(self):
        config = paper_single_core(scale=128)
        for backend in MEM_BACKENDS:
            assert (
                replace(config, mem_backend=backend).cache_token()
                == config.cache_token()
            )

    def test_run_spec_cache_key_ignores_backend(self):
        config = paper_single_core(scale=128)

        def spec(backend):
            return RunSpec(
                kind="single",
                programs=("zeusmp",),
                policy="pom",
                config=replace(config, mem_backend=backend),
                requests=500,
                seed=0,
                trace_scale=128,
            )

        keys = {spec(backend).cache_key() for backend in MEM_BACKENDS}
        assert len(keys) == 1


def _driver(mem_backend=None, quad=False, requests=500):
    if quad:
        config = paper_quad_core(scale=128)
        programs = ["zeusmp", "leslie3d", "mcf", "libquantum"]
        policy = "profess"
    else:
        config = paper_single_core(scale=128)
        programs = ["zeusmp"]
        policy = "pom"
    traces = [
        (program, synthesize_trace(program, requests, scale=128, seed=seed))
        for seed, program in enumerate(programs)
    ]
    return SimulationDriver(
        config, policy, traces, seed=0, mem_backend=mem_backend
    )


class TestBackendParity:
    """The tentpole contract: backends are byte-identical."""

    def test_driver_override_wins_over_config_default(self):
        driver = _driver(mem_backend="python")
        assert all(
            channel.backend == "python"
            for channel in driver.controller.channels
        )
        driver = _driver(mem_backend="compiled")
        assert all(
            channel.backend == "compiled"
            for channel in driver.controller.channels
        )

    def test_single_core_results_identical(self):
        python = _driver(mem_backend="python").run()
        compiled = _driver(mem_backend="compiled").run()
        assert python.to_dict() == compiled.to_dict()

    def test_quad_core_results_identical(self):
        # Swaps, ST fetches/writebacks, and channel contention all cross
        # the backend boundary in the quad mix.
        python = _driver(mem_backend="python", quad=True, requests=400).run()
        compiled = _driver(
            mem_backend="compiled", quad=True, requests=400
        ).run()
        assert python.to_dict() == compiled.to_dict()
