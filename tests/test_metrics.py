"""Figure-of-merit tests (Section 4.3)."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.metrics import (
    WorkloadMetrics,
    slowdown,
    unfairness,
    weighted_speedup,
)
from repro.sim.results import ProgramResult, SimulationResult


def program(name, ipc, core=0):
    return ProgramResult(
        name=name,
        core_id=core,
        instructions=1000,
        ipc=ipc,
        requests=100,
        m1_fraction=0.5,
        passes_completed=1,
        swaps_involving=0,
    )


def result(ipcs):
    programs = tuple(
        program(f"p{index}", ipc, index) for index, ipc in enumerate(ipcs)
    )
    return SimulationResult(
        policy="test",
        cycles=1000,
        programs=programs,
        total_requests=100,
        total_swaps=3,
        swap_fraction=0.03,
        average_read_latency=100.0,
        stc_hit_rate=0.9,
        energy_joules=1.0,
        energy_efficiency=100.0,
    )


class TestScalars:
    def test_slowdown_eq1(self):
        assert slowdown(2.0, 1.0) == 2.0

    def test_no_contention_slowdown_one(self):
        assert slowdown(1.5, 1.5) == 1.0

    def test_slowdown_rejects_zero(self):
        with pytest.raises(SimulationError):
            slowdown(0.0, 1.0)

    def test_weighted_speedup(self):
        assert weighted_speedup([2.0, 4.0]) == pytest.approx(0.75)

    def test_weighted_speedup_ideal(self):
        assert weighted_speedup([1.0] * 4) == pytest.approx(4.0)

    def test_unfairness_is_max(self):
        assert unfairness([1.5, 3.0, 2.0]) == 3.0

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            weighted_speedup([])
        with pytest.raises(SimulationError):
            unfairness([])


class TestWorkloadMetrics:
    def test_from_results(self):
        multi = result([0.5, 0.25])
        metrics = WorkloadMetrics.from_results(multi, [1.0, 1.0])
        assert metrics.slowdowns == (2.0, 4.0)
        assert metrics.unfairness == 4.0
        assert metrics.weighted_speedup == pytest.approx(0.75)
        assert metrics.program_names == ("p0", "p1")

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SimulationError):
            WorkloadMetrics.from_results(result([0.5]), [1.0, 1.0])

    def test_carries_memory_metrics(self):
        metrics = WorkloadMetrics.from_results(result([0.5]), [1.0])
        assert metrics.energy_efficiency == 100.0
        assert metrics.swap_fraction == 0.03


class TestSimulationResult:
    def test_summary_line(self):
        line = result([0.5]).summary_line()
        assert "test" in line
        assert "p0" in line

    def test_ipc_by_core(self):
        assert result([0.5, 0.25]).ipc_by_core == (0.5, 0.25)

    def test_program_accessor(self):
        assert result([0.5, 0.25]).program(1).name == "p1"
