"""Exponential smoothing tests (RSM's averaging, Section 3.1.3)."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ConfigError
from repro.common.smoothing import ExponentialSmoother


class TestBasics:
    def test_first_observation_is_value(self):
        s = ExponentialSmoother(alpha=0.125)
        assert s.update(10.0) == 10.0

    def test_uninitialized_value_is_none(self):
        assert ExponentialSmoother().value is None

    def test_initialized_flag(self):
        s = ExponentialSmoother()
        assert not s.initialized
        s.update(1.0)
        assert s.initialized

    def test_second_observation_moves_alpha_fraction(self):
        s = ExponentialSmoother(alpha=0.25)
        s.update(0.0)
        assert s.update(8.0) == pytest.approx(2.0)

    def test_paper_alpha(self):
        s = ExponentialSmoother(alpha=0.125)
        s.update(0.0)
        assert s.update(16.0) == pytest.approx(2.0)

    def test_bias_added_to_each_observation(self):
        # RSM adds 1 to each counter before averaging, to avoid zeros.
        s = ExponentialSmoother(alpha=0.5, bias=1.0)
        assert s.update(0.0) == 1.0

    def test_reset(self):
        s = ExponentialSmoother()
        s.update(5.0)
        s.reset()
        assert s.value is None

    def test_alpha_one_tracks_exactly(self):
        s = ExponentialSmoother(alpha=1.0)
        s.update(3.0)
        assert s.update(7.0) == 7.0


class TestValidation:
    @pytest.mark.parametrize("alpha", [0.0, -0.1, 1.5])
    def test_rejects_bad_alpha(self, alpha):
        with pytest.raises(ConfigError):
            ExponentialSmoother(alpha=alpha)


class TestProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1))
    def test_stays_within_observed_range(self, observations):
        s = ExponentialSmoother(alpha=0.125)
        for value in observations:
            s.update(value)
        assert min(observations) <= s.value <= max(observations)

    @given(
        st.floats(min_value=0, max_value=1e3),
        st.integers(min_value=1, max_value=200),
    )
    def test_converges_to_constant_input(self, value, repeats):
        s = ExponentialSmoother(alpha=0.5)
        for _ in range(repeats):
            s.update(value)
        if repeats > 30:
            assert s.value == pytest.approx(value, abs=1e-3)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2))
    def test_smoothing_reduces_jump_magnitude(self, observations):
        s = ExponentialSmoother(alpha=0.125)
        s.update(observations[0])
        for value in observations[1:]:
            before = s.value
            after = s.update(value)
            assert abs(after - before) <= abs(value - before) + 1e-9
