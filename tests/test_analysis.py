"""Report-rendering tests."""

import pytest

from repro.analysis.report import (
    format_table,
    normalized_series_summary,
    render_boxplot_summary,
)


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["a", "bb"], [[1, 2.5], ["xx", 3.0]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "2.500" in table
        assert "xx" in table

    def test_headers_present(self):
        table = format_table(["name", "value"], [])
        assert table.splitlines()[0].startswith("name")

    def test_custom_float_format(self):
        table = format_table(["x"], [[1.23456]], float_format="{:.1f}")
        assert "1.2" in table


class TestBoxplotSummary:
    def test_contains_stats(self):
        line = render_boxplot_summary([1.0, 2.0, 3.0], label="test")
        assert line.startswith("test:")
        assert "med=2.000" in line
        assert "gmean=" in line

    def test_outliers_rendered(self):
        line = render_boxplot_summary([1.0] * 10 + [50.0])
        assert "outliers=" in line


class TestSeriesSummary:
    def test_higher_is_better(self):
        summary = normalized_series_summary({"a": 1.1, "b": 1.3})
        assert summary["best_key"] == "b"
        assert summary["best_improvement"] == pytest.approx(0.3)
        assert summary["average_improvement"] > 0

    def test_lower_is_better(self):
        summary = normalized_series_summary(
            {"a": 0.9, "b": 0.7}, higher_is_better=False
        )
        assert summary["best_key"] == "b"
        assert summary["best_improvement"] == pytest.approx(0.3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            normalized_series_summary({})
