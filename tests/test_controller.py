"""Hybrid memory controller integration tests."""

import pytest

from repro.common.config import paper_quad_core, with_overrides, STCConfig
from repro.common.events import EventQueue
from repro.hybrid.memory import HybridMemoryController
from repro.policies.registry import build_policy
from repro.policies.base import AccessContext, MigrationPolicy

CONFIG = paper_quad_core(scale=64)


class PromoteAlways(MigrationPolicy):
    """Test policy: promote every M2 access."""

    name = "promote-always"

    def __init__(self, config):
        super().__init__(config)
        self.evictions = 0

    def on_access(self, ctx: AccessContext):
        return None if ctx.in_m1 else ctx.slot

    def on_st_eviction(self, stc_entry, st_entry):
        self.evictions += 1


def make_controller(policy=None, config=CONFIG):
    events = EventQueue()
    policy = policy or build_policy("static", config)
    controller = HybridMemoryController(config, events, policy, seed=1)
    return events, controller


def line_of(controller, group, slot, offset=0):
    block = controller.address_map.block_of(group, slot)
    return block * 32 + offset


class TestAccessPath:
    def test_m1_access_served(self):
        events, controller = make_controller()
        done = []
        controller.access(0, line_of(controller, 0, 0), False, done.append)
        events.run()
        assert len(done) == 1
        assert controller.core_stats[0].requests == 1
        assert controller.core_stats[0].served_from_m1 == 1

    def test_m2_access_counted(self):
        events, controller = make_controller()
        controller.access(0, line_of(controller, 0, 3), False)
        events.run()
        assert controller.core_stats[0].served_from_m1 == 0

    def test_m2_slower_than_m1(self):
        events, controller = make_controller()
        latencies = []
        controller.access(0, line_of(controller, 0, 0), False, lambda c: latencies.append(c))
        events.run()
        start = events.now
        controller.access(0, line_of(controller, 2, 3), False, lambda c: latencies.append(c - start))
        events.run()
        assert latencies[1] > latencies[0]

    def test_read_write_counters(self):
        events, controller = make_controller()
        controller.access(0, line_of(controller, 0, 0), False)
        controller.access(0, line_of(controller, 0, 0), True)
        events.run()
        stats = controller.core_stats[0]
        assert stats.reads == 1
        assert stats.writes == 1

    def test_stc_miss_generates_st_read(self):
        events, controller = make_controller()
        controller.access(0, line_of(controller, 4, 0), False)
        events.run()
        st_reads = sum(c.stats.st_reads for c in controller.channels)
        assert st_reads == 1

    def test_stc_hit_no_extra_fetch(self):
        events, controller = make_controller()
        controller.access(0, line_of(controller, 4, 0), False)
        events.run()
        controller.access(0, line_of(controller, 4, 0, offset=1), False)
        events.run()
        st_reads = sum(c.stats.st_reads for c in controller.channels)
        assert st_reads == 1
        assert controller.stc_hit_rate() == 0.5

    def test_concurrent_misses_coalesce(self):
        events, controller = make_controller()
        controller.access(0, line_of(controller, 4, 0), False)
        controller.access(0, line_of(controller, 4, 1), False)
        events.run()
        st_reads = sum(c.stats.st_reads for c in controller.channels)
        assert st_reads == 1
        assert controller.core_stats[0].requests == 2

    def test_access_counter_bumped_with_weight(self):
        # MDM-family policies weigh writes as eight accesses (Sec. 4.1).
        events, controller = make_controller(build_policy("mdm", CONFIG))
        controller.access(0, line_of(controller, 4, 2), True)  # write: x8
        events.run()
        entry = controller.stc.peek(4)
        assert entry.count(2) == CONFIG.write_access_weight

    def test_access_counter_weight_one_for_static(self):
        events, controller = make_controller()
        controller.access(0, line_of(controller, 4, 2), True)
        events.run()
        assert controller.stc.peek(4).count(2) == 1


class TestSwaps:
    def test_promotion_updates_translation(self):
        events, controller = make_controller(PromoteAlways(CONFIG))
        controller.access(0, line_of(controller, 6, 5), False)
        events.run()
        st_entry = controller.st.entry(6)
        assert st_entry.location_of(5) == 0
        assert controller.total_swaps == 1

    def test_swapped_block_now_served_from_m1(self):
        events, controller = make_controller(PromoteAlways(CONFIG))
        controller.access(0, line_of(controller, 6, 5), False)
        events.run()
        controller.access(0, line_of(controller, 6, 5, offset=1), False)
        events.run()
        assert controller.core_stats[0].served_from_m1 == 1

    def test_swap_fraction(self):
        events, controller = make_controller(PromoteAlways(CONFIG))
        controller.access(0, line_of(controller, 6, 5), False)
        events.run()
        assert controller.swap_fraction() == pytest.approx(1.0)

    def test_no_double_swap_while_pending(self):
        events, controller = make_controller(PromoteAlways(CONFIG))
        controller.access(0, line_of(controller, 6, 5), False)
        controller.access(0, line_of(controller, 6, 4), False)
        events.run()
        # Both accesses decide to promote, but the second commit arrives
        # while the first swap is pending or after 5 is already in M1.
        assert controller.total_swaps <= 2

    def test_m1_owner_updated(self):
        events, controller = make_controller(PromoteAlways(CONFIG))
        # Give program 1 a page so ownership is meaningful.
        frames = controller.allocator.allocate(1, 4)
        block = 2 * frames[0]
        group = controller.address_map.group_of_block(block)
        slot = controller.address_map.slot_of_block(block)
        if slot == 0:
            block = 2 * frames[1] if controller.address_map.slot_of_block(2 * frames[1]) else 2 * frames[1] + 1
            group = controller.address_map.group_of_block(block)
            slot = controller.address_map.slot_of_block(block)
        if slot != 0:
            controller.access(1, block * 32, False)
            events.run()
            assert controller.st.entry(group).m1_owner == 1

    def test_request_promotion_noop_for_m1_resident(self):
        events, controller = make_controller()
        assert controller.request_promotion(3, 0) is False
        assert controller.total_swaps == 0


class TestEvictionsAndFinalize:
    def test_eviction_callback_reaches_policy(self):
        tiny_stc = with_overrides(CONFIG, stc=STCConfig(capacity=512))
        policy = PromoteAlways(tiny_stc)
        events, controller = make_controller(policy, tiny_stc)
        # Touch more groups than the STC holds (64 entries).
        for group in range(0, 200, 1):
            controller.access(0, line_of(controller, group, 0), False)
        events.run()
        assert policy.evictions > 0

    def test_finalize_flushes(self):
        policy = PromoteAlways(CONFIG)
        events, controller = make_controller(policy)
        controller.access(0, line_of(controller, 2, 0), False)
        events.run()
        controller.finalize()
        assert policy.evictions >= 1
        assert controller.stc.peek(2) is None

    def test_st_writeback_on_touched_eviction(self):
        tiny_stc = with_overrides(CONFIG, stc=STCConfig(capacity=512))
        events, controller = make_controller(config=tiny_stc)
        for group in range(0, 200):
            controller.access(0, line_of(controller, group, 1), False)
        events.run()
        st_writes = sum(c.stats.st_writes for c in controller.channels)
        assert st_writes > 0


class TestRSMIntegration:
    def test_requests_counted_by_region_type(self):
        events, controller = make_controller()
        frames = controller.allocator.allocate(0, 64)
        private = [
            f
            for f in frames
            if controller.region_map.is_private_to(
                controller.address_map.region_of_page(f), 0
            )
        ]
        shared = [
            f
            for f in frames
            if not controller.region_map.is_private_to(
                controller.address_map.region_of_page(f), 0
            )
        ]
        if private:
            controller.access(0, 2 * private[0] * 32, False)
        if shared:
            controller.access(0, 2 * shared[0] * 32, False)
        events.run()
        counters = controller.rsm.counters[0]
        assert counters.num_req_total_p == (1 if private else 0)
        assert counters.num_req_total_s == (1 if shared else 0)

    def test_private_region_swaps_not_counted(self):
        events, controller = make_controller(PromoteAlways(CONFIG))
        #

        # Find a group in program 0's private region with an M2 slot owned.
        frames = controller.allocator.allocate(0, 400)
        target = None
        for frame in frames:
            region = controller.address_map.region_of_page(frame)
            block = 2 * frame
            slot = controller.address_map.slot_of_block(block)
            if controller.region_map.is_private_to(region, 0) and slot != 0:
                target = block
                break
        if target is not None:
            controller.access(0, target * 32, False)
            events.run()
            assert controller.total_swaps == 1
            assert controller.rsm.counters[0].num_swap_total == 0
