"""MDM statistics tests: Table 6 counters, Eqs. (5)-(7), phases."""

import pytest

from repro.common.config import MDMConfig
from repro.core.mdm_stats import MDMProgramStats, Phase


def stats(phase_updates=1000, recompute_updates=100):
    return MDMProgramStats(
        MDMConfig(
            phase_updates=phase_updates, recompute_updates=recompute_updates
        )
    )


class TestEquations:
    def test_avg_cnt_eq6(self):
        s = stats()
        s.record_transition(0, 1, 3)
        s.record_transition(0, 1, 5)
        assert s.avg_cnt(1) == pytest.approx(4.0)

    def test_avg_cnt_zero_when_unseen(self):
        assert stats().avg_cnt(2) == 0.0

    def test_laplace_smoothing_eq7(self):
        s = stats()
        # No data: uniform over the 3 valid q_E values.
        assert s.transition_probability(0, 1) == pytest.approx(1 / 3)
        s.record_transition(0, 1, 3)
        # (1+1)/(1+3) and (0+1)/(1+3).
        assert s.transition_probability(0, 1) == pytest.approx(0.5)
        assert s.transition_probability(0, 2) == pytest.approx(0.25)

    def test_probabilities_sum_to_one(self):
        s = stats()
        for _ in range(5):
            s.record_transition(1, 2, 10)
        s.record_transition(1, 3, 40)
        total = sum(s.transition_probability(1, q) for q in (1, 2, 3))
        assert total == pytest.approx(1.0)

    def test_exp_cnt_eq5(self):
        s = stats(phase_updates=2, recompute_updates=1)
        s.record_transition(0, 1, 4)
        s.record_transition(0, 1, 4)  # enters estimation, recomputes
        # avg_cnt(1)=4, P(1|0)=3/5, others avg 0.
        assert s.expected(0) == pytest.approx(4 * 3 / 5)

    def test_invalid_qe_rejected(self):
        with pytest.raises(ValueError):
            stats().record_transition(0, 0, 1)

    def test_invalid_qi_rejected(self):
        with pytest.raises(ValueError):
            stats().record_transition(4, 1, 1)


class TestColdStart:
    def test_prior_is_bucket_midpoint_mean(self):
        s = stats()
        # (4.5 + 19.5 + 48) / 3 = 24.0 with default boundaries (1, 8, 32).
        expected_prior = ((1 + 8) / 2 + (8 + 32) / 2 + 1.5 * 32) / 3
        assert s.expected(0) == pytest.approx(expected_prior)

    def test_prior_uniform_over_qi(self):
        s = stats()
        assert len({s.expected(q) for q in range(4)}) == 1

    def test_recompute_without_data_keeps_registers(self):
        s = stats()
        before = s.expected(2)
        s.recompute()
        assert s.expected(2) == before


class TestPhases:
    def test_starts_in_observation(self):
        assert stats().phase is Phase.OBSERVATION

    def test_transition_to_estimation(self):
        s = stats(phase_updates=3, recompute_updates=100)
        for _ in range(3):
            s.record_transition(0, 1, 2)
        assert s.phase is Phase.ESTIMATION
        assert s.recomputations == 1  # recompute at phase entry

    def test_recompute_interval_during_estimation(self):
        s = stats(phase_updates=10, recompute_updates=2)
        for _ in range(10):
            s.record_transition(0, 1, 2)
        assert s.phase is Phase.ESTIMATION
        recomputes_at_entry = s.recomputations
        s.record_transition(0, 1, 2)
        s.record_transition(0, 1, 2)
        assert s.recomputations == recomputes_at_entry + 1

    def test_counters_reset_at_observation_start(self):
        s = stats(phase_updates=2, recompute_updates=1)
        for _ in range(4):  # full observation + full estimation
            s.record_transition(0, 1, 5)
        assert s.phase is Phase.OBSERVATION
        assert s.num_q_sum_e[0] == 0
        assert s.accum_cnt[1] == 0.0

    def test_registers_survive_reset(self):
        s = stats(phase_updates=2, recompute_updates=1)
        for _ in range(4):
            s.record_transition(0, 1, 5)
        # exp_cnt learned from the estimation phase persists.
        assert s.expected(0) == pytest.approx(5 * 5 / 7, rel=0.2)

    def test_total_updates_counts_everything(self):
        s = stats(phase_updates=2, recompute_updates=1)
        for _ in range(7):
            s.record_transition(0, 1, 1)
        assert s.total_updates == 7
