"""Table 9 / Table 10 definition tests."""

import pytest

from repro.traces.spec import PROGRAM_PROFILES
from repro.workloads.table9 import FIG5_PROGRAMS, PROGRAMS
from repro.workloads.table10 import (
    FAIRNESS_DETAIL_WORKLOADS,
    WORKLOAD_NAMES,
    WORKLOADS,
    workload,
)


class TestTable9:
    def test_ten_programs(self):
        assert len(PROGRAMS) == 10

    def test_profiles_cover_programs(self):
        assert set(PROGRAMS) == set(PROGRAM_PROFILES)

    def test_fig5_excludes_libquantum(self):
        assert "libquantum" not in FIG5_PROGRAMS
        assert len(FIG5_PROGRAMS) == 9


class TestTable10:
    def test_nineteen_workloads(self):
        assert len(WORKLOADS) == 19
        assert WORKLOAD_NAMES == tuple(f"w{i:02d}" for i in range(1, 20))

    def test_each_has_four_programs(self):
        for programs in WORKLOADS.values():
            assert len(programs) == 4

    def test_all_programs_known(self):
        for programs in WORKLOADS.values():
            for name in programs:
                assert name in PROGRAMS

    def test_paper_rows_spotcheck(self):
        assert WORKLOADS["w01"] == ("mcf", "libquantum", "leslie3d", "lbm")
        assert WORKLOADS["w09"] == ("mcf", "soplex", "lbm", "GemsFDTD")
        assert WORKLOADS["w16"] == ("libquantum", "libquantum", "bwaves", "zeusmp")
        assert WORKLOADS["w19"] == ("milc", "libquantum", "omnetpp", "leslie3d")

    def test_duplicates_preserved(self):
        assert WORKLOADS["w03"].count("lbm") == 2
        assert WORKLOADS["w17"].count("mcf") == 2
        assert WORKLOADS["w18"].count("milc") == 2

    def test_detail_workloads_are_fig2_set(self):
        assert FAIRNESS_DETAIL_WORKLOADS == ("w09", "w16", "w19")

    def test_lookup(self):
        assert workload("w05") == WORKLOADS["w05"]

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            workload("w99")
