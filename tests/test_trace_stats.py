"""Trace characterization tests, including profile validation vs Table 9."""

import pytest

from repro.cpu.trace import Trace
from repro.traces.generator import synthesize_trace
from repro.traces.spec import profile
from repro.traces.stats import (
    access_count_histogram,
    characterize,
)


def trace_of(blocks, writes=None):
    lines = [b * 32 for b in blocks]
    writes = writes or [False] * len(blocks)
    return Trace.from_records(
        [(10, line, w) for line, w in zip(lines, writes)]
    )


class TestCharacterize:
    def test_counts(self):
        c = characterize(trace_of([0, 0, 1, 2]))
        assert c.requests == 4
        assert c.distinct_blocks == 3
        assert c.mean_accesses_per_block == pytest.approx(4 / 3)

    def test_same_block_fraction(self):
        c = characterize(trace_of([0, 0, 1, 1]))
        assert c.same_block_fraction == pytest.approx(2 / 3)

    def test_top_decile_share_uniform(self):
        c = characterize(trace_of(list(range(100))))
        assert c.top_decile_access_share == pytest.approx(0.1)

    def test_top_decile_share_skewed(self):
        blocks = [0] * 90 + list(range(1, 11))
        c = characterize(trace_of(blocks))
        assert c.top_decile_access_share > 0.85

    def test_reuse_distance_simple_loop(self):
        # 0 1 2 0 1 2 ... : reuse distance is always 2.
        c = characterize(trace_of([0, 1, 2] * 30))
        assert c.median_block_reuse_distance == pytest.approx(2.0)

    def test_reuse_distance_none_for_stream(self):
        c = characterize(trace_of(list(range(200))))
        assert c.median_block_reuse_distance is None

    def test_write_fraction(self):
        c = characterize(trace_of([0, 1], writes=[True, False]))
        assert c.write_fraction == 0.5


class TestHistogram:
    def test_streaming_blocks_bucket_one(self):
        histogram = access_count_histogram(trace_of(list(range(50))))
        assert histogram[1] == 50
        assert histogram[2] == 0

    def test_hot_block_top_bucket(self):
        histogram = access_count_histogram(trace_of([7] * 40))
        assert histogram[3] == 1

    def test_custom_boundaries(self):
        histogram = access_count_histogram(
            trace_of([0] * 5), boundaries=(1, 4)
        )
        assert histogram == {1: 0, 2: 1}


class TestProfileValidation:
    """Synthetic traces must exhibit each program's published character."""

    @pytest.mark.parametrize("name", ["mcf", "omnetpp", "lbm", "bwaves"])
    def test_mpki_matches_table9(self, name):
        trace = synthesize_trace(name, 20_000, scale=64, seed=5)
        assert characterize(trace).mpki == pytest.approx(
            profile(name).mpki, rel=0.2
        )

    def test_lbm_is_write_heavy(self):
        c = characterize(synthesize_trace("lbm", 20_000, scale=64, seed=5))
        others = characterize(
            synthesize_trace("mcf", 20_000, scale=64, seed=5)
        )
        assert c.write_fraction > others.write_fraction

    def test_irregular_programs_spread_accesses_thin(self):
        # omnetpp roams widely (few accesses per block); libquantum sweeps
        # a tiny footprint over and over (many accesses per block).
        omnetpp = characterize(
            synthesize_trace("omnetpp", 20_000, scale=64, seed=5)
        )
        libquantum = characterize(
            synthesize_trace("libquantum", 20_000, scale=64, seed=5)
        )
        assert (
            omnetpp.mean_accesses_per_block
            < libquantum.mean_accesses_per_block
        )

    def test_hot_set_programs_are_skewed(self):
        zeusmp = characterize(
            synthesize_trace("zeusmp", 20_000, scale=64, seed=5)
        )
        libquantum = characterize(
            synthesize_trace("libquantum", 20_000, scale=64, seed=5)
        )
        assert (
            zeusmp.top_decile_access_share
            > libquantum.top_decile_access_share
        )

    def test_footprints_ordered_like_table9(self):
        # mcf (525 MB) touches more memory than libquantum (32 MB), whose
        # entire scaled footprint is swept within the trace.
        mcf = characterize(synthesize_trace("mcf", 30_000, scale=64, seed=5))
        libq = characterize(
            synthesize_trace("libquantum", 30_000, scale=64, seed=5)
        )
        assert mcf.footprint_bytes > libq.footprint_bytes
