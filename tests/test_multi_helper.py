"""Tests for the shared multiprogram-figure machinery (stubbed runner)."""

import pytest

from repro.exec.resilience import RunFailure
from repro.experiments.multi import normalized_figure, sweep
from repro.sim.metrics import WorkloadMetrics


class FakeSpec:
    """Just enough of a RunSpec for the sweep's failure bookkeeping."""

    def __init__(self, key):
        self.key = key

    def cache_key(self):
        return self.key


class StubRunner:
    """Returns canned WorkloadMetrics; counts calls for cache checks."""

    def __init__(self, values, failed=()):
        # values[workload][policy] -> (unfairness, weighted_speedup)
        self.values = values
        self.calls = 0
        self.prefetched = 0
        #: Workload names whose (fake) runs failed after retries.
        self.failed_workloads = set(failed)
        self.failures = [
            RunFailure(
                key=f"{name}:pom",
                label=f"multi:{name}:pom",
                error_type="ChaosError",
                message="injected",
                traceback_digest="0123456789ab",
                attempts=1,
                retryable=False,
            )
            for name in sorted(self.failed_workloads)
        ]

    def workload_metric_specs(self, name, policy, config=None):
        # Canned metrics need no simulations; one fake spec per request
        # keeps the failure bookkeeping observable.
        return [FakeSpec(f"{name}:{policy}")]

    def prefetch(self, specs):
        self.prefetched += len(specs)

    def failed_keys(self):
        return {f"{name}:pom" for name in self.failed_workloads}

    def workload_metrics(self, name, policy, config=None):
        self.calls += 1
        unfairness, speedup = self.values[name][policy]
        return WorkloadMetrics(
            policy=policy,
            program_names=("a", "b"),
            slowdowns=(unfairness, unfairness / 2),
            weighted_speedup=speedup,
            unfairness=unfairness,
            energy_efficiency=100.0,
            average_read_latency=50.0,
            swap_fraction=0.02,
        )


VALUES = {
    "w01": {"pom": (4.0, 1.0), "mdm": (3.6, 1.1)},
    "w02": {"pom": (2.0, 2.0), "mdm": (2.2, 1.9)},
}


class TestSweep:
    def test_structure(self):
        runner = StubRunner(VALUES)
        result = sweep(runner, ["pom", "mdm"], workloads=["w01", "w02"])
        assert set(result) == {"w01", "w02"}
        assert result["w01"]["mdm"].unfairness == 3.6

    def test_failed_workloads_are_omitted(self):
        runner = StubRunner(VALUES, failed=["w01"])
        result = sweep(runner, ["pom", "mdm"], workloads=["w01", "w02"])
        assert set(result) == {"w02"}
        # The failed workload's metrics were never requested.
        assert runner.calls == 2


class TestNormalizedFigure:
    def test_ratios_and_summary(self):
        runner = StubRunner(VALUES)
        result = normalized_figure(
            runner,
            "figX",
            "test figure",
            policy="mdm",
            metric=lambda m: m.unfairness,
            higher_is_better=False,
            workloads=["w01", "w02"],
        )
        ratios = {row[0]: row[3] for row in result.rows}
        assert ratios["w01"] == pytest.approx(0.9)
        assert ratios["w02"] == pytest.approx(1.1)
        assert result.summary["best_key"] == "w01"
        # geomean(0.9, 1.1) < 1: the figure shows a net improvement.
        assert result.summary["geomean"] == pytest.approx(
            (0.9 * 1.1) ** 0.5
        )

    def test_chart_in_notes(self):
        runner = StubRunner(VALUES)
        result = normalized_figure(
            runner,
            "figX",
            "test figure",
            policy="mdm",
            metric=lambda m: m.weighted_speedup,
            higher_is_better=True,
            workloads=["w01", "w02"],
        )
        assert "baseline" in result.notes
        assert "w01" in result.notes

    def test_partial_wave_renders_failed_rows(self):
        runner = StubRunner(VALUES, failed=["w01"])
        result = normalized_figure(
            runner,
            "figX",
            "test figure",
            policy="mdm",
            metric=lambda m: m.unfairness,
            higher_is_better=False,
            workloads=["w01", "w02"],
        )
        rows = {row[0]: row for row in result.rows}
        assert rows["w01"][1:] == ["FAILED", "FAILED", "-"]
        assert rows["w02"][3] == pytest.approx(1.1)
        # The summary covers only survivors; the failure table rides
        # along in the notes.
        assert result.summary["geomean"] == pytest.approx(1.1)
        assert "ChaosError" in result.notes
        assert "1 failed run(s)" in result.notes

    def test_all_failed_degrades_to_a_message(self):
        runner = StubRunner(VALUES, failed=["w01", "w02"])
        result = normalized_figure(
            runner,
            "figX",
            "test figure",
            policy="mdm",
            metric=lambda m: m.unfairness,
            higher_is_better=False,
            workloads=["w01", "w02"],
        )
        assert all(row[1] == "FAILED" for row in result.rows)
        assert "FAILED" in result.summary
        assert "ChaosError" in result.notes
