"""Tests for the shared multiprogram-figure machinery (stubbed runner)."""

import pytest

from repro.experiments.multi import normalized_figure, sweep
from repro.sim.metrics import WorkloadMetrics


class StubRunner:
    """Returns canned WorkloadMetrics; counts calls for cache checks."""

    def __init__(self, values):
        # values[workload][policy] -> (unfairness, weighted_speedup)
        self.values = values
        self.calls = 0
        self.prefetched = 0

    def workload_metric_specs(self, name, policy, config=None):
        # Canned metrics need no simulations, hence no specs to batch.
        return []

    def prefetch(self, specs):
        self.prefetched += len(specs)

    def workload_metrics(self, name, policy, config=None):
        self.calls += 1
        unfairness, speedup = self.values[name][policy]
        return WorkloadMetrics(
            policy=policy,
            program_names=("a", "b"),
            slowdowns=(unfairness, unfairness / 2),
            weighted_speedup=speedup,
            unfairness=unfairness,
            energy_efficiency=100.0,
            average_read_latency=50.0,
            swap_fraction=0.02,
        )


VALUES = {
    "w01": {"pom": (4.0, 1.0), "mdm": (3.6, 1.1)},
    "w02": {"pom": (2.0, 2.0), "mdm": (2.2, 1.9)},
}


class TestSweep:
    def test_structure(self):
        runner = StubRunner(VALUES)
        result = sweep(runner, ["pom", "mdm"], workloads=["w01", "w02"])
        assert set(result) == {"w01", "w02"}
        assert result["w01"]["mdm"].unfairness == 3.6


class TestNormalizedFigure:
    def test_ratios_and_summary(self):
        runner = StubRunner(VALUES)
        result = normalized_figure(
            runner,
            "figX",
            "test figure",
            policy="mdm",
            metric=lambda m: m.unfairness,
            higher_is_better=False,
            workloads=["w01", "w02"],
        )
        ratios = {row[0]: row[3] for row in result.rows}
        assert ratios["w01"] == pytest.approx(0.9)
        assert ratios["w02"] == pytest.approx(1.1)
        assert result.summary["best_key"] == "w01"
        # geomean(0.9, 1.1) < 1: the figure shows a net improvement.
        assert result.summary["geomean"] == pytest.approx(
            (0.9 * 1.1) ** 0.5
        )

    def test_chart_in_notes(self):
        runner = StubRunner(VALUES)
        result = normalized_figure(
            runner,
            "figX",
            "test figure",
            policy="mdm",
            metric=lambda m: m.weighted_speedup,
            higher_is_better=True,
            workloads=["w01", "w02"],
        )
        assert "baseline" in result.notes
        assert "w01" in result.notes
