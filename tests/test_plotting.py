"""ASCII chart tests."""

import pytest

from repro.analysis.plotting import hbar_chart, sparkline


class TestHBar:
    def test_plain_bars_scale_to_max(self):
        chart = hbar_chart({"a": 1.0, "b": 2.0}, width=10)
        lines = chart.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_values_printed(self):
        chart = hbar_chart({"x": 1.234}, width=10)
        assert "1.234" in chart

    def test_diverging_directions(self):
        chart = hbar_chart({"up": 1.2, "down": 0.8}, baseline=1.0, width=20)
        up_line, down_line, axis = chart.splitlines()
        # Bars above baseline sit right of the axis, below sit left.
        assert up_line.index("#") > up_line.index("|")
        assert down_line.index("#") < down_line.index("|")
        assert "baseline" in axis

    def test_baseline_value_renders_no_bar(self):
        chart = hbar_chart({"flat": 1.0}, baseline=1.0, width=20)
        assert "#" not in chart.splitlines()[0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            hbar_chart({})

    def test_labels_aligned(self):
        chart = hbar_chart({"a": 1.0, "longer": 1.0}, width=4)
        lines = chart.splitlines()
        assert lines[0].index("|") == lines[1].index("|")


class TestSparkline:
    def test_length_preserved(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_monotone_rises(self):
        line = sparkline([0, 1, 2, 3])
        assert line[0] < line[-1]

    def test_constant_is_flat(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])
