"""MemPod policy tests: MEA tracking and interval-batched migrations."""

from repro.common.config import MemPodConfig, paper_quad_core, with_overrides
from repro.common.events import EventQueue
from repro.hybrid.memory import HybridMemoryController
from repro.policies.mempod import MEATracker, MemPodPolicy

CONFIG = paper_quad_core(scale=64)


class TestMEATracker:
    def test_insert_and_increment(self):
        mea = MEATracker(4)
        mea.observe(10)
        mea.observe(10)
        assert mea.counters[10] == 2

    def test_decrement_all_when_full(self):
        mea = MEATracker(2)
        mea.observe(1)
        mea.observe(1)
        mea.observe(2)
        mea.observe(3)  # full: decrement all; 2 dies, 1 survives at 1
        assert 2 not in mea.counters
        assert mea.counters.get(1) == 1

    def test_majority_element_survives(self):
        mea = MEATracker(2)
        stream = [7] * 50 + list(range(100, 130))
        for block in stream:
            mea.observe(block)
        assert 7 in mea.counters

    def test_hottest_ordering(self):
        mea = MEATracker(8)
        for _ in range(5):
            mea.observe(1)
        for _ in range(3):
            mea.observe(2)
        mea.observe(3)
        assert mea.hottest(2) == [1, 2]

    def test_clear(self):
        mea = MEATracker(4)
        mea.observe(1)
        mea.clear()
        assert not mea.counters


class TestMemPodPolicy:
    def _driver(self, mempod_cfg=None):
        cfg = CONFIG
        if mempod_cfg is not None:
            cfg = with_overrides(CONFIG, mempod=mempod_cfg)
        events = EventQueue()
        policy = MemPodPolicy(cfg)
        controller = HybridMemoryController(cfg, events, policy)
        return events, policy, controller

    def test_write_weight_is_one(self):
        assert MemPodPolicy(CONFIG).write_weight == 1

    def test_no_migration_before_interval(self):
        events, policy, controller = self._driver()
        controller.access(0, line=32 * controller.address_map.total_groups, is_write=False)
        events.run()
        assert controller.total_swaps == 0

    def test_batched_migration_after_interval(self):
        # Shrink the interval so the test stays fast.
        events, policy, controller = self._driver(
            MemPodConfig(interval_us=0.1, mea_counters=16)
        )
        total_groups = controller.address_map.total_groups
        hot_line = 32 * total_groups + 7 * 32  # slot-1 block of group 7
        for _ in range(4):
            controller.access(0, hot_line, is_write=False)
            events.run()
        # Advance past an interval boundary and touch memory again.
        events.schedule(events.now + 2_000, lambda c: None)
        events.run()
        controller.access(0, hot_line + 1, is_write=False)
        events.run()
        assert policy.intervals >= 1
        assert controller.total_swaps >= 1

    def test_migrations_capped(self):
        cfg = MemPodConfig(
            interval_us=0.1, mea_counters=128, max_migrations_per_interval=2
        )
        events, policy, controller = self._driver(cfg)
        total_groups = controller.address_map.total_groups
        for group in range(10):
            line = 32 * total_groups + group * 32
            controller.access(0, line, is_write=False)
            events.run()
        events.schedule(events.now + 2_000, lambda c: None)
        events.run()
        assert len(policy._pending) <= 2 or policy.intervals == 0
