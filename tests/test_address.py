"""Address-map arithmetic tests (Section 2.3 / Figure 3)."""

import pytest
from hypothesis import given, strategies as st

from repro.common.config import paper_quad_core
from repro.hybrid.address import AddressMap
from repro.mem.request import Module


@pytest.fixture(scope="module")
def amap():
    return AddressMap(paper_quad_core(scale=64))


class TestBlockGroupSlot:
    def test_roundtrip(self, amap):
        for block in (0, 1, amap.total_blocks - 1, 12345):
            group = amap.group_of_block(block)
            slot = amap.slot_of_block(block)
            assert amap.block_of(group, slot) == block

    def test_slot_zero_is_first_segment(self, amap):
        assert amap.slot_of_block(0) == 0
        assert amap.slot_of_block(amap.total_groups) == 1

    def test_nine_slots(self, amap):
        last_block = amap.total_blocks - 1
        assert amap.slot_of_block(last_block) == amap.group_size - 1

    @given(st.integers(min_value=0))
    def test_roundtrip_property(self, amap, block):
        block %= amap.total_blocks
        group = amap.group_of_block(block)
        slot = amap.slot_of_block(block)
        assert 0 <= group < amap.total_groups
        assert 0 <= slot < amap.group_size
        assert amap.block_of(group, slot) == block


class TestRegions:
    def test_figure3_pattern(self, amap):
        # Groups (0, 1) -> region 0; (2, 3) -> region 1; wrap after 128.
        assert amap.region_of_group(0) == 0
        assert amap.region_of_group(1) == 0
        assert amap.region_of_group(2) == 1
        assert amap.region_of_group(3) == 1
        assert amap.region_of_group(256) == 0

    def test_page_maps_to_consecutive_groups(self, amap):
        # The two blocks of any page land in consecutive swap groups.
        for page in (0, 7, 100):
            b0, b1 = amap.blocks_of_page(page)
            g0, g1 = amap.group_of_block(b0), amap.group_of_block(b1)
            assert g1 == g0 + 1

    def test_page_blocks_share_region(self, amap):
        for page in range(0, 512, 7):
            b0, b1 = amap.blocks_of_page(page)
            r0 = amap.region_of_group(amap.group_of_block(b0))
            r1 = amap.region_of_group(amap.group_of_block(b1))
            assert r0 == r1 == amap.region_of_page(page)

    def test_page_blocks_share_segment(self, amap):
        for page in range(0, amap.total_pages, 997):
            b0, b1 = amap.blocks_of_page(page)
            assert amap.slot_of_block(b0) == amap.slot_of_block(b1)
            assert amap.segment_of_page(page) == amap.slot_of_block(b0)

    def test_all_regions_reachable(self, amap):
        regions = {
            amap.region_of_group(g) for g in range(2 * amap.num_regions)
        }
        assert regions == set(range(amap.num_regions))


class TestDeviceAddresses:
    def test_location_zero_is_m1(self, amap):
        loc = amap.data_location(0, 0)
        assert loc.address.module is Module.M1

    def test_other_locations_are_m2(self, amap):
        for location in range(1, amap.group_size):
            assert amap.data_location(5, location).address.module is Module.M2

    def test_channel_interleave(self, amap):
        assert amap.data_location(0, 0).channel == 0
        assert amap.data_location(1, 0).channel == 1
        assert amap.data_location(2, 0).channel == 0

    def test_blocks_share_rows_in_fours(self, amap):
        # blocks_per_row = 4: consecutive channel-local M1 blocks share rows.
        rows = {
            amap.data_location(g, 0).address.row
            for g in range(0, 8, 2)  # channel 0: local indices 0..3
        }
        assert len(rows) == 1

    def test_distinct_m2_blocks_distinct_addresses(self, amap):
        seen = set()
        for group in range(0, 64, 2):
            for location in range(1, amap.group_size):
                address = amap.data_location(group, location).address
                key = (address.bank, address.row)
                seen.add(key)
        # 32 groups x 8 locations / 4 blocks-per-row = 64 distinct rows.
        assert len(seen) == 64

    def test_st_rows_are_negative(self, amap):
        for group in (0, 100, amap.total_groups - 1):
            loc = amap.st_location(group)
            assert loc.address.module is Module.M1
            assert loc.address.row < 0

    def test_st_same_channel_as_group(self, amap):
        for group in (0, 1, 2, 3):
            assert amap.st_location(group).channel == amap.channel_of_group(group)

    def test_bank_in_range(self, amap):
        for group in range(0, amap.total_groups, 317):
            for location in range(amap.group_size):
                address = amap.data_location(group, location).address
                assert 0 <= address.bank < amap.banks
