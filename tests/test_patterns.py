"""Access-pattern component tests."""

import numpy as np
import pytest

from repro.common.errors import TraceError
from repro.traces.patterns import (
    ChaseComponent,
    HotSetComponent,
    LINES_PER_BLOCK,
    StreamComponent,
)


def rng():
    return np.random.default_rng(42)


class TestStream:
    def test_sequential_within_stripe(self):
        stream = StreamComponent(0, 128, write_fraction=0.0)
        lines = [stream.next_access(rng())[0] for _ in range(5)]
        assert lines == [0, 1, 2, 3, 4]

    def test_wraps_around(self):
        stream = StreamComponent(0, 32, write_fraction=0.0)
        generator = rng()
        lines = [stream.next_access(generator)[0] for _ in range(33)]
        assert lines[32] == lines[0]

    def test_start_offset(self):
        stream = StreamComponent(1000, 32, write_fraction=0.0)
        assert stream.next_access(rng())[0] == 1000

    def test_touches_per_line(self):
        stream = StreamComponent(0, 64, 0.0, touches_per_line=2)
        generator = rng()
        lines = [stream.next_access(generator)[0] for _ in range(4)]
        assert lines == [0, 0, 1, 1]

    def test_multiple_streams_interleave(self):
        stream = StreamComponent(0, 128, 0.0, num_streams=2)
        generator = rng()
        lines = [stream.next_access(generator)[0] for _ in range(4)]
        assert lines == [0, 64, 1, 65]

    def test_write_fraction_respected(self):
        stream = StreamComponent(0, 64, write_fraction=1.0)
        assert stream.next_access(rng())[1] is True

    def test_stays_in_range(self):
        stream = StreamComponent(64, 96, 0.5, num_streams=3)
        generator = rng()
        for _ in range(500):
            line, _ = stream.next_access(generator)
            assert 64 <= line < 64 + 96

    def test_rejects_tiny_range(self):
        with pytest.raises(TraceError):
            StreamComponent(0, 16, 0.0)

    def test_rejects_bad_write_fraction(self):
        with pytest.raises(TraceError):
            StreamComponent(0, 64, 1.5)


class TestHotSet:
    def test_zipf_concentrates_on_few_blocks(self):
        hot = HotSetComponent(0, 256 * LINES_PER_BLOCK, 0.0, zipf_s=1.2)
        generator = rng()
        blocks = [
            hot.next_access(generator)[0] // LINES_PER_BLOCK
            for _ in range(4000)
        ]
        counts = np.bincount(blocks, minlength=256)
        top_share = np.sort(counts)[::-1][:16].sum() / 4000
        assert top_share > 0.4  # top 1/16 of blocks get >40% of accesses

    def test_episodes_are_block_local(self):
        hot = HotSetComponent(
            0, 64 * LINES_PER_BLOCK, 0.0, episode_length=1000
        )
        generator = rng()
        blocks = {
            hot.next_access(generator)[0] // LINES_PER_BLOCK
            for _ in range(20)
        }
        assert len(blocks) <= 2  # one long episode spans one block

    def test_stays_in_range(self):
        hot = HotSetComponent(320, 10 * LINES_PER_BLOCK, 0.3)
        generator = rng()
        for _ in range(1000):
            line, _ = hot.next_access(generator)
            assert 320 <= line < 320 + 10 * LINES_PER_BLOCK


class TestChase:
    def test_episode_lengths_short(self):
        chase = ChaseComponent(
            0, 512 * LINES_PER_BLOCK, 0.0, episode_length=1
        )
        generator = rng()
        blocks = [
            chase.next_access(generator)[0] // LINES_PER_BLOCK
            for _ in range(200)
        ]
        distinct = len(set(blocks))
        assert distinct > 50  # single-touch visits roam widely

    def test_window_locality(self):
        chase = ChaseComponent(
            0,
            4096 * LINES_PER_BLOCK,
            0.0,
            window_blocks=8,
            jump_probability=0.0,
        )
        generator = rng()
        blocks = [
            chase.next_access(generator)[0] // LINES_PER_BLOCK
            for _ in range(100)
        ]
        steps = [abs(b - a) for a, b in zip(blocks, blocks[1:])]
        assert max(steps) <= 8

    def test_jumps_break_locality(self):
        chase = ChaseComponent(
            0,
            4096 * LINES_PER_BLOCK,
            0.0,
            window_blocks=4,
            jump_probability=1.0,
            episode_length=1,
        )
        generator = rng()
        blocks = [
            chase.next_access(generator)[0] // LINES_PER_BLOCK
            for _ in range(100)
        ]
        steps = [abs(b - a) for a, b in zip(blocks, blocks[1:])]
        assert max(steps) > 64

    def test_stays_in_range(self):
        chase = ChaseComponent(128, 20 * LINES_PER_BLOCK, 0.2)
        generator = rng()
        for _ in range(1000):
            line, _ = chase.next_access(generator)
            assert 128 <= line < 128 + 20 * LINES_PER_BLOCK
