"""ST entry and Swap-group Table tests."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import SimulationError
from repro.hybrid.st import SwapGroupTable
from repro.hybrid.st_entry import STEntry


class TestSTEntry:
    def test_identity_at_start(self):
        entry = STEntry(9)
        assert entry.is_identity()
        assert entry.m1_slot == 0
        for slot in range(9):
            assert entry.location_of(slot) == slot

    def test_swap_exchanges_locations(self):
        entry = STEntry(9)
        entry.swap(0, 5)
        assert entry.location_of(5) == 0
        assert entry.location_of(0) == 5
        assert entry.m1_slot == 5
        assert not entry.is_identity()

    def test_swap_back_restores_identity(self):
        entry = STEntry(9)
        entry.swap(0, 5)
        entry.swap(5, 0)
        assert entry.is_identity()

    def test_is_in_m1(self):
        entry = STEntry(9)
        assert entry.is_in_m1(0)
        entry.swap(0, 3)
        assert entry.is_in_m1(3)
        assert not entry.is_in_m1(0)

    def test_swap_same_slot_rejected(self):
        with pytest.raises(SimulationError):
            STEntry(9).swap(2, 2)

    def test_qac_defaults_zero(self):
        assert STEntry(9).qac == [0] * 9

    def test_m1_owner_default_none(self):
        assert STEntry(9).m1_owner is None

    @given(st.lists(st.tuples(st.integers(0, 8), st.integers(0, 8)), max_size=50))
    def test_permutation_invariant(self, swaps):
        entry = STEntry(9)
        for a, b in swaps:
            if a != b:
                entry.swap(a, b)
        # loc_of_slot and slot_of_loc stay mutually inverse permutations.
        assert sorted(entry.loc_of_slot) == list(range(9))
        assert sorted(entry.slot_of_loc) == list(range(9))
        for slot in range(9):
            assert entry.slot_at(entry.location_of(slot)) == slot


class TestSwapGroupTable:
    def test_lazy_materialization(self):
        table = SwapGroupTable(100, 9)
        assert len(table) == 0
        table.entry(5)
        assert len(table) == 1
        assert table.touched_groups() == [5]

    def test_same_object_returned(self):
        table = SwapGroupTable(100, 9)
        assert table.entry(5) is table.entry(5)

    def test_out_of_range(self):
        table = SwapGroupTable(100, 9)
        with pytest.raises(IndexError):
            table.entry(100)
        with pytest.raises(IndexError):
            table.entry(-1)

    def test_migrated_groups(self):
        table = SwapGroupTable(100, 9)
        table.entry(1)
        table.entry(2).swap(0, 4)
        assert table.migrated_groups() == [2]
