"""ProFess integration tests: the Table 7 decision cases."""

import pytest

from repro.cache.stc import STCEntry
from repro.common.config import paper_quad_core
from repro.core.profess import ProFessPolicy
from repro.hybrid.st_entry import STEntry
from repro.policies.base import AccessContext

CONFIG = paper_quad_core(scale=64)


class FakeRSM:
    def __init__(self, sf_a, sf_b):
        self.sf_a = sf_a
        self.sf_b = sf_b


class FakeController:
    def __init__(self, rsm, owners=None):
        self.rsm = rsm
        self._owners = owners or {}

    def owner_of_slot(self, group, slot):
        return self._owners.get((group, slot), 0)


def make_ctx(owner=1, m1_owner=0, count_m2=1, count_m1=0):
    st_entry = STEntry(9)
    st_entry.m1_owner = m1_owner
    stc_entry = STCEntry(group=3, qac_at_insert=(0,) * 9)
    stc_entry.counters[4] = count_m2
    stc_entry.counters[0] = count_m1
    return AccessContext(
        core_id=owner,
        group=3,
        slot=4,
        location=4,
        is_write=False,
        owner=owner,
        m1_owner=m1_owner,
        st_entry=st_entry,
        stc_entry=stc_entry,
        now=0,
    )


def make_policy(sf_a, sf_b, benefit=True):
    policy = ProFessPolicy(CONFIG)
    policy.bind(FakeController(FakeRSM(sf_a, sf_b)))
    # Force a clear benefit (or lack of one) for the M2 block.
    value = 100.0 if benefit else 0.0
    for program in (0, 1):
        policy.stats_for(program).exp_cnt[0] = value
    return policy


class TestCase1:
    def test_helps_suffering_m2_program(self):
        # Program 1 (M2 block's owner) suffers more by both factors.
        policy = make_policy(sf_a=[1.0, 2.0], sf_b=[1.0, 3.0])
        assert policy.on_access(make_ctx()) == 4
        assert policy.case_counts[1] == 1

    def test_case1_ignores_m1_resident_value(self):
        # Even a heavily used M1 block is ignored ("consider M1 vacant").
        policy = make_policy(sf_a=[1.0, 2.0], sf_b=[1.0, 3.0])
        ctx = make_ctx(count_m1=50)
        assert policy.on_access(ctx) == 4

    def test_case1_still_requires_mdm_benefit(self):
        policy = make_policy(sf_a=[1.0, 2.0], sf_b=[1.0, 3.0], benefit=False)
        assert policy.on_access(make_ctx()) is None
        assert policy.case_counts[1] == 1  # case evaluated, MDM said no


class TestCase2:
    def test_protects_suffering_m1_program(self):
        # Program 0 (M1 resident's owner) suffers more by both factors.
        policy = make_policy(sf_a=[2.0, 1.0], sf_b=[3.0, 1.0])
        assert policy.on_access(make_ctx()) is None
        assert policy.case_counts[2] == 1


class TestCase3:
    def test_product_rule_prohibits(self):
        # SF_A says c_M2 suffers, SF_B says c_M1 does; products favour c_M1.
        policy = make_policy(sf_a=[1.0, 1.2], sf_b=[5.0, 1.0])
        # products: 5.0 vs 1.2 * 1.0625 -> protect M1.
        assert policy.on_access(make_ctx()) is None
        assert policy.case_counts[3] == 1

    def test_product_rule_falls_through_when_products_close(self):
        policy = make_policy(sf_a=[1.0, 4.0], sf_b=[1.2, 1.0])
        # a_says_m2 (1 * 1.03 < 4) and b_says_m1 (1.2 > 1.03) but
        # products 1.2 < 4.0: fall through to plain MDM -> swap.
        assert policy.on_access(make_ctx()) == 4
        assert policy.case_counts["default"] == 1


class TestHysteresis:
    def test_similar_sfs_use_plain_mdm(self):
        # Differences below the ~3% threshold never trigger a case.
        policy = make_policy(sf_a=[1.0, 1.01], sf_b=[1.0, 1.01])
        assert policy.on_access(make_ctx()) == 4
        assert policy.case_counts["default"] == 1

    def test_threshold_factor_value(self):
        assert CONFIG.profess.sf_factor == pytest.approx(1.03125)


class TestFallbacks:
    def test_same_owner_uses_mdm(self):
        policy = make_policy(sf_a=[1.0, 9.0], sf_b=[1.0, 9.0])
        ctx = make_ctx(owner=0, m1_owner=0)
        assert policy.on_access(ctx) == 4
        assert policy.case_counts["same"] == 1

    def test_vacant_m1_uses_mdm_case_a(self):
        policy = make_policy(sf_a=[9.0, 1.0], sf_b=[9.0, 1.0])
        ctx = make_ctx(m1_owner=None)
        assert policy.on_access(ctx) == 4

    def test_rsm_not_ready_uses_mdm(self):
        policy = make_policy(sf_a=[None, None], sf_b=[None, None])
        assert policy.on_access(make_ctx()) == 4
        assert policy.case_counts["default"] == 1

    def test_m1_access_never_swaps(self):
        policy = make_policy(sf_a=[1.0, 2.0], sf_b=[1.0, 2.0])
        ctx = make_ctx()
        ctx.location = 0
        assert policy.on_access(ctx) is None
