"""MDM migration-decision tests (Section 3.2.3 cases a, b, c.i, c.ii)."""

import pytest

from repro.cache.stc import STCEntry
from repro.common.config import paper_quad_core
from repro.core.mdm import MDMPolicy
from repro.hybrid.st_entry import STEntry
from repro.policies.base import AccessContext

CONFIG = paper_quad_core(scale=64)


class FakeController:
    """Just enough controller for policy unit tests."""

    def __init__(self, owners=None, rsm=None):
        self._owners = owners or {}
        self.rsm = rsm

    def owner_of_slot(self, group, slot):
        return self._owners.get((group, slot), 0)


def make_ctx(
    slot=3,
    location=3,
    owner=0,
    m1_owner=0,
    counters=None,
    qac=None,
    m1_slot_swapped_to=None,
):
    st_entry = STEntry(9)
    if m1_slot_swapped_to is not None:
        st_entry.swap(0, m1_slot_swapped_to)
    st_entry.m1_owner = m1_owner
    stc_entry = STCEntry(group=7, qac_at_insert=tuple(qac or [0] * 9))
    if counters:
        for s, value in counters.items():
            stc_entry.counters[s] = value
    return AccessContext(
        core_id=owner if owner is not None else 0,
        group=7,
        slot=slot,
        location=location,
        is_write=False,
        owner=owner,
        m1_owner=m1_owner,
        st_entry=st_entry,
        stc_entry=stc_entry,
        now=0,
    )


def make_policy(owners=None, exp=None):
    """Policy with per-(program, q_I) expected counts forced via stats."""
    policy = MDMPolicy(CONFIG)
    policy.bind(FakeController(owners))
    if exp:
        for (program, q_i), value in exp.items():
            policy.stats_for(program).exp_cnt[q_i] = value
    return policy


class TestTopLevelCondition:
    def test_m1_access_never_swaps(self):
        policy = make_policy()
        assert policy.on_access(make_ctx(slot=0, location=0)) is None

    def test_low_remaining_no_swap(self):
        policy = make_policy(exp={(0, 0): 5.0})  # rem = 5 - 1 < 8
        ctx = make_ctx(counters={3: 1})
        assert policy.on_access(ctx) is None

    def test_unowned_block_never_promoted(self):
        policy = make_policy(exp={(0, 0): 100.0})
        ctx = make_ctx(owner=None, counters={3: 1})
        assert policy.on_access(ctx) is None


class TestCaseA:
    def test_vacant_m1_promotes_on_benefit(self):
        policy = make_policy(exp={(0, 0): 20.0})
        ctx = make_ctx(m1_owner=None, counters={3: 1})
        assert policy.on_access(ctx) == 3

    def test_vacant_m1_still_requires_benefit(self):
        policy = make_policy(exp={(0, 0): 6.0})
        ctx = make_ctx(m1_owner=None, counters={3: 1})
        assert policy.on_access(ctx) is None


class TestCaseB:
    def test_idle_m1_with_active_group_promotes(self):
        policy = make_policy(exp={(0, 0): 20.0})
        # M1 resident (slot 0) untouched; accessed M2 block has count 1.
        ctx = make_ctx(counters={3: 1})
        assert policy.on_access(ctx) == 3


class TestCaseC:
    def test_ci_promotes_when_m1_exhausted(self):
        # M1 resident predicted to have nothing left: rem_m1 <= 0.
        policy = make_policy(exp={(0, 0): 20.0, (1, 2): 4.0})
        owners = {(7, 0): 1, (7, 3): 0}
        policy.bind(FakeController(owners))
        ctx = make_ctx(
            owner=0,
            m1_owner=1,
            counters={3: 1, 0: 10},  # m1 count 10 > exp 4 -> rem <= 0
            qac=[2, 0, 0, 0, 0, 0, 0, 0, 0],
        )
        assert policy.on_access(ctx) == 3

    def test_cii_requires_difference_above_min_benefit(self):
        policy = make_policy(exp={(0, 0): 30.0, (1, 2): 25.0})
        ctx = make_ctx(
            m1_owner=1,
            counters={3: 1, 0: 2},
            qac=[2, 0, 0, 0, 0, 0, 0, 0, 0],
        )
        # rem_m2 = 29, rem_m1 = 23; difference 6 < 8: no swap.
        assert policy.on_access(ctx) is None

    def test_cii_promotes_on_large_difference(self):
        policy = make_policy(exp={(0, 0): 40.0, (1, 2): 12.0})
        ctx = make_ctx(
            m1_owner=1,
            counters={3: 1, 0: 2},
            qac=[2, 0, 0, 0, 0, 0, 0, 0, 0],
        )
        # rem_m2 = 39, rem_m1 = 10; difference 29 >= 8: swap.
        assert policy.on_access(ctx) == 3


class TestStatistics:
    def test_eviction_records_transitions(self):
        policy = make_policy()
        st_entry = STEntry(9)
        stc_entry = STCEntry(group=7, qac_at_insert=(0,) * 9)
        stc_entry.counters[2] = 5
        stc_entry.counters[4] = 40
        policy.on_st_eviction(stc_entry, st_entry)
        stats = policy.stats_for(0)
        assert stats.total_updates == 2
        assert stats.num_q[0][1] == 1  # count 5 -> q_E 1
        assert stats.num_q[0][3] == 1  # count 40 -> q_E 3

    def test_eviction_writes_back_qac(self):
        policy = make_policy()
        st_entry = STEntry(9)
        stc_entry = STCEntry(group=7, qac_at_insert=(0,) * 9)
        stc_entry.counters[2] = 9
        policy.on_st_eviction(stc_entry, st_entry)
        assert st_entry.qac[2] == 2  # 9 accesses -> QAC 2

    def test_untouched_blocks_keep_qac(self):
        policy = make_policy()
        st_entry = STEntry(9)
        st_entry.qac[5] = 3
        stc_entry = STCEntry(group=7, qac_at_insert=tuple(st_entry.qac))
        policy.on_st_eviction(stc_entry, st_entry)
        assert st_entry.qac[5] == 3
        assert policy.stats_for(0).total_updates == 0

    def test_per_program_stats_separate(self):
        owners = {(7, 1): 0, (7, 2): 1}
        policy = make_policy(owners=owners)
        st_entry = STEntry(9)
        stc_entry = STCEntry(group=7, qac_at_insert=(0,) * 9)
        stc_entry.counters[1] = 3
        stc_entry.counters[2] = 3
        policy.on_st_eviction(stc_entry, st_entry)
        assert policy.stats_for(0).total_updates == 1
        assert policy.stats_for(1).total_updates == 1

    def test_remaining_count_eq8(self):
        policy = make_policy(exp={(0, 2): 25.0})
        assert policy.remaining_count(0, 2, 10) == pytest.approx(15.0)

    def test_write_weight_from_config(self):
        policy = make_policy()
        assert policy.write_weight == CONFIG.write_access_weight == 8
        assert policy.access_weight(True) == 8
        assert policy.access_weight(False) == 1


class TestAblatedBoundaries:
    def test_subthreshold_count_keeps_qac(self):
        """Boundaries starting above 1 must not emit invalid q_E = 0."""
        from dataclasses import replace as _replace

        config = _replace(
            CONFIG, mdm=_replace(CONFIG.mdm, qac_boundaries=(2, 16, 48))
        )
        policy = MDMPolicy(config)
        policy.bind(FakeController())
        st_entry = STEntry(9)
        st_entry.qac[2] = 1
        stc_entry = STCEntry(group=7, qac_at_insert=tuple(st_entry.qac))
        stc_entry.counters[2] = 1  # touched, but below the first bucket
        policy.on_st_eviction(stc_entry, st_entry)
        assert st_entry.qac[2] == 1  # unchanged
        assert policy.stats_for(0).total_updates == 0
