"""QAC quantization tests (Table 5)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.qac import bucket_midpoint, quantize_access_count


class TestTable5:
    @pytest.mark.parametrize(
        "count, expected",
        [
            (0, 0),
            (1, 1),
            (7, 1),
            (8, 2),
            (31, 2),
            (32, 3),
            (63, 3),
            (1000, 3),
        ],
    )
    def test_default_buckets(self, count, expected):
        assert quantize_access_count(count) == expected

    def test_custom_boundaries(self):
        assert quantize_access_count(5, boundaries=(2, 6)) == 1
        assert quantize_access_count(6, boundaries=(2, 6)) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            quantize_access_count(-1)

    @given(st.integers(min_value=0, max_value=10_000))
    def test_monotone(self, count):
        assert quantize_access_count(count) <= quantize_access_count(count + 1)

    @given(st.integers(min_value=0, max_value=10_000))
    def test_in_range(self, count):
        assert 0 <= quantize_access_count(count) <= 3

    @given(st.integers(min_value=1, max_value=3))
    def test_midpoint_lands_in_its_bucket(self, value):
        mid = bucket_midpoint(value)
        assert quantize_access_count(int(mid)) == value

    def test_midpoint_rejects_zero(self):
        with pytest.raises(ValueError):
            bucket_midpoint(0)
