"""Experiment runner/registry tests (small scale to stay fast)."""

import pytest

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.runner import ExperimentRunner


@pytest.fixture(scope="module")
def runner():
    # Tiny but complete runs: enough requests to exercise every path.
    return ExperimentRunner(
        scale=128, multi_requests=2500, single_requests=2500, seed=0
    )


class TestRunnerCaching:
    def test_single_run_cached(self, runner):
        first = runner.run_single("zeusmp", "static")
        second = runner.run_single("zeusmp", "static")
        assert first is second

    def test_different_policy_not_cached(self, runner):
        a = runner.run_single("zeusmp", "static")
        b = runner.run_single("zeusmp", "pom")
        assert a is not b

    def test_workload_traces_seed_instances(self, runner):
        traces = runner.workload_traces(["lbm", "lbm"])
        assert (traces[0][1].lines != traces[1][1].lines).any()

    def test_configs_scaled(self, runner):
        assert runner.quad_config().scale == 128
        assert runner.single_config().num_cores == 1


class TestWorkloadMetrics:
    def test_w16_metrics_complete(self, runner):
        metrics = runner.workload_metrics("w16", "pom")
        assert len(metrics.slowdowns) == 4
        assert metrics.unfairness == max(metrics.slowdowns)
        assert metrics.weighted_speedup > 0
        assert all(s >= 1.0 or s > 0 for s in metrics.slowdowns)

    def test_slowdowns_indicate_contention(self, runner):
        metrics = runner.workload_metrics("w16", "pom")
        # Four co-runners on a shared memory: everyone slows down.
        assert min(metrics.slowdowns) > 1.0


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        for artifact in (
            "table1",
            "fig2",
            "table4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "fig16",
            "sens-twr",
            "sens-ratio",
            "mempod-vs-pom",
        ):
            assert artifact in EXPERIMENTS

    def test_unknown_experiment(self, runner):
        with pytest.raises(KeyError):
            run_experiment("fig99", runner)

    def test_table1_runs(self, runner):
        result = run_experiment("table1", runner)
        assert isinstance(result, ExperimentResult)
        assert all(
            value is True
            for key, value in result.summary.items()
            if isinstance(value, bool)
        )

    def test_render_contains_title(self, runner):
        result = run_experiment("table1", runner)
        assert "table1" in result.render()


class TestSmallDrivers:
    """End-to-end driver runs at tiny scale (shape, not magnitude)."""

    def test_fig7_runs(self, runner):
        result = run_experiment("fig7", runner)
        assert len(result.rows) == 9
        for _program, rate in result.rows:
            assert 0 <= rate <= 100

    def test_fig5_runs(self, runner):
        result = run_experiment("fig5", runner)
        assert len(result.rows) == 9
        assert "geomean" in result.summary

    def test_fig2_runs(self, runner):
        result = run_experiment("fig2", runner)
        assert len(result.rows) == 12  # 3 workloads x 4 programs
        for _w, _p, sdn in result.rows:
            assert sdn > 0
