"""PoM policy tests: competing counters, epochs, prohibit mode."""


from repro.cache.stc import STCEntry
from repro.common.config import PoMConfig, paper_quad_core, with_overrides
from repro.hybrid.st_entry import STEntry
from repro.policies.base import AccessContext
from repro.policies.pom import CompetingCounter, PoMPolicy

CONFIG = paper_quad_core(scale=64)


def make_ctx(slot=2, location=2, is_write=False, group=1):
    # group=1 avoids the shadow-sample stride by default.
    st_entry = STEntry(9)
    st_entry.m1_owner = 0
    stc_entry = STCEntry(group=group, qac_at_insert=(0,) * 9)
    return AccessContext(
        core_id=0,
        group=group,
        slot=slot,
        location=location,
        is_write=is_write,
        owner=0,
        m1_owner=0,
        st_entry=st_entry,
        stc_entry=stc_entry,
        now=0,
    )


class TestCompetingCounter:
    def test_tracks_candidate(self):
        c = CompetingCounter()
        c.observe_m2(3, 2, maximum=63)
        assert c.candidate == 3
        assert c.value == 2

    def test_competition_replaces_candidate(self):
        c = CompetingCounter()
        c.observe_m2(3, 1, 63)
        c.observe_m2(4, 2, 63)  # 3's counter drops to -1 -> replace
        assert c.candidate == 4
        assert c.value == 2

    def test_m1_access_decrements(self):
        c = CompetingCounter()
        c.observe_m2(3, 5, 63)
        c.observe_m1(3)
        assert c.value == 2
        c.observe_m1(10)
        assert c.value == 0

    def test_saturation(self):
        c = CompetingCounter()
        c.observe_m2(1, 100, maximum=63)
        assert c.value == 63

    def test_reset(self):
        c = CompetingCounter()
        c.observe_m2(1, 5, 63)
        c.reset()
        assert c.candidate == -1
        assert c.value == 0


class TestDecisions:
    def test_swaps_at_threshold(self):
        policy = PoMPolicy(CONFIG)
        policy.threshold = 6
        for _ in range(5):
            assert policy.on_access(make_ctx()) is None
        assert policy.on_access(make_ctx()) == 2

    def test_write_counts_as_eight(self):
        policy = PoMPolicy(CONFIG)
        policy.threshold = 6
        assert policy.on_access(make_ctx(is_write=True)) == 2

    def test_prohibited_never_swaps(self):
        policy = PoMPolicy(CONFIG)
        policy.threshold = None
        for _ in range(100):
            assert policy.on_access(make_ctx()) is None

    def test_m1_accesses_defend_resident(self):
        policy = PoMPolicy(CONFIG)
        policy.threshold = 6
        for _ in range(5):
            policy.on_access(make_ctx())
        policy.on_access(make_ctx(slot=0, location=0))  # -1
        assert policy.on_access(make_ctx()) is None  # back to 5 < 6... then 6
        assert policy.on_access(make_ctx()) == 2

    def test_swap_resets_group_counter(self):
        policy = PoMPolicy(CONFIG)
        policy.threshold = 1
        assert policy.on_access(make_ctx()) == 2
        policy.on_swap(1, 2, 0)
        counter = policy._counter_for(1)
        assert counter.value == 0


class TestEpochs:
    def test_epoch_rolls_after_configured_requests(self):
        cfg = with_overrides(CONFIG, pom=PoMConfig(epoch_requests=10))
        policy = PoMPolicy(cfg)
        for _ in range(10):
            policy.on_access(make_ctx())
        assert policy.epochs == 1
        assert len(policy.threshold_history) == 1

    def test_no_benefit_prohibits(self):
        cfg = with_overrides(CONFIG, pom=PoMConfig(epoch_requests=50))
        policy = PoMPolicy(cfg)
        # Sampled group 0: single-touch M2 accesses to distinct slots;
        # shadow promotions never pay off.
        for index in range(50):
            slot = 1 + (index % 8)
            policy.on_access(make_ctx(slot=slot, location=slot, group=0))
        assert policy.threshold is None
        assert policy.prohibited_epochs == 1

    def test_hot_block_benefit_selects_low_threshold(self):
        cfg = with_overrides(CONFIG, pom=PoMConfig(epoch_requests=64))
        policy = PoMPolicy(cfg)
        # Sampled group 0: hammer one M2 block; promoting early pays.
        for _ in range(64):
            policy.on_access(make_ctx(slot=3, location=3, group=0))
        assert policy.threshold == 1

    def test_shadow_state_cleared_between_epochs(self):
        cfg = with_overrides(CONFIG, pom=PoMConfig(epoch_requests=8))
        policy = PoMPolicy(cfg)
        for _ in range(8):
            policy.on_access(make_ctx(group=0, slot=3, location=3))
        assert not policy._shadows
