"""Energy-meter tests (requests/s/W of Section 4.3)."""

import pytest

from repro.common.config import EnergyConfig
from repro.mem.power import EnergyMeter
from repro.mem.request import Module


def meter(channels=2):
    return EnergyMeter(EnergyConfig(), num_channels=channels)


class TestAccounting:
    def test_dynamic_energy_sums_events(self):
        m = meter()
        m.record_activate(Module.M1)
        m.record_line(Module.M1, is_write=False)
        cfg = EnergyConfig()
        assert m.dynamic_energy_nj() == pytest.approx(
            cfg.m1_activate_nj + cfg.m1_read_line_nj
        )

    def test_nvm_writes_cost_more(self):
        cfg = EnergyConfig()
        assert cfg.m2_write_line_nj > 5 * cfg.m1_write_line_nj

    def test_line_count_batches(self):
        m = meter()
        m.record_line(Module.M2, is_write=True, count=32)
        assert m.line_writes[Module.M2] == 32

    def test_background_scales_with_time_and_channels(self):
        one = meter(channels=1)
        two = meter(channels=2)
        cycles = 3_200_000  # 1 ms at 3.2 GHz
        assert two.background_energy_nj(cycles) == pytest.approx(
            2 * one.background_energy_nj(cycles)
        )

    def test_background_magnitude(self):
        m = meter(channels=1)
        cycles = 3_200_000  # 1 ms
        # 180 mW for 1 ms = 180 uJ = 180_000 nJ.
        assert m.background_energy_nj(cycles) == pytest.approx(180_000, rel=0.01)

    def test_total_energy_joules(self):
        m = meter(channels=1)
        m.record_activate(Module.M1)
        joules = m.total_energy_j(3_200_000)
        assert joules > 0

    def test_efficiency_requests_per_joule(self):
        m = meter(channels=1)
        m.record_served_request(1000)
        cycles = 3_200_000
        expected = 1000 / m.total_energy_j(cycles)
        assert m.efficiency_requests_per_joule(cycles) == pytest.approx(expected)

    def test_efficiency_zero_when_no_time(self):
        assert meter().efficiency_requests_per_joule(0) == 0.0
