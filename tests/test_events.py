"""Event-queue tests: ordering, determinism, error paths."""

import pytest

from repro.common.errors import SimulationError
from repro.common.events import EventQueue


class TestOrdering:
    def test_fires_in_time_order(self):
        q = EventQueue()
        log = []
        q.schedule(10, lambda c: log.append(("b", c)))
        q.schedule(5, lambda c: log.append(("a", c)))
        q.run()
        assert log == [("a", 5), ("b", 10)]

    def test_same_cycle_insertion_order(self):
        q = EventQueue()
        log = []
        for tag in "abc":
            q.schedule(3, lambda c, t=tag: log.append(t))
        q.run()
        assert log == ["a", "b", "c"]

    def test_now_advances(self):
        q = EventQueue()
        seen = []
        q.schedule(7, lambda c: seen.append(q.now))
        q.run()
        assert seen == [7]

    def test_schedule_after(self):
        q = EventQueue()
        log = []
        q.schedule(4, lambda c: q.schedule_after(3, lambda c2: log.append(c2)))
        q.run()
        assert log == [7]

    def test_events_can_schedule_same_cycle(self):
        q = EventQueue()
        log = []

        def first(c):
            q.schedule(c, lambda c2: log.append("second"))
            log.append("first")

        q.schedule(1, first)
        q.run()
        assert log == ["first", "second"]


class TestErrors:
    def test_cannot_schedule_in_past(self):
        q = EventQueue()
        q.schedule(10, lambda c: None)
        q.step()
        with pytest.raises(SimulationError):
            q.schedule(5, lambda c: None)

    def test_step_on_empty_returns_false(self):
        assert EventQueue().step() is False


class TestRun:
    def test_run_returns_count(self):
        q = EventQueue()
        for i in range(5):
            q.schedule(i, lambda c: None)
        assert q.run() == 5

    def test_run_bounded(self):
        q = EventQueue()
        for i in range(5):
            q.schedule(i, lambda c: None)
        assert q.run(max_events=2) == 2
        assert len(q) == 3

    def test_len(self):
        q = EventQueue()
        q.schedule(1, lambda c: None)
        assert len(q) == 1
