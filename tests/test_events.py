"""Event-queue tests: ordering, determinism, error paths."""

import heapq
import random

import pytest

from repro.common.errors import SimulationError
from repro.common.events import EventQueue


class TestOrdering:
    def test_fires_in_time_order(self):
        q = EventQueue()
        log = []
        q.schedule(10, lambda c: log.append(("b", c)))
        q.schedule(5, lambda c: log.append(("a", c)))
        q.run()
        assert log == [("a", 5), ("b", 10)]

    def test_same_cycle_insertion_order(self):
        q = EventQueue()
        log = []
        for tag in "abc":
            q.schedule(3, lambda c, t=tag: log.append(t))
        q.run()
        assert log == ["a", "b", "c"]

    def test_now_advances(self):
        q = EventQueue()
        seen = []
        q.schedule(7, lambda c: seen.append(q.now))
        q.run()
        assert seen == [7]

    def test_schedule_after(self):
        q = EventQueue()
        log = []
        q.schedule(4, lambda c: q.schedule_after(3, lambda c2: log.append(c2)))
        q.run()
        assert log == [7]

    def test_events_can_schedule_same_cycle(self):
        q = EventQueue()
        log = []

        def first(c):
            q.schedule(c, lambda c2: log.append("second"))
            log.append("first")

        q.schedule(1, first)
        q.run()
        assert log == ["first", "second"]


class TestErrors:
    def test_cannot_schedule_in_past(self):
        q = EventQueue()
        q.schedule(10, lambda c: None)
        q.step()
        with pytest.raises(SimulationError):
            q.schedule(5, lambda c: None)

    def test_step_on_empty_returns_false(self):
        assert EventQueue().step() is False


class TestRun:
    def test_run_returns_count(self):
        q = EventQueue()
        for i in range(5):
            q.schedule(i, lambda c: None)
        assert q.run() == 5

    def test_run_raises_when_budget_hit(self):
        # max_events is a runaway guard, not a pause button: hitting the
        # ceiling with work still queued is an error, never a truncation.
        q = EventQueue()
        for i in range(5):
            q.schedule(i, lambda c: None)
        with pytest.raises(SimulationError, match="event budget"):
            q.run(max_events=2)
        assert len(q) == 3  # unprocessed events stay queued

    def test_run_exact_budget_completes(self):
        q = EventQueue()
        for i in range(5):
            q.schedule(i, lambda c: None)
        assert q.run(max_events=5) == 5

    def test_run_stop_after_cycle(self):
        q = EventQueue()
        fired = []
        for cycle in (1, 2, 8):
            q.schedule(cycle, lambda c: fired.append(c))
        assert q.run(stop_after_cycle=5) == 3
        # The first event past the cutoff still runs; control then
        # returns with the queue state intact.
        assert fired == [1, 2, 8]
        assert len(q) == 0

    def test_len(self):
        q = EventQueue()
        q.schedule(1, lambda c: None)
        assert len(q) == 1


class _ReferenceHeapQueue:
    """Textbook (cycle, seq) min-heap scheduler with no fast lane.

    This is the semantics the optimized EventQueue must preserve: events
    fire in cycle order, ties broken by insertion order, globally.
    """

    def __init__(self):
        self._heap = []
        self._seq = 0
        self.now = 0

    def schedule(self, cycle, callback):
        assert cycle >= self.now
        heapq.heappush(self._heap, (cycle, self._seq, callback))
        self._seq += 1

    def run(self):
        count = 0
        while self._heap:
            cycle, _seq, callback = heapq.heappop(self._heap)
            self.now = cycle
            callback(cycle)
            count += 1
        return count


class TestFifoLaneProperty:
    """The same-cycle FIFO fast lane is observationally invisible.

    Property: for any workload of events — including callbacks that
    spawn more work at the current cycle mid-drain — the firing order of
    EventQueue is identical to the reference single-heap scheduler.
    """

    @staticmethod
    def _workload(queue, log, seed):
        # Each callback logs itself, then spawns 0-2 children whose
        # delays are drawn deterministically from the callback's own
        # identity (seed + tag), so both queue implementations see the
        # exact same schedule requests.  Delay 0 exercises the FIFO
        # lane; positive delays exercise the heap.
        def fire(tag):
            def callback(cycle):
                log.append((tag, cycle))
                rng = random.Random(f"{seed}:{tag}")
                if len(tag) < 6:
                    for child in range(rng.randrange(3)):
                        delay = rng.choice((0, 0, 1, 2, 5))
                        queue.schedule(cycle + delay, fire(tag + (child,)))

            return callback

        rng = random.Random(seed)
        for root in range(16):
            queue.schedule(rng.randrange(8), fire((root,)))

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_reference_heap_order(self, seed):
        reference, reference_log = _ReferenceHeapQueue(), []
        self._workload(reference, reference_log, seed)
        reference_count = reference.run()

        queue, log = EventQueue(), []
        self._workload(queue, log, seed)
        count = queue.run()

        assert count == reference_count > 16
        assert log == reference_log

    def test_heap_events_precede_spawned_same_cycle_events(self):
        # An event scheduled *for* cycle 5 ahead of time must fire
        # before work scheduled *at* cycle 5 for cycle 5: the fast lane
        # drains only once the heap has no events left at `now`.
        q = EventQueue()
        log = []

        def h1(cycle):
            log.append("h1")
            q.schedule(cycle, lambda c: log.append("f1"))

        q.schedule(5, h1)
        q.schedule(5, lambda c: log.append("h2"))
        q.run()
        assert log == ["h1", "h2", "f1"]

    def test_schedule_now_matches_schedule_at_now(self):
        # schedule_now(cb) and schedule(now, cb) land in the same lane
        # and interleave in strict insertion order.
        q = EventQueue()
        log = []

        def kickoff(cycle):
            q.schedule_now(lambda c: log.append("a"))
            q.schedule(cycle, lambda c: log.append("b"))
            q.schedule_now(lambda c: log.append("c"))

        q.schedule(2, kickoff)
        q.run()
        assert log == ["a", "b", "c"]
