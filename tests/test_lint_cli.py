"""CLI surface tests: SARIF output, ``--exclude``, ``--show-unused-noqa``,
and the git-state matrix behind ``profess lint --changed``."""

from __future__ import annotations

import json
import subprocess
from pathlib import Path

import pytest

from repro import cli
from repro.lint import lint_paths
from repro.lint.engine import changed_files

FIXTURES = Path(__file__).parent / "lint_fixtures"


def _sim_module(tmp_path: Path, fixture: str) -> Path:
    """Copy a fixture into a ``repro.sim`` package so scoped rules apply
    when the file is linted by path (module names come from __init__.py
    nesting, and the loose fixture directory is not a package)."""
    pkg = tmp_path / "repro" / "sim"
    pkg.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("", encoding="utf-8")
    (pkg / "__init__.py").write_text("", encoding="utf-8")
    target = pkg / "engine.py"
    target.write_text(
        (FIXTURES / f"{fixture}.py").read_text(encoding="utf-8"),
        encoding="utf-8",
    )
    return target


class TestSarif:
    def test_cli_emits_valid_sarif(self, tmp_path, capsys):
        target = _sim_module(tmp_path, "d110_bad")
        code = cli.main(
            ["lint", str(target), "--select", "D110", "--format", "sarif"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        (run,) = payload["runs"]
        assert run["tool"]["driver"]["name"] == "profess-lint"
        results = run["results"]
        assert any(r["ruleId"] == "D110" for r in results)
        # Every reported ruleId is described in the driver's rule table.
        described = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {r["ruleId"] for r in results} <= described

    def test_flow_findings_carry_code_flows(self, tmp_path, capsys):
        target = _sim_module(tmp_path, "d110_bad")
        cli.main(
            ["lint", str(target), "--select", "D110", "--format", "sarif"]
        )
        payload = json.loads(capsys.readouterr().out)
        flows = [
            r
            for r in payload["runs"][0]["results"]
            if r["ruleId"] == "D110"
        ]
        assert flows
        for result in flows:
            (code_flow,) = result["codeFlows"]
            (thread_flow,) = code_flow["threadFlows"]
            assert len(thread_flow["locations"]) >= 2  # source … sink
            for location in thread_flow["locations"]:
                assert location["location"]["message"]["text"]

    def test_clean_input_sarif_exits_0(self, tmp_path, capsys):
        target = _sim_module(tmp_path, "d110_good")
        code = cli.main(["lint", str(target), "--format", "sarif"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"][0]["results"] == []


class TestExclude:
    def test_exclude_prunes_subtree(self, tmp_path):
        good = tmp_path / "ok.py"
        good.write_text("VALUE = 1\n", encoding="utf-8")
        bad_dir = tmp_path / "fixtures"
        bad_dir.mkdir()
        (bad_dir / "bad.py").write_text("import random\n", encoding="utf-8")
        assert lint_paths([tmp_path], select="D101")
        assert lint_paths([tmp_path], select="D101", exclude=[bad_dir]) == []

    def test_exclude_single_file_via_cli(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import random\n", encoding="utf-8")
        code = cli.main(
            [
                "lint",
                str(tmp_path),
                "--select",
                "D101",
                "--exclude",
                str(tmp_path / "bad.py"),
            ]
        )
        assert code == 0
        capsys.readouterr()


class TestShowUnusedNoqa:
    def test_cli_flag_surfaces_w001(self, capsys):
        path = str(FIXTURES / "w001_bad.py")
        assert cli.main(["lint", path]) == 0
        capsys.readouterr()
        code = cli.main(["lint", path, "--show-unused-noqa"])
        assert code == 1
        assert "W001" in capsys.readouterr().out

    def test_used_noqa_not_reported(self, capsys):
        code = cli.main(
            ["lint", str(FIXTURES / "noqa_line.py"), "--show-unused-noqa"]
        )
        assert code == 0
        capsys.readouterr()


def _git(repo: Path, *args: str) -> None:
    subprocess.run(
        ["git", "-c", "user.email=lint@test", "-c", "user.name=lint", *args],
        cwd=repo,
        check=True,
        capture_output=True,
    )


@pytest.fixture
def git_repo(tmp_path, monkeypatch):
    _git(tmp_path, "init", "-q")
    committed = tmp_path / "committed.py"
    committed.write_text("A = 1\n", encoding="utf-8")
    _git(tmp_path, "add", "committed.py")
    _git(tmp_path, "commit", "-q", "-m", "seed")
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestChanged:
    """--changed picks up staged, unstaged, and untracked .py files."""

    def test_clean_tree_reports_nothing(self, git_repo):
        assert changed_files([Path(".")]) == []

    def test_unstaged_modification_is_included(self, git_repo):
        (git_repo / "committed.py").write_text("A = 2\n", encoding="utf-8")
        assert [p.name for p in changed_files([Path(".")])] == ["committed.py"]

    def test_staged_modification_is_included(self, git_repo):
        (git_repo / "committed.py").write_text("A = 3\n", encoding="utf-8")
        _git(git_repo, "add", "committed.py")
        assert [p.name for p in changed_files([Path(".")])] == ["committed.py"]

    def test_untracked_file_is_included(self, git_repo):
        (git_repo / "fresh.py").write_text("B = 1\n", encoding="utf-8")
        assert [p.name for p in changed_files([Path(".")])] == ["fresh.py"]

    def test_staged_delete_is_skipped(self, git_repo):
        _git(git_repo, "rm", "-q", "committed.py")
        assert changed_files([Path(".")]) == []

    def test_non_python_changes_are_skipped(self, git_repo):
        (git_repo / "notes.txt").write_text("hi\n", encoding="utf-8")
        assert changed_files([Path(".")]) == []

    def test_scope_intersection(self, git_repo):
        sub = git_repo / "pkg"
        sub.mkdir()
        (sub / "inside.py").write_text("C = 1\n", encoding="utf-8")
        (git_repo / "outside.py").write_text("D = 1\n", encoding="utf-8")
        names = [p.name for p in changed_files([Path("pkg")])]
        assert names == ["inside.py"]

    def test_lint_paths_changed_only_lints_the_diff(self, git_repo):
        (git_repo / "fresh.py").write_text(
            "import random\n", encoding="utf-8"
        )
        findings = lint_paths(
            [Path(".")], select="D101", changed_only=True
        )
        assert [f.rule for f in findings] == ["D101"]
        # committed.py (clean in git) is not even read.
        assert all("fresh.py" in f.path for f in findings)

    def test_changed_respects_exclude(self, git_repo):
        (git_repo / "fresh.py").write_text(
            "import random\n", encoding="utf-8"
        )
        findings = lint_paths(
            [Path(".")],
            select="D101",
            changed_only=True,
            exclude=[Path("fresh.py")],
        )
        assert findings == []
