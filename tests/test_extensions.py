"""Extension-experiment driver tests with a stubbed runner."""

from repro.experiments.extensions import (
    run_policy_matrix,
    run_random_mixes,
    run_rsm_pom,
)
from repro.sim.metrics import WorkloadMetrics
from repro.sim.results import ProgramResult, SimulationResult


def _metrics(policy, unfairness, speedup):
    return WorkloadMetrics(
        policy=policy,
        program_names=("a", "b", "c", "d"),
        slowdowns=(unfairness, 2.0, 2.0, 2.0),
        weighted_speedup=speedup,
        unfairness=unfairness,
        energy_efficiency=1e6,
        average_read_latency=100.0,
        swap_fraction=0.02,
    )


#: Canned relative quality: guidance alone helps fairness, MDM helps
#: performance, ProFess both.
QUALITY = {
    "static": (5.0, 0.8),
    "cameo": (4.5, 0.9),
    "silcfm": (4.4, 0.95),
    "mempod": (4.6, 0.85),
    "pom": (4.0, 1.0),
    "rsm-pom": (3.5, 1.02),
    "mdm": (3.8, 1.1),
    "profess": (3.3, 1.12),
}


class StubRunner:
    scale = 128
    seed = 0
    policy_specs = None

    def workload_metrics(self, name, policy, config=None):
        # Composed specs ("mdm+stc:lfu") fall back to their base name's
        # canned quality.
        unfairness, speedup = QUALITY.get(policy) or QUALITY[
            policy.split("+")[0]
        ]
        return _metrics(policy, unfairness, speedup)

    def mix_metrics(self, programs, policy, config=None):
        return self.workload_metrics("mix", policy)

    def run_workload(self, name, policy, config=None):
        return SimulationResult(
            policy=policy,
            cycles=1000,
            programs=tuple(
                ProgramResult(p, i, 100, 0.5, 10, 0.5, 1, 0)
                for i, p in enumerate("abcd")
            ),
            total_requests=40,
            total_swaps=3,
            swap_fraction=0.03,
            average_read_latency=100.0,
            stc_hit_rate=0.9,
            energy_joules=1.0,
            energy_efficiency=1e6,
        )


class TestRSMPoMDecomposition:
    def test_rows_cover_policies_and_workloads(self):
        result = run_rsm_pom(StubRunner())
        policies = {row[1] for row in result.rows}
        assert policies == {"rsm-pom", "mdm", "profess"}
        assert len(result.rows) == 9  # 3 workloads x 3 policies

    def test_summary_shows_decomposition(self):
        result = run_rsm_pom(StubRunner())
        summary = result.summary
        # Guidance improves fairness more than MDM alone; ProFess most.
        assert (
            summary["profess geomean unfairness vs PoM"]
            < summary["rsm-pom geomean unfairness vs PoM"]
            < 1.0
        )
        assert summary["mdm geomean weighted speedup vs PoM"] > 1.0


class TestPolicyMatrix:
    def test_cross_product_covers_all_axes(self):
        result = run_policy_matrix(StubRunner())
        policies = [row[0] for row in result.rows]
        bases = {row[1] for row in result.rows}
        stcs = [row[3] for row in result.rows]
        # 6 bases x guidance (2 guided bases) x 2 STC replacements.
        assert len(result.rows) == 16
        assert bases == {"static", "cameo", "pom", "silcfm", "mempod", "mdm"}
        # Guided compositions canonicalize to their registered names.
        assert "profess" in policies
        assert "rsm-pom" in policies
        assert "profess+stc:lfu" in policies
        assert "mdm+stc:lfu" in policies
        assert stcs.count("lru") == 8 and stcs.count("lfu") == 8

    def test_summary_rolls_up_each_axis(self):
        result = run_policy_matrix(StubRunner())
        assert "geomean WS [base=mdm]" in result.summary
        assert "geomean WS [guidance=rsm]" in result.summary
        assert "geomean WS [stc=lfu]" in result.summary

    def test_policy_specs_restrict_the_sweep(self):
        runner = StubRunner()
        runner.policy_specs = ("pom", "profess+stc:lfu")
        result = run_policy_matrix(runner)
        assert [row[0] for row in result.rows] == ["pom", "profess+stc:lfu"]


class TestRandomMixes:
    def test_counts_and_summary(self):
        result = run_random_mixes(StubRunner(), count=4)
        assert len(result.rows) == 4
        assert result.summary["geomean unfairness ratio"] < 1.0
        assert result.summary["geomean weighted-speedup ratio"] > 1.0
