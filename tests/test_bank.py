"""Bank state tests."""

from repro.mem.bank import Bank


class TestBank:
    def test_initially_closed(self):
        bank = Bank()
        assert bank.open_row is None
        assert not bank.is_row_hit(0)
        assert not bank.dirty

    def test_open_then_hit(self):
        bank = Bank()
        bank.open(42, ready_at=100)
        assert bank.is_row_hit(42)
        assert not bank.is_row_hit(43)
        assert bank.ready_at == 100

    def test_open_dirty(self):
        bank = Bank()
        bank.open(1, 10, dirty=True)
        assert bank.dirty

    def test_mark_dirty(self):
        bank = Bank()
        bank.open(1, 10)
        bank.mark_dirty()
        assert bank.dirty

    def test_close_clears_row_and_dirty(self):
        bank = Bank()
        bank.open(1, 10, dirty=True)
        bank.close()
        assert bank.open_row is None
        assert not bank.dirty

    def test_reserve_extends_only_forward(self):
        bank = Bank()
        bank.open(1, 100)
        bank.reserve(50)
        assert bank.ready_at == 100
        bank.reserve(150)
        assert bank.ready_at == 150
