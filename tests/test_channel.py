"""Channel timing-model tests: row hits/misses, write recovery, idle
close, bus serialization, swap blocking."""


from repro.common.config import MemTimings
from repro.common.events import EventQueue
from repro.mem.channel import Channel
from repro.mem.power import EnergyMeter
from repro.common.config import EnergyConfig
from repro.mem.request import DeviceAddress, MemRequest, Module, RequestKind

M1 = MemTimings.dram()
M2 = MemTimings.nvm_from_dram()


def make_channel(idle_close=0, swap_latency=2548, energy=None):
    events = EventQueue()
    channel = Channel(
        events=events,
        m1_timings=M1,
        m2_timings=M2,
        banks_per_rank=16,
        frfcfs_cap=4,
        energy=energy,
        swap_latency=swap_latency,
        row_idle_close=idle_close,
    )
    return events, channel


def read(module, bank, row, done):
    return MemRequest(
        core_id=0,
        address=DeviceAddress(module, bank, row),
        is_write=False,
        arrival=0,
        on_complete=done,
    )


def run_one(events, channel, request):
    done = []
    request.on_complete = lambda c: done.append(c)
    channel.enqueue(request)
    events.run()
    assert len(done) == 1
    return done[0]


class TestSingleRequestLatency:
    def test_m1_cold_miss(self):
        events, channel = make_channel()
        latency = run_one(events, channel, read(Module.M1, 0, 0, None))
        # No precharge on a closed bank: tRCD + CL + burst.
        assert latency == M1.t_rcd + M1.cl + M1.line_burst

    def test_m2_cold_miss_is_ten_x_trcd(self):
        events, channel = make_channel()
        latency = run_one(events, channel, read(Module.M2, 0, 0, None))
        assert latency == M2.t_rcd + M2.cl + M2.line_burst
        assert M2.t_rcd == 10 * M1.t_rcd

    def test_row_hit_is_cas_plus_burst(self):
        events, channel = make_channel()
        run_one(events, channel, read(Module.M1, 0, 0, None))
        start = events.now
        latency = run_one(events, channel, read(Module.M1, 0, 0, None)) - start
        assert latency == M1.cl + M1.line_burst

    def test_row_conflict_pays_precharge(self):
        events, channel = make_channel()
        run_one(events, channel, read(Module.M1, 0, 0, None))
        start = events.now
        latency = run_one(events, channel, read(Module.M1, 0, 1, None)) - start
        assert latency == M1.t_rp + M1.t_rcd + M1.cl + M1.line_burst

    def test_dirty_row_conflict_pays_write_recovery(self):
        events, channel = make_channel()
        req = read(Module.M2, 0, 0, None)
        req.is_write = True
        run_one(events, channel, req)
        # Sync past the drained write's burst (it ends by 500 cycles).
        events.schedule(600, lambda c: None)
        events.run()
        start = events.now
        latency = run_one(events, channel, read(Module.M2, 0, 1, None)) - start
        expected = M2.t_wr + M2.t_rp + M2.t_rcd + M2.cl + M2.line_burst
        assert latency == expected

    def test_write_hit_does_not_pay_recovery_inline(self):
        # Writes into an open row buffer are cheap; tWR is deferred.
        events, channel = make_channel()
        w1 = read(Module.M2, 0, 0, None)
        w1.is_write = True
        run_one(events, channel, w1)
        events.schedule(600, lambda c: None)
        events.run()
        # The second write drains as a row hit: bank busy only CAS + burst
        # beyond the first write's burst end (500).
        w2 = read(Module.M2, 0, 0, None)
        w2.is_write = True
        run_one(events, channel, w2)
        bank = channel.bank(Module.M2, 0)
        assert bank.ready_at == 600 + M2.cl + M2.line_burst


class TestIdleClose:
    def test_idle_row_closes(self):
        events, channel = make_channel(idle_close=480)  # 150 ns
        run_one(events, channel, read(Module.M1, 0, 0, None))
        # Wait out the idle window.
        events.schedule(events.now + 10_000, lambda c: None)
        events.run()
        start = events.now
        latency = run_one(events, channel, read(Module.M1, 0, 0, None)) - start
        # Same row, but it was closed: full activate, no precharge stall
        # (precharge happened in the background long ago).
        assert latency == M1.t_rcd + M1.cl + M1.line_burst

    def test_prompt_reuse_still_hits(self):
        events, channel = make_channel(idle_close=480)
        run_one(events, channel, read(Module.M1, 0, 0, None))
        start = events.now
        latency = run_one(events, channel, read(Module.M1, 0, 0, None)) - start
        assert latency == M1.cl + M1.line_burst

    def test_dirty_idle_close_can_delay_reactivation(self):
        events, channel = make_channel(idle_close=480)
        w = read(Module.M2, 0, 0, None)
        w.is_write = True
        run_one(events, channel, w)
        # The write drains by cycle 500; arrive just after its row's
        # idle-close begins, while the tWR tail is still draining.
        events.schedule(500 + 481, lambda c: None)
        events.run()
        start = events.now
        latency = run_one(events, channel, read(Module.M2, 0, 0, None)) - start
        assert latency > M2.t_rcd + M2.cl + M2.line_burst


class TestBusSerialization:
    def test_two_hits_same_cycle_serialize_on_bus(self):
        events, channel = make_channel()
        # Open two rows on different banks first.
        run_one(events, channel, read(Module.M1, 0, 0, None))
        run_one(events, channel, read(Module.M1, 1, 0, None))
        done = []
        a = read(Module.M1, 0, 0, lambda c: done.append(c))
        b = read(Module.M1, 1, 0, lambda c: done.append(c))
        channel.enqueue(a)
        channel.enqueue(b)
        events.run()
        assert len(done) == 2
        assert abs(done[1] - done[0]) >= M1.line_burst

    def test_bank_prep_overlaps_burst(self):
        events, channel = make_channel()
        done = []
        # Two cold misses on different banks: the second's activation
        # overlaps the first's, so completion gap is far below a full
        # serial miss latency.
        a = read(Module.M2, 0, 0, lambda c: done.append(c))
        b = read(Module.M2, 1, 0, lambda c: done.append(c))
        channel.enqueue(a)
        channel.enqueue(b)
        events.run()
        serial = 2 * (M2.t_rcd + M2.cl + M2.line_burst)
        assert max(done) < serial


class TestSwaps:
    def test_swap_blocks_channel(self):
        events, channel = make_channel()
        end = channel.schedule_swap(0, 0, 0, 0)
        assert end == 2548
        latency = run_one(events, channel, read(Module.M1, 1, 0, None))
        assert latency >= 2548

    def test_swap_leaves_rows_open_dirty(self):
        events, channel = make_channel()
        end = channel.schedule_swap(2, 7, 3, 9)
        events.schedule(end, lambda c: None)
        events.run()
        start = events.now
        latency = run_one(events, channel, read(Module.M1, 2, 7, None)) - start
        assert latency == M1.cl + M1.line_burst

    def test_swap_completion_callback(self):
        events, channel = make_channel()
        fired = []
        channel.schedule_swap(0, 0, 0, 0, on_complete=lambda c: fired.append(c))
        events.run()
        assert fired == [2548]

    def test_swaps_serialize(self):
        events, channel = make_channel()
        channel.schedule_swap(0, 0, 0, 0)
        end = channel.schedule_swap(1, 0, 1, 0)
        assert end == 2 * 2548

    def test_swap_counted(self):
        events, channel = make_channel()
        channel.schedule_swap(0, 0, 0, 0)
        assert channel.stats.swaps == 1


class TestStats:
    def test_read_latency_tracks_data_reads_only(self):
        events, channel = make_channel()
        st = MemRequest(
            core_id=0,
            address=DeviceAddress(Module.M1, 0, -1),
            is_write=False,
            arrival=0,
            kind=RequestKind.ST_READ,
        )
        channel.enqueue(st)
        events.run()
        assert channel.stats.read_count == 0
        assert channel.stats.st_reads == 1
        run_one(events, channel, read(Module.M1, 0, 0, None))
        assert channel.stats.read_count == 1

    def test_row_hit_counter(self):
        events, channel = make_channel()
        run_one(events, channel, read(Module.M1, 0, 0, None))
        run_one(events, channel, read(Module.M1, 0, 0, None))
        assert channel.stats.row_hits == 1

    def test_energy_recording(self):
        meter = EnergyMeter(EnergyConfig(), num_channels=1)
        events, channel = make_channel(energy=meter)
        run_one(events, channel, read(Module.M2, 0, 0, None))
        assert meter.activates[Module.M2] == 1
        assert meter.line_reads[Module.M2] == 1

    def test_swap_energy(self):
        meter = EnergyMeter(EnergyConfig(), num_channels=1)
        events, channel = make_channel(energy=meter)
        channel.schedule_swap(0, 0, 0, 0)
        assert meter.line_reads[Module.M1] == 32
        assert meter.line_writes[Module.M2] == 32


class TestRefresh:
    def test_m1_refresh_closes_rows(self):
        events, channel = make_channel()
        run_one(events, channel, read(Module.M1, 0, 0, None))
        # Jump past several refresh intervals.
        events.schedule(events.now + 3 * M1.t_refi, lambda c: None)
        events.run()
        start = events.now
        latency = run_one(events, channel, read(Module.M1, 0, 0, None)) - start
        # Row was closed by refresh: the access re-activates.
        assert latency >= M1.t_rcd + M1.cl + M1.line_burst
        assert channel.stats.refreshes >= 3

    def test_m2_never_refreshes(self):
        events, channel = make_channel()
        run_one(events, channel, read(Module.M2, 0, 0, None))
        events.schedule(events.now + 10 * M1.t_refi, lambda c: None)
        events.run()
        before = channel.stats.refreshes
        run_one(events, channel, read(Module.M2, 1, 0, None))
        assert channel.stats.refreshes == before
        assert M2.t_refi == 0

    def test_refresh_delays_prompt_request(self):
        events, channel = make_channel()
        # Arrive exactly at the refresh boundary: bank busy for tRFC.
        events.schedule(M1.t_refi, lambda c: None)
        events.run()
        start = events.now
        latency = run_one(events, channel, read(Module.M1, 0, 0, None)) - start
        assert latency >= M1.t_rfc


class TestWriteQueue:
    def test_write_acceptance_is_immediate(self):
        events, channel = make_channel()
        accepted = []
        w = read(Module.M1, 0, 0, None)
        w.is_write = True
        w.on_complete = lambda c: accepted.append(c)
        channel.enqueue(w)
        events.step()  # acceptance event only
        assert accepted and accepted[0] == 0

    def test_reads_prioritized_over_buffered_writes(self):
        events, channel = make_channel()
        order = []
        w = read(Module.M2, 0, 5, None)
        w.is_write = True
        channel.enqueue(w)
        r = read(Module.M1, 1, 0, lambda c: order.append("read"))
        channel.enqueue(r)
        events.run()
        # The read completes long before the slow M2 write would have.
        assert channel.stats.reads == 1
        assert channel.stats.writes == 1
        assert order == ["read"]

    def test_writes_drain_when_idle(self):
        events, channel = make_channel()
        for row in range(3):
            w = read(Module.M1, 0, row, None)
            w.is_write = True
            channel.enqueue(w)
        events.run()
        assert channel.stats.writes == 3
        assert channel.queue_depth() == 0

    def test_backpressure_beyond_cap(self):
        events, channel = make_channel()
        accepted = []
        total = Channel.WRITE_QUEUE_CAP + 8
        for index in range(total):
            w = read(Module.M2, index % 16, index, None)
            w.is_write = True
            w.on_complete = lambda c, i=index: accepted.append(i)
            channel.enqueue(w)
        # Before any draining, only the first CAP writes are accepted.
        assert len(accepted) <= Channel.WRITE_QUEUE_CAP
        events.run()
        assert len(accepted) == total

    def test_high_watermark_forces_drain_despite_reads(self):
        events, channel = make_channel()
        for index in range(Channel.WRITE_QUEUE_HIGH):
            w = read(Module.M1, index % 16, index, None)
            w.is_write = True
            channel.enqueue(w)
        # A steady read stream would otherwise starve the writes.
        for index in range(4):
            channel.enqueue(read(Module.M1, index % 16, 100 + index, None))
        events.run()
        assert channel.stats.writes == Channel.WRITE_QUEUE_HIGH
