"""Region map and OS page-frame allocator tests (Section 3.1.1)."""

import pytest

from repro.common.config import paper_quad_core
from repro.common.errors import ConfigError, SimulationError
from repro.common.rng import make_rng
from repro.hybrid.address import AddressMap
from repro.hybrid.regions import OSAllocator, PageTable, RegionMap


@pytest.fixture()
def setup():
    amap = AddressMap(paper_quad_core(scale=64))
    regions = RegionMap(amap, num_programs=4)
    allocator = OSAllocator(amap, regions, make_rng(0, "test-alloc"))
    return amap, regions, allocator


class TestRegionMap:
    def test_private_regions_are_first(self, setup):
        _amap, regions, _alloc = setup
        assert regions.private_region == {0: 0, 1: 1, 2: 2, 3: 3}
        assert regions.is_private(0)
        assert not regions.is_private(4)

    def test_is_private_to(self, setup):
        _amap, regions, _alloc = setup
        assert regions.is_private_to(2, 2)
        assert not regions.is_private_to(2, 1)

    def test_allowed_regions_exclude_other_private(self, setup):
        _amap, regions, _alloc = setup
        allowed = regions.allowed_regions(1)
        assert 1 in allowed
        assert 0 not in allowed
        assert 2 not in allowed
        assert len(allowed) == 128 - 4 + 1

    def test_rejects_too_many_programs(self, setup):
        amap, _regions, _alloc = setup
        with pytest.raises(ConfigError):
            RegionMap(amap, num_programs=128)


class TestAllocator:
    def test_allocates_requested_count(self, setup):
        _amap, _regions, alloc = setup
        frames = alloc.allocate(0, 100)
        assert len(frames) == 100
        assert len(set(frames)) == 100

    def test_private_frames_only_to_owner(self, setup):
        amap, regions, alloc = setup
        for program in range(4):
            frames = alloc.allocate(program, 500)
            for frame in frames:
                region = amap.region_of_page(frame)
                if regions.is_private(region):
                    assert region == regions.private_region[program]

    def test_owner_tracking(self, setup):
        amap, _regions, alloc = setup
        frames = alloc.allocate(2, 10)
        for frame in frames:
            assert alloc.owner_of_frame(frame) == 2
            block = 2 * frame
            assert alloc.owner_of_block(block) == 2

    def test_unallocated_is_none(self, setup):
        _amap, _regions, alloc = setup
        assert alloc.owner_of_frame(0) is None or True  # frame 0 may be free
        # A frame we know is free: allocate nothing, check any.
        fresh = OSAllocator(*_fresh(setup))
        assert fresh.owner_of_frame(123) is None

    def test_release_returns_frames(self, setup):
        amap, _regions, alloc = setup
        frames = alloc.allocate(0, 10)
        region_counts = {
            region: alloc.free_frames(region)
            for region in range(amap.num_regions)
        }
        alloc.release(0, frames)
        for frame in frames:
            region = amap.region_of_page(frame)
            region_counts[region] += 1
        for region, expected in region_counts.items():
            assert alloc.free_frames(region) == expected

    def test_release_wrong_owner_rejected(self, setup):
        _amap, _regions, alloc = setup
        frames = alloc.allocate(0, 1)
        with pytest.raises(SimulationError):
            alloc.release(1, frames)

    def test_exhaustion_raises(self, setup):
        amap, _regions, alloc = setup
        with pytest.raises(SimulationError):
            alloc.allocate(0, amap.total_pages + 1)

    def test_spread_across_regions(self, setup):
        amap, regions, alloc = setup
        frames = alloc.allocate(0, 1000)
        touched = {amap.region_of_page(f) for f in frames}
        # Round-robin across 125 allowed regions: all should be touched.
        assert len(touched) == len(regions.allowed_regions(0))

    def test_spread_across_segments(self, setup):
        amap, _regions, alloc = setup
        frames = alloc.allocate(0, 2000)
        segments = {amap.segment_of_page(f) for f in frames}
        assert segments == set(range(amap.group_size))


def _fresh(setup):
    amap, regions, _alloc = setup
    return amap, regions, make_rng(1, "fresh")


class TestPageTable:
    def test_translation_stable(self, setup):
        _amap, _regions, alloc = setup
        table = PageTable(0, alloc, num_pages=16)
        first = table.translate_line(100, 64)
        assert table.translate_line(100, 64) == first

    def test_offset_preserved(self, setup):
        _amap, _regions, alloc = setup
        table = PageTable(0, alloc, num_pages=16)
        physical = table.translate_line(3 * 64 + 17, 64)
        assert physical % 64 == 17

    def test_distinct_pages_distinct_frames(self, setup):
        _amap, _regions, alloc = setup
        table = PageTable(0, alloc, num_pages=8)
        frames = {table.translate_line(v * 64, 64) // 64 for v in range(8)}
        assert len(frames) == 8
