"""The ``repro.lint`` meta-suite.

Three layers:

* every rule fires on its bad fixture and stays silent on its good one
  (``tests/lint_fixtures/``),
* the suppression / selection machinery behaves (``# repro: noqa``,
  ``--select`` / ``--ignore``),
* ``src/repro`` itself is lint-clean — the repo must always pass its own
  static analysis (this is what CI enforces via ``profess lint``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

import pytest

from repro import cli
from repro.lint import RULES, Finding, LintError, lint_paths, lint_sources

FIXTURES = Path(__file__).parent / "lint_fixtures"
SRC = Path(__file__).parent.parent / "src" / "repro"

NO_HOT = frozenset()


@dataclass(frozen=True)
class Case:
    """How to lint one rule's fixture pair."""

    #: Module name the fixture is linted under (rule scopes depend on it).
    module: str
    #: Hot-class manifest entries (qualnames, relative to ``module``).
    bad_classes: tuple[str, ...] = ()
    good_classes: tuple[str, ...] = ()
    #: Hot-function manifest entries (qualnames, relative to ``module``).
    bad_functions: tuple[str, ...] = ()
    good_functions: tuple[str, ...] = ()
    #: Batched tick-loop entries (H204; qualnames, relative to ``module``).
    bad_batch: tuple[str, ...] = ()
    good_batch: tuple[str, ...] = ()
    #: Lint with ``--show-unused-noqa`` (the W001 fixtures need it).
    show_unused: bool = False

    def manifests(self, kind: str) -> tuple[frozenset, frozenset, frozenset]:
        classes = self.bad_classes if kind == "bad" else self.good_classes
        functions = self.bad_functions if kind == "bad" else self.good_functions
        batch = self.bad_batch if kind == "bad" else self.good_batch
        return (
            frozenset(f"{self.module}.{name}" for name in classes),
            frozenset(f"{self.module}.{name}" for name in functions),
            frozenset(f"{self.module}.{name}" for name in batch),
        )


CASES: dict[str, Case] = {
    "D101": Case(module="repro.analysis.fixture"),
    "D102": Case(module="repro.analysis.fixture"),
    "D103": Case(module="repro.sim.fixture"),
    "D104": Case(module="repro.sim.fixture"),
    "D105": Case(module="repro.sim.fixture"),
    "D110": Case(module="repro.sim.fixture"),
    "D111": Case(module="repro.sim.fixture"),
    "D112": Case(module="repro.sim.fixture"),
    "H200": Case(
        module="repro.sim.fixture",
        bad_classes=("Missing",),
        good_classes=("Present",),
    ),
    "H201": Case(
        module="repro.sim.fixture",
        bad_classes=("HotThing",),
        good_classes=("HotThing",),
    ),
    "H202": Case(module="repro.sim.fixture"),
    "H203": Case(
        module="repro.sim.fixture",
        bad_functions=("Loop.run",),
        good_functions=("Loop.run",),
    ),
    "H204": Case(
        module="repro.mem.fixture",
        bad_batch=("Kernel.tick",),
        good_batch=("Kernel.tick",),
    ),
    "C301": Case(module="repro.analysis.fixture"),
    "C302": Case(module="repro.analysis.fixture"),
    "C303": Case(module="repro.analysis.fixture"),
    "C304": Case(module="repro.common.fixture"),
    "C305": Case(module="repro.experiments.fixture"),
    "C306": Case(module="repro.analysis.fixture"),
    "K401": Case(module="repro.sim.fixture"),
    "K402": Case(module="repro.sim.fixture"),
    "K403": Case(module="repro.sim.fixture"),
    "W001": Case(module="repro.analysis.fixture", show_unused=True),
    "E999": Case(module="repro.analysis.fixture"),
}


def lint_fixture(
    name: str,
    module: str,
    select: Optional[str] = None,
    ignore: Optional[str] = None,
    hot_classes: frozenset = NO_HOT,
    hot_functions: frozenset = NO_HOT,
    batch_functions: frozenset = NO_HOT,
    show_unused_noqa: bool = False,
) -> list[Finding]:
    path = FIXTURES / f"{name}.py"
    return lint_sources(
        {module: (str(path), path.read_text(encoding="utf-8"))},
        select=select,
        ignore=ignore,
        hot_classes=hot_classes,
        hot_functions=hot_functions,
        batch_functions=batch_functions,
        show_unused_noqa=show_unused_noqa,
    )


def lint_case(rule: str, kind: str) -> list[Finding]:
    case = CASES[rule]
    hot_classes, hot_functions, batch_functions = case.manifests(kind)
    return lint_fixture(
        f"{rule.lower()}_{kind}",
        case.module,
        select=rule,
        hot_classes=hot_classes,
        hot_functions=hot_functions,
        batch_functions=batch_functions,
        show_unused_noqa=case.show_unused,
    )


class TestRegistry:
    def test_every_rule_has_a_case(self):
        assert set(CASES) == set(RULES)

    def test_every_case_has_fixture_files(self):
        for rule in RULES:
            assert (FIXTURES / f"{rule.lower()}_bad.py").exists(), rule
            if rule != "E999":  # a "good" parse failure cannot exist
                assert (FIXTURES / f"{rule.lower()}_good.py").exists(), rule


class TestRulesFire:
    """Each rule fires on its bad fixture and is silent on its good one."""

    @pytest.mark.parametrize("rule", sorted(RULES))
    def test_bad_fixture_fires(self, rule):
        findings = lint_case(rule, "bad")
        assert findings, f"{rule} did not fire on its bad fixture"
        assert all(f.rule == rule for f in findings)
        assert all(f.line >= 1 and f.col >= 1 for f in findings)

    @pytest.mark.parametrize("rule", sorted(set(RULES) - {"E999"}))
    def test_good_fixture_silent(self, rule):
        findings = lint_case(rule, "good")
        assert findings == [], (
            f"{rule} fired on its good fixture: "
            + "; ".join(f.render() for f in findings)
        )

    def test_bad_fixture_counts(self):
        # Spot-check multiplicity: every banned site is reported, not
        # just the first one per file.
        assert len(lint_case("D101", "bad")) == 2  # import + from-import
        assert len(lint_case("D103", "bad")) == 3  # time, datetime, urandom
        assert len(lint_case("D104", "bad")) == 2  # for + comprehension
        assert len(lint_case("D105", "bad")) == 2  # subscript + dict key
        assert len(lint_case("H202", "bad")) == 2  # __init__ + method
        assert len(lint_case("H203", "bad")) == 3  # print, f-string, try
        # list + dict display, comprehension, lambda, nested def,
        # project class, partial
        assert len(lint_case("H204", "bad")) == 7
        assert len(lint_case("C302", "bad")) == 3  # list, dict, set
        assert len(lint_case("C303", "bad")) == 2  # local class + builtin
        assert len(lint_case("C306", "bad")) == 2  # plain + inside tuple
        assert len(lint_case("D110", "bad")) == 2  # clock store + set order
        assert len(lint_case("D112", "bad")) == 2  # helper return + flow-through
        assert len(lint_case("K402", "bad")) == 2  # ghost + covered entry


class TestSuppressions:
    def test_line_noqa_suppresses_named_rule(self):
        assert lint_fixture("noqa_line", "repro.analysis.fixture") == []

    def test_blanket_noqa_suppresses_everything_on_line(self):
        assert lint_fixture("noqa_blanket", "repro.analysis.fixture") == []

    def test_file_noqa_suppresses_rule_everywhere(self):
        assert lint_fixture("noqa_file", "repro.analysis.fixture") == []

    def test_wrong_rule_noqa_does_not_suppress(self):
        findings = lint_fixture("noqa_wrong_rule", "repro.analysis.fixture")
        assert [f.rule for f in findings] == ["D101"]

    def test_noqa_on_any_line_of_multiline_statement(self):
        # The call spans three physical lines; the comment sits on the
        # closing paren's line and must still suppress the finding.
        assert lint_fixture("noqa_multiline", "repro.sim.fixture") == []

    def test_marker_inside_string_literal_is_inert(self):
        # Documentation *about* the marker is not a suppression: it must
        # neither hide the finding nor count as stale under W001.
        source = 'import random; DOC = "# repro: noqa"\n'
        findings = lint_sources(
            {"repro.analysis.fixture": ("<inline>", source)},
            show_unused_noqa=True,
        )
        assert [f.rule for f in findings] == ["D101"]

    def test_unused_noqa_reported_only_on_request(self):
        silent = lint_fixture("w001_bad", "repro.analysis.fixture")
        assert silent == []
        reported = lint_fixture(
            "w001_bad", "repro.analysis.fixture", show_unused_noqa=True
        )
        assert [f.rule for f in reported] == ["W001"]


class TestSelection:
    def test_select_family_prefix(self):
        assert lint_fixture("d101_bad", "repro.analysis.fixture", select="D")
        assert (
            lint_fixture("d101_bad", "repro.analysis.fixture", select="C")
            == []
        )

    def test_ignore_specific_rule(self):
        assert (
            lint_fixture("d101_bad", "repro.analysis.fixture", ignore="D101")
            == []
        )

    def test_rng_module_is_exempt(self):
        # The one module allowed to import random: repro.common.rng.
        assert (
            lint_fixture("d101_bad", "repro.common.rng", select="D101") == []
        )

    def test_sim_rules_only_in_sim_scope(self):
        # The same set-iteration code outside sim/ packages is legal.
        assert lint_fixture("d104_bad", "repro.analysis.fixture") == []


class TestFindingShape:
    def test_render_and_to_dict(self):
        finding = lint_case("C301", "bad")[0]
        assert finding.rule == "C301"
        rendered = finding.render()
        assert f":{finding.line}:" in rendered and "C301" in rendered
        payload = finding.to_dict()
        assert payload["rule"] == "C301"
        assert payload["path"].endswith("c301_bad.py")
        assert isinstance(payload["line"], int)


class TestCli:
    def test_findings_exit_1_and_json(self, capsys):
        code = cli.main(
            ["lint", str(FIXTURES / "c301_bad.py"), "--format", "json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] >= 1
        assert any(f["rule"] == "C301" for f in payload["findings"])

    def test_clean_file_exits_0(self, capsys):
        code = cli.main(["lint", str(FIXTURES / "c301_good.py")])
        assert code == 0
        assert capsys.readouterr().out == ""

    def test_select_filters_cli(self, capsys):
        code = cli.main(
            ["lint", str(FIXTURES / "c301_bad.py"), "--select", "D"]
        )
        assert code == 0
        capsys.readouterr()

    def test_missing_path_exits_2(self, capsys):
        code = cli.main(["lint", str(FIXTURES / "does_not_exist.py")])
        assert code == 2
        assert "lint:" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert cli.main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule in out

    def test_lint_error_from_api(self):
        with pytest.raises(LintError):
            lint_paths([FIXTURES / "does_not_exist.py"])


class TestRepoClean:
    def test_src_repro_is_lint_clean(self):
        findings = lint_paths([SRC])
        assert findings == [], "src/repro must stay lint-clean:\n" + "\n".join(
            f.render() for f in findings
        )

    def test_src_repro_has_no_stale_noqa(self):
        # Every suppression comment in the tree must still match a
        # finding — stale ones get deleted, not accumulated.
        findings = lint_paths([SRC], show_unused_noqa=True)
        assert findings == [], "stale noqa in src/repro:\n" + "\n".join(
            f.render() for f in findings
        )
