"""Shared fixtures for the benchmark harness.

One :class:`ExperimentRunner` is shared across every benchmark in the
session, so the 19-workload sweep behind Figures 10-15 is simulated once
and each figure's bench reads its metric from the cache — mirroring how
the paper derives several figures from one set of runs.

Benchmarks run at ``BENCH_SCALE`` (capacity divisor 128 -> 2-MB total M1)
with short traces so the full suite completes in minutes; the experiment
CLI (``profess run all``) reproduces the same artifacts at larger scale.
Each bench prints the regenerated table so the output can be diffed
against the paper row by row (see EXPERIMENTS.md).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.runner import ExperimentRunner

BENCH_SCALE = 128
BENCH_MULTI_REQUESTS = 5_000
BENCH_SINGLE_REQUESTS = 6_000
#: Persistent result cache shared across benchmark sessions (and with any
#: CLI run pointed at the same directory).  Set PROFESS_BENCH_CACHE to
#: relocate it, or to the empty string to disable disk caching.
BENCH_CACHE_DIR = os.environ.get("PROFESS_BENCH_CACHE", ".profess-bench-cache")
#: Worker processes for batched runs (PROFESS_BENCH_JOBS, default serial
#: so per-benchmark timings stay comparable).
BENCH_JOBS = int(os.environ.get("PROFESS_BENCH_JOBS", "1"))


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """Session-wide cached experiment runner (disk-cache warm-started)."""
    return ExperimentRunner(
        scale=BENCH_SCALE,
        multi_requests=BENCH_MULTI_REQUESTS,
        single_requests=BENCH_SINGLE_REQUESTS,
        seed=0,
        jobs=BENCH_JOBS,
        cache_dir=BENCH_CACHE_DIR or None,
    )


@pytest.fixture()
def run_and_report(benchmark, runner):
    """Pedantic single-round run of one experiment; prints its table."""
    from repro.experiments.registry import run_experiment

    def _run(experiment_id: str):
        result = benchmark.pedantic(
            run_experiment,
            args=(experiment_id, runner),
            rounds=1,
            iterations=1,
        )
        print()
        print(result.render())
        return result

    return _run
