"""Figure 9: STC hit rates vs STC size.

Shape target: hit rates grow (weakly) with STC size.

Regenerates the artifact at benchmark scale and prints the table for
row-by-row comparison with the paper (see EXPERIMENTS.md).
"""

def test_fig9(run_and_report):
    """Regenerate fig9 and report its table."""
    result = run_and_report("fig9")
    assert result.rows, "experiment produced no rows"
