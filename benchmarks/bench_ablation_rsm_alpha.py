"""Ablation: RSM smoothing alpha.

Regenerates the artifact at benchmark scale and prints the table for
row-by-row comparison with the paper (see EXPERIMENTS.md).
"""

def test_ablation_rsm_alpha(run_and_report):
    """Regenerate ablation-rsm-alpha and report its table."""
    result = run_and_report("ablation-rsm-alpha")
    assert result.rows, "experiment produced no rows"
