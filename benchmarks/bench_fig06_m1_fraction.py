"""Figure 6: M1-served fraction of MDM normalized to PoM.

Shape target: higher fractions track higher performance except irregular programs.

Regenerates the artifact at benchmark scale and prints the table for
row-by-row comparison with the paper (see EXPERIMENTS.md).
"""

def test_fig6(run_and_report):
    """Regenerate fig6 and report its table."""
    result = run_and_report("fig6")
    assert result.rows, "experiment produced no rows"
