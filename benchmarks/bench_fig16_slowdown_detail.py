"""Figure 16: per-program slowdowns under PoM/MDM/ProFess.

Shape target: ProFess trades light programs' speed for the most-suffering ones.

Regenerates the artifact at benchmark scale and prints the table for
row-by-row comparison with the paper (see EXPERIMENTS.md).
"""

def test_fig16(run_and_report):
    """Regenerate fig16 and report its table."""
    result = run_and_report("fig16")
    assert result.rows, "experiment produced no rows"
