"""Ablation: ProFess hysteresis and Case 3.

Regenerates the artifact at benchmark scale and prints the table for
row-by-row comparison with the paper (see EXPERIMENTS.md).
"""

def test_ablation_rsm_thresholds(run_and_report):
    """Regenerate ablation-rsm-thresholds and report its table."""
    result = run_and_report("ablation-rsm-thresholds")
    assert result.rows, "experiment produced no rows"
