"""Table 1/2: organization and algorithm capability matrices.

Structural checks; every boolean in the summary must hold.

Regenerates the artifact at benchmark scale and prints the table for
row-by-row comparison with the paper (see EXPERIMENTS.md).
"""

def test_table1(run_and_report):
    """Regenerate table1 and report its table."""
    result = run_and_report("table1")
    assert result.rows, "experiment produced no rows"
