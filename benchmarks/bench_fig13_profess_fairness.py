"""Figure 13: max slowdown of ProFess normalized to PoM.

Shape target: below 1.0 on average and below MDM's ratio (paper: -15%, up to -29%).

Regenerates the artifact at benchmark scale and prints the table for
row-by-row comparison with the paper (see EXPERIMENTS.md).
"""

def test_fig13(run_and_report):
    """Regenerate fig13 and report its table."""
    result = run_and_report("fig13")
    assert result.rows, "experiment produced no rows"
