"""Figure 10: max slowdown of MDM normalized to PoM.

Shape target: below 1.0 on average (paper: -6%), with some workloads above 1.

Regenerates the artifact at benchmark scale and prints the table for
row-by-row comparison with the paper (see EXPERIMENTS.md).
"""

def test_fig10(run_and_report):
    """Regenerate fig10 and report its table."""
    result = run_and_report("fig10")
    assert result.rows, "experiment produced no rows"
