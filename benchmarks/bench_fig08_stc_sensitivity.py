"""Figure 8: MDM IPC sensitivity to STC size.

Shape target: mostly flat; irregular programs lose with a half-size STC.

Regenerates the artifact at benchmark scale and prints the table for
row-by-row comparison with the paper (see EXPERIMENTS.md).
"""

def test_fig8(run_and_report):
    """Regenerate fig8 and report its table."""
    result = run_and_report("fig8")
    assert result.rows, "experiment produced no rows"
