"""Extension: decomposing ProFess into RSM guidance and MDM cost-benefit.

Beyond the paper: quantifies Section 6's claim that RSM composes with other migration algorithms.

Regenerates the artifact at benchmark scale and prints the table for
row-by-row comparison with the paper (see EXPERIMENTS.md).
"""

def test_ext_rsm_pom(run_and_report):
    """Regenerate ext-rsm-pom and report its table."""
    result = run_and_report("ext-rsm-pom")
    assert result.rows, "experiment produced no rows"
