"""Extension: the full Table 2 policy cast on one contended workload.

CAMEO, SILC-FM, MemPod, PoM, RSM-PoM, MDM, and ProFess under identical conditions.

Regenerates the artifact at benchmark scale and prints the table for
row-by-row comparison with the paper (see EXPERIMENTS.md).
"""

def test_ext_policy_matrix(run_and_report):
    """Regenerate ext-policy-matrix and report its table."""
    result = run_and_report("ext-policy-matrix")
    assert result.rows, "experiment produced no rows"
