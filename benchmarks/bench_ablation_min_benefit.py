"""Ablation: min_benefit (K) sweep.

Regenerates the artifact at benchmark scale and prints the table for
row-by-row comparison with the paper (see EXPERIMENTS.md).
"""

def test_ablation_min_benefit(run_and_report):
    """Regenerate ablation-min-benefit and report its table."""
    result = run_and_report("ablation-min-benefit")
    assert result.rows, "experiment produced no rows"
