"""Figure 15: energy efficiency of ProFess normalized to PoM.

Shape target: above 1.0 on average (paper: +11%).

Regenerates the artifact at benchmark scale and prints the table for
row-by-row comparison with the paper (see EXPERIMENTS.md).
"""

def test_fig15(run_and_report):
    """Regenerate fig15 and report its table."""
    result = run_and_report("fig15")
    assert result.rows, "experiment produced no rows"
