"""Section 2.5: MemPod AMMAT vs PoM.

Shape target: MemPod's AMMAT is longer than PoM's in this technology setting.

Regenerates the artifact at benchmark scale and prints the table for
row-by-row comparison with the paper (see EXPERIMENTS.md).
"""

def test_mempod_vs_pom(run_and_report):
    """Regenerate mempod-vs-pom and report its table."""
    result = run_and_report("mempod-vs-pom")
    assert result.rows, "experiment produced no rows"
