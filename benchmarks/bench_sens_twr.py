"""Section 5.2: sensitivity to M2 write latency.

Shape target: MDM's advantage grows with tWR_M2 (paper: 12% / 14% / 18%).

Regenerates the artifact at benchmark scale and prints the table for
row-by-row comparison with the paper (see EXPERIMENTS.md).
"""

def test_sens_twr(run_and_report):
    """Regenerate sens-twr and report its table."""
    result = run_and_report("sens-twr")
    assert result.rows, "experiment produced no rows"
