"""Figure 12: energy efficiency of MDM normalized to PoM.

Shape target: above 1.0 on average (paper: +7%).

Regenerates the artifact at benchmark scale and prints the table for
row-by-row comparison with the paper (see EXPERIMENTS.md).
"""

def test_fig12(run_and_report):
    """Regenerate fig12 and report its table."""
    result = run_and_report("fig12")
    assert result.rows, "experiment produced no rows"
