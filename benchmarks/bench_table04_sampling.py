"""Table 4: RSM sampling accuracy vs M_samp.

Shape targets: sigma_req falls as M_samp grows; smoothing cuts sigma of SF_A severalfold.

Regenerates the artifact at benchmark scale and prints the table for
row-by-row comparison with the paper (see EXPERIMENTS.md).
"""

def test_table4(run_and_report):
    """Regenerate table4 and report its table."""
    result = run_and_report("table4")
    assert result.rows, "experiment produced no rows"
