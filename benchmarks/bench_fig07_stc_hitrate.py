"""Figure 7: STC hit rates under MDM.

Shape target: omnetpp lowest, mcf below the regular programs.

Regenerates the artifact at benchmark scale and prints the table for
row-by-row comparison with the paper (see EXPERIMENTS.md).
"""

def test_fig7(run_and_report):
    """Regenerate fig7 and report its table."""
    result = run_and_report("fig7")
    assert result.rows, "experiment produced no rows"
