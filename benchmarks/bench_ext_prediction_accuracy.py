"""Extension: calibration of MDM's remaining-access predictor (Eq. 8).

Beyond the paper: records every first-decision prediction and pairs it
with the block's realized remaining accesses at ST-entry eviction,
reporting bias, MAE, rank correlation, and hindsight decision accuracy.

Regenerates the artifact at benchmark scale and prints the table for
row-by-row comparison with the paper (see EXPERIMENTS.md).
"""

def test_ext_prediction_accuracy(run_and_report):
    """Regenerate ext-prediction-accuracy and report its table."""
    result = run_and_report("ext-prediction-accuracy")
    assert result.rows, "experiment produced no rows"
