"""Figure 14: weighted speedup of ProFess normalized to PoM.

Shape target: above 1.0 on average (paper: +12%, up to +29%).

Regenerates the artifact at benchmark scale and prints the table for
row-by-row comparison with the paper (see EXPERIMENTS.md).
"""

def test_fig14(run_and_report):
    """Regenerate fig14 and report its table."""
    result = run_and_report("fig14")
    assert result.rows, "experiment produced no rows"
