"""Ablation: QAC bucket boundaries (Table 5).

Regenerates the artifact at benchmark scale and prints the table for
row-by-row comparison with the paper (see EXPERIMENTS.md).
"""

def test_ablation_qac(run_and_report):
    """Regenerate ablation-qac and report its table."""
    result = run_and_report("ablation-qac")
    assert result.rows, "experiment produced no rows"
