"""Trace-decode front end: legacy per-element loop vs batched numpy.

Quantifies the DESIGN.md §12 decode win outside the kernel benchmark:
the same trace is decoded by the seed's per-element reference
implementation and by :class:`repro.traces.decode.TraceDecoder`, and the
two must agree element for element (the operational determinism check).
Prints the measured speedup for row-by-row comparison with the
``profess perf --decode`` section of ``BENCH_kernel.json``.
"""

from repro.perf.decode_bench import run_decode_benchmark


def test_decode_benchmark():
    """Time both front ends and assert they decode identically."""
    payload = run_decode_benchmark(quick=False, repeats=3)
    print(
        f"\ndecode {payload['requests']:,} requests "
        f"({payload['program']}, ipc {payload['issue_ipc']}): "
        f"legacy {payload['legacy_seconds']:.4f}s, "
        f"batched {payload['batched_seconds']:.4f}s, "
        f"{payload['speedup']:.1f}x"
    )
    assert payload["identical"], (
        "batched decoder diverged from the legacy front end"
    )
    assert payload["batched_seconds"] > 0
