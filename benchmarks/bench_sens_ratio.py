"""Section 5.2: sensitivity to the M1:M2 capacity ratio.

Shape target: 1:4 shrinks the advantage; 1:16 keeps or grows it.

Regenerates the artifact at benchmark scale and prints the table for
row-by-row comparison with the paper (see EXPERIMENTS.md).
"""

def test_sens_ratio(run_and_report):
    """Regenerate sens-ratio and report its table."""
    result = run_and_report("sens-ratio")
    assert result.rows, "experiment produced no rows"
