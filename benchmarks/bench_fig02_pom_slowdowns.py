"""Figure 2: per-program slowdowns under PoM for w09/w16/w19.

Shape target: visible slowdown divergence within each mix.

Regenerates the artifact at benchmark scale and prints the table for
row-by-row comparison with the paper (see EXPERIMENTS.md).
"""

def test_fig2(run_and_report):
    """Regenerate fig2 and report its table."""
    result = run_and_report("fig2")
    assert result.rows, "experiment produced no rows"
