"""Figure 11: weighted speedup of MDM normalized to PoM.

Shape target: above 1.0 on average (paper: +7%).

Regenerates the artifact at benchmark scale and prints the table for
row-by-row comparison with the paper (see EXPERIMENTS.md).
"""

def test_fig11(run_and_report):
    """Regenerate fig11 and report its table."""
    result = run_and_report("fig11")
    assert result.rows, "experiment produced no rows"
