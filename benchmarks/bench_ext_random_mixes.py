"""Extension: robustness of ProFess vs PoM on random program mixes.

Beyond the paper: random mixes sampled by memory-intensity class check
that the fairness and weighted-speedup improvements are not artifacts of
Table 10's particular compositions.

Regenerates the artifact at benchmark scale and prints the table for
row-by-row comparison with the paper (see EXPERIMENTS.md).
"""

def test_ext_random_mixes(run_and_report):
    """Regenerate ext-random-mixes and report its table."""
    result = run_and_report("ext-random-mixes")
    assert result.rows, "experiment produced no rows"
