"""Figure 5: single-program IPC of MDM normalized to PoM.

Shape target: MDM wins on average (paper: +14%, up to +38% for lbm).

Regenerates the artifact at benchmark scale and prints the table for
row-by-row comparison with the paper (see EXPERIMENTS.md).
"""

def test_fig5(run_and_report):
    """Regenerate fig5 and report its table."""
    result = run_and_report("fig5")
    assert result.rows, "experiment produced no rows"
