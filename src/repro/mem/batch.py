"""Columnar (structure-of-arrays) request storage for the channel.

The channel hot path used to walk deques of per-request ``MemRequest``
objects; at hundreds of thousands of served requests per benchmark the
allocation and attribute-chasing cost dominated the simulator.  This
module holds the replacement layout (DESIGN.md §14):

* :class:`RequestBatch` — one controller queue (reads or posted writes)
  as parallel preallocated ``int64`` columns plus a slot free-list and
  an arrival-order array.  Python-object payloads that cannot be
  columnized (completion callbacks, legacy ``MemRequest`` origins) live
  in parallel lists indexed by the same slot.
* Bank state lives in four channel-owned ``int64`` arrays indexed by a
  *global bank key* (``module * banks_per_rank + bank``); the channel
  binds :class:`memoryview` fast views for scalar access and keeps the
  numpy arrays for vectorized refresh and deep-queue scans.
* :class:`BankView` — a read-only window onto one bank's slice of those
  arrays, preserving the ``Channel.bank()`` inspection API.

The same columns are handed zero-copy to the optional compiled kernel
(:mod:`repro.mem.backend`); both backends therefore share one source of
truth for queue and bank state, which is what makes ``profess golden``
byte-identity across backends possible.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

#: Sentinel for "no row open" in the bank ``open_row`` column.  The ST
#: area uses a *negative* row namespace (``-1 - k``), so the sentinel
#: must sit far below any representable row id, not at ``-1``.
NO_ROW = -(1 << 60)

#: Initial slot capacity of a queue; grows by doubling.  The posted
#: write queue is capped at 32 plus in-flight acceptance, and read
#: queues rarely pass a few dozen entries, so one growth step is rare.
INITIAL_CAPACITY = 64


class RequestBatch:
    """One pending-request queue in columnar layout.

    Columns are parallel ``int64`` arrays indexed by *slot*; ``order``
    holds the live slots in arrival order (``order[0]`` is the oldest)
    and ``count`` is the number of live entries.  Slots are recycled
    through ``free`` (a LIFO stack); slot numbering never influences
    results — only ``order`` does.

    Scalar hot-path access goes through the bound ``*_v`` memoryviews
    (plain buffer indexing, no numpy scalar boxing); vectorized scans
    and the compiled kernel use the numpy arrays directly.  Both alias
    the same memory.
    """

    __slots__ = (
        "capacity",
        "count",
        "bank_key",
        "row",
        "is_write",
        "arrival",
        "kind",
        "order",
        "free",
        "callbacks",
        "origins",
        "bank_key_v",
        "row_v",
        "is_write_v",
        "arrival_v",
        "kind_v",
        "order_v",
    )

    def __init__(self, capacity: int = INITIAL_CAPACITY) -> None:
        self.capacity = capacity
        self.count = 0
        self.bank_key = np.zeros(capacity, dtype=np.int64)
        self.row = np.zeros(capacity, dtype=np.int64)
        self.is_write = np.zeros(capacity, dtype=np.int64)
        self.arrival = np.zeros(capacity, dtype=np.int64)
        self.kind = np.zeros(capacity, dtype=np.int64)
        self.order = np.zeros(capacity, dtype=np.int64)
        #: LIFO free-slot stack (pop from the end).
        self.free = list(range(capacity - 1, -1, -1))
        #: Per-slot completion callback (reads) or None (posted writes).
        self.callbacks: List[Optional[Callable[[int], None]]] = (
            [None] * capacity
        )
        #: Per-slot legacy MemRequest to write completion/row_hit back
        #: into (compat enqueue path only; None on the SoA fast path).
        self.origins: List[Optional[object]] = [None] * capacity
        self._bind_views()

    def _bind_views(self) -> None:
        self.bank_key_v = memoryview(self.bank_key)
        self.row_v = memoryview(self.row)
        self.is_write_v = memoryview(self.is_write)
        self.arrival_v = memoryview(self.arrival)
        self.kind_v = memoryview(self.kind)
        self.order_v = memoryview(self.order)

    def __len__(self) -> int:
        return self.count

    def _grow(self) -> None:
        """Double every column, keeping slot numbering stable."""
        old = self.capacity
        new = old * 2
        for name in ("bank_key", "row", "is_write", "arrival", "kind", "order"):
            column = np.zeros(new, dtype=np.int64)
            column[:old] = getattr(self, name)
            setattr(self, name, column)
        self.free.extend(range(new - 1, old - 1, -1))
        self.callbacks.extend([None] * old)
        self.origins.extend([None] * old)
        self.capacity = new
        self._bind_views()

    def push(
        self,
        bank_key: int,
        row: int,
        is_write: int,
        arrival: int,
        kind: int,
        callback: Optional[Callable[[int], None]],
        origin: Optional[object] = None,
    ) -> int:
        """Append a request (arrival order); returns its slot."""
        free = self.free
        if not free:
            self._grow()
            free = self.free
        slot = free.pop()
        self.bank_key_v[slot] = bank_key
        self.row_v[slot] = row
        self.is_write_v[slot] = is_write
        self.arrival_v[slot] = arrival
        self.kind_v[slot] = kind
        self.callbacks[slot] = callback
        self.origins[slot] = origin
        count = self.count
        self.order_v[count] = slot
        self.count = count + 1
        return slot

    def pop_at(self, position: int) -> int:
        """Remove the entry at arrival-order ``position``; returns its slot.

        The slot's columns stay valid until :meth:`release` recycles it —
        the channel reads them after dequeueing, exactly as the old code
        read the popped ``MemRequest``.
        """
        order = self.order_v
        slot = order[position]
        last = self.count - 1
        index = position
        while index < last:
            order[index] = order[index + 1]
            index += 1
        self.count = last
        return slot

    def release(self, slot: int) -> None:
        """Recycle a slot previously returned by :meth:`pop_at`."""
        self.callbacks[slot] = None
        self.origins[slot] = None
        self.free.append(slot)


class BankView:
    """Read-only view of one bank inside the channel's state arrays.

    Preserves the ``Channel.bank(module, index)`` inspection API (tests
    and policies) over the columnar bank state.  ``open_row`` translates
    the :data:`NO_ROW` sentinel back to ``None`` so callers see the same
    values the old per-bank objects exposed.
    """

    __slots__ = ("_open_row", "_ready_at", "_dirty", "_closed_until", "_key")

    def __init__(
        self,
        open_row: np.ndarray,
        ready_at: np.ndarray,
        dirty: np.ndarray,
        closed_until: np.ndarray,
        key: int,
    ) -> None:
        self._open_row = open_row
        self._ready_at = ready_at
        self._dirty = dirty
        self._closed_until = closed_until
        self._key = key

    @property
    def open_row(self) -> Optional[int]:
        row = int(self._open_row[self._key])
        return None if row == NO_ROW else row

    @property
    def ready_at(self) -> int:
        return int(self._ready_at[self._key])

    @property
    def dirty(self) -> bool:
        return bool(self._dirty[self._key])

    @property
    def closed_until(self) -> int:
        return int(self._closed_until[self._key])

    def is_row_hit(self, row: int) -> bool:
        """True if ``row`` is currently open in this bank's row buffer."""
        return int(self._open_row[self._key]) == row
