"""One memory channel with an M1 module and an M2 module (Figure 1).

The model is request-level and event-driven: each 64-B request picks up
bank-preparation latency (precharge + activate on a row miss, CAS only on a
row hit), then occupies the shared channel data bus for one burst.  Bank
preparation of the next request overlaps the current burst, which captures
the bank-level parallelism the open-page FR-FCFS-Cap controller exploits,
while the single data bus serializes transfers from the two modules, which
is what makes M2 traffic and swaps interfere with M1 traffic.

Swaps block the channel for the analytic swap latency (Section 4.1), and
row-buffer hits do not bypass the FR-FCFS-Cap ordering across a swap (the
paper modifies the scheduler to ignore row hits during swaps).

Since the columnar refactor (DESIGN.md §14) the channel holds its queues
as :class:`repro.mem.batch.RequestBatch` columns and its bank state as
four ``int64`` arrays indexed by the global bank key
``module * banks_per_rank + bank``.  Each scheduling decision is one
*fused tick* — selection, dequeue, refresh catch-up, timing update, and
burst in a single pass over those columns — with two interchangeable
implementations: ``_tick_python`` (memoryview scalar access, vectorized
deep-queue scan) and ``_tick_kernel`` (the :mod:`repro.mem.backend`
kernel, numba-jitted when available).  Both are byte-identical by
contract; ``profess golden --check`` under each backend enforces it.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush as _heappush
from typing import Callable, Optional

import numpy as np

from repro.common.config import MemTimings
from repro.common.events import EventQueue
from repro.mem.backend import get_tick_kernel, resolve_backend
from repro.mem.batch import NO_ROW, BankView, RequestBatch
from repro.mem.power import EnergyMeter
from repro.mem.request import MemRequest, Module
from repro.mem.scheduler import FrFcfsCapScheduler

# Module-level spellings of the channel's tuning constants: the tick
# paths read them as globals (one dict probe) instead of class-attribute
# chains.  The class attributes below alias these for the public API.
_CMD_GAP = 4
_WRITE_QUEUE_HIGH = 24
_WRITE_QUEUE_LOW = 8
_WRITE_QUEUE_CAP = 32
_VECTOR_SCAN_MIN = 64


class ChannelStats:
    """Per-channel served-traffic statistics."""

    __slots__ = (
        "reads",
        "writes",
        "row_hits",
        "swaps",
        "read_latency_sum",
        "read_count",
        "st_reads",
        "st_writes",
        "refreshes",
    )

    def __init__(self) -> None:
        self.reads = 0
        self.writes = 0
        self.row_hits = 0
        self.swaps = 0
        self.read_latency_sum = 0
        self.read_count = 0
        self.st_reads = 0
        self.st_writes = 0
        self.refreshes = 0

    @property
    def average_read_latency(self) -> float:
        """Mean read latency in CPU cycles (queueing included)."""
        if self.read_count == 0:
            return 0.0
        return self.read_latency_sum / self.read_count


class ModuleState:
    """One module's timing parameters in CPU cycles plus refresh state.

    ``MemTimings`` stores nanoseconds and converts per property access;
    the channel issues commands tens of thousands of times per simulated
    millisecond, so the conversions are done once here and the hot path
    reads plain ints.  Bank state itself lives in the channel's columnar
    arrays; ``lo:hi`` is this module's bank-key slice of them.
    """

    __slots__ = (
        "cl",
        "t_rcd",
        "t_rp",
        "t_wr",
        "t_refi",
        "t_rfc",
        "line_burst",
        "next_refresh",
        "lo",
        "hi",
    )

    def __init__(
        self, timings: MemTimings, banks_per_rank: int, base: int
    ) -> None:
        self.cl = timings.cl
        self.t_rcd = timings.t_rcd
        self.t_rp = timings.t_rp
        self.t_wr = timings.t_wr
        self.t_refi = timings.t_refi
        self.t_rfc = timings.t_rfc
        self.line_burst = timings.line_burst
        self.next_refresh = self.t_refi or (1 << 62)
        self.lo = base
        self.hi = base + banks_per_rank


class Channel:
    """A memory channel shared by one M1 rank and one M2 rank."""

    __slots__ = (
        "_events",
        "_schedule_now",
        "_modules",
        "_scheduler",
        "_energy",
        "_swap_latency",
        "_lines_per_block",
        "_row_idle_close",
        "_banks_per_rank",
        "_reads",
        "_writes",
        "_write_accept_waiters",
        "_draining_writes",
        "_bus_free_at",
        "_blocked_until",
        "_tick_scheduled",
        "_open_row",
        "_ready_at",
        "_dirty",
        "_closed_until",
        "_open_row_v",
        "_ready_at_v",
        "_dirty_v",
        "_closed_until_v",
        "_timing_table",
        "_backend",
        "_tick_cb",
        "_kernel",
        "_kernel_out",
        "_kernel_out_v",
        "stats",
    )

    def __init__(
        self,
        events: EventQueue,
        m1_timings: MemTimings,
        m2_timings: MemTimings,
        banks_per_rank: int,
        frfcfs_cap: int,
        energy: Optional[EnergyMeter] = None,
        swap_latency: int = 0,
        lines_per_block: int = 32,
        row_idle_close: int = 0,
        backend: str = "python",
    ) -> None:
        self._events = events
        # Same-cycle scheduling fast lane (the kick and posted-write
        # acceptance below always fire at the current cycle) plus the
        # general scheduler, both bound once for the tick paths.
        self._schedule_now = events.schedule_now
        # Indexed by Module (IntEnum): _modules[Module.M1] is the M1 state.
        self._modules = (
            ModuleState(m1_timings, banks_per_rank, 0),
            ModuleState(m2_timings, banks_per_rank, banks_per_rank),
        )
        self._scheduler = FrFcfsCapScheduler(frfcfs_cap)
        self._energy = energy
        self._swap_latency = swap_latency
        self._lines_per_block = lines_per_block
        self._row_idle_close = row_idle_close
        self._banks_per_rank = banks_per_rank
        # Columnar bank state, both modules back to back: key =
        # module * banks_per_rank + bank.  Scalar access goes through
        # the memoryviews; refresh and deep scans use the arrays.
        total_banks = 2 * banks_per_rank
        self._open_row = np.full(total_banks, NO_ROW, dtype=np.int64)
        self._ready_at = np.zeros(total_banks, dtype=np.int64)
        self._dirty = np.zeros(total_banks, dtype=np.int64)
        self._closed_until = np.zeros(total_banks, dtype=np.int64)
        self._open_row_v = memoryview(self._open_row)
        self._ready_at_v = memoryview(self._ready_at)
        self._dirty_v = memoryview(self._dirty)
        self._closed_until_v = memoryview(self._closed_until)
        self._reads = RequestBatch()
        self._writes = RequestBatch()
        self._write_accept_waiters: deque = deque()
        self._draining_writes = False
        self._bus_free_at = 0
        self._blocked_until = 0
        self._tick_scheduled = False
        # Per-module timing table for the compiled kernel (column
        # layout: repro.mem.backend.TIMING_*).
        self._timing_table = np.array(
            [
                [ms.cl, ms.t_rcd, ms.t_rp, ms.t_wr, ms.line_burst, ms.t_rfc,
                 ms.t_refi]
                for ms in self._modules
            ],
            dtype=np.int64,
        )
        self._backend = resolve_backend(backend)
        if self._backend == "compiled":
            self._kernel = get_tick_kernel()
            self._tick_cb = self._tick_kernel
        else:
            self._kernel = None
            self._tick_cb = self._tick_python
        self._kernel_out = np.zeros(16, dtype=np.int64)
        self._kernel_out_v = memoryview(self._kernel_out)
        self.stats = ChannelStats()

    @property
    def backend(self) -> str:
        """The resolved tick backend ("python" or "compiled")."""
        return self._backend

    def bank(self, module: Module, index: int) -> BankView:
        """One bank's state (inspection helper for tests and policies)."""
        return BankView(
            self._open_row,
            self._ready_at,
            self._dirty,
            self._closed_until,
            module * self._banks_per_rank + index,
        )

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def enqueue_soa(
        self,
        bank_key: int,
        row: int,
        is_write: bool,
        arrival: int,
        kind: int,
        on_complete: Optional[Callable[[int], None]] = None,
    ) -> None:
        """Accept a request given directly as column values.

        The allocation-free fast path: callers (the hybrid controller)
        pass the precomputed global bank key and row instead of building
        a ``MemRequest``.  Reads complete (``on_complete``) at the end
        of their data burst.  Writes are *posted*: they buffer in the
        controller's write queue, their ``on_complete`` fires at
        acceptance, and the queue drains in batches under a watermark
        policy with read priority.  When the write queue is full,
        acceptance (and thus the issuing core's store buffer)
        backpressures until entries drain.
        """
        # RequestBatch.push, inlined for both queues: one call frame per
        # request saved on the hottest producer in the simulator.
        queue = self._writes if is_write else self._reads
        free = queue.free
        if not free:
            queue._grow()
            free = queue.free
        slot = free.pop()
        queue.bank_key_v[slot] = bank_key
        queue.row_v[slot] = row
        queue.arrival_v[slot] = arrival
        queue.kind_v[slot] = kind
        count = queue.count
        queue.order_v[count] = slot
        queue.count = count + 1
        if is_write:
            queue.is_write_v[slot] = 1
            if on_complete is not None:
                if queue.count <= _WRITE_QUEUE_CAP:
                    self._schedule_now(on_complete)
                else:
                    self._write_accept_waiters.append(on_complete)
        else:
            queue.is_write_v[slot] = 0
            queue.callbacks[slot] = on_complete
        if not self._tick_scheduled:
            self._tick_scheduled = True
            self._schedule_now(self._tick_cb)

    def enqueue(self, request: MemRequest) -> None:
        """Accept a :class:`MemRequest` (compat wrapper over the columns).

        Same acceptance semantics as :meth:`enqueue_soa`; additionally
        the request object's ``completion`` and ``row_hit`` fields are
        written back when the request is issued.
        """
        address = request.address
        bank_key = address.module * self._banks_per_rank + address.bank
        if request.is_write:
            writes = self._writes
            writes.push(
                bank_key, address.row, 1, request.arrival, request.kind,
                None, request,
            )
            acceptance = request.on_complete
            request.on_complete = None
            if acceptance is not None:
                if writes.count <= self.WRITE_QUEUE_CAP:
                    self._schedule_now(acceptance)
                else:
                    self._write_accept_waiters.append(acceptance)
        else:
            self._reads.push(
                bank_key, address.row, 0, request.arrival, request.kind,
                request.on_complete, request,
            )
        if not self._tick_scheduled:
            self._tick_scheduled = True
            self._schedule_now(self._tick_cb)

    def queue_depth(self) -> int:
        """Pending (unscheduled) requests, reads + buffered writes."""
        return self._reads.count + self._writes.count

    #: Command-bus gap between consecutive scheduling decisions: one
    #: channel cycle (4 CPU cycles at 3.2/0.8 GHz).  Banks prepare in
    #: parallel; only command issue and the data bus serialize.
    CMD_GAP = _CMD_GAP
    #: Write-queue watermarks: start draining writes when the queue
    #: reaches the high mark (or no reads are waiting), stop at the low
    #: mark — the standard read-priority write-buffering discipline.
    WRITE_QUEUE_HIGH = _WRITE_QUEUE_HIGH
    WRITE_QUEUE_LOW = _WRITE_QUEUE_LOW
    #: Posted-write acceptance backpressures beyond this depth.
    WRITE_QUEUE_CAP = _WRITE_QUEUE_CAP
    #: Queue depth at which the FR-FCFS scan switches from the scalar
    #: memoryview walk to one vectorized numpy pass.  The scalar walk
    #: exits at the first hit, so the numpy fixed cost only pays off on
    #: deep queues; ordinary write-drain bursts (depth <= 32) measure
    #: faster scalar.
    VECTOR_SCAN_MIN = _VECTOR_SCAN_MIN

    def _select_queue(self) -> RequestBatch:
        """Pick reads or buffered writes for the next decision.

        Only called from the tick paths with a non-empty write queue;
        kept as a method for the watermark logic's readability and for
        direct unit testing.
        """
        if not self._reads.count:
            self._draining_writes = True
            return self._writes
        if self._writes.count >= self.WRITE_QUEUE_HIGH:
            self._draining_writes = True
        elif self._draining_writes and self._writes.count <= self.WRITE_QUEUE_LOW:
            self._draining_writes = False
        return self._writes if self._draining_writes else self._reads

    def _tick_python(self, now: int) -> None:
        """One fused scheduling decision: the pure-Python backend.

        Selection, dequeue, refresh catch-up, bank timing, stats, and
        completion scheduling in a single pass — no per-request objects,
        no nested per-event calls.  Mirrored exactly by the compiled
        kernel (:func:`repro.mem.backend.mem_tick`).
        """
        self._tick_scheduled = False
        reads = self._reads
        writes = self._writes
        if writes.count:
            # _select_queue, inlined (kept as a method for unit tests):
            # the read-priority write-drain watermark policy.
            if not reads.count or writes.count >= _WRITE_QUEUE_HIGH:
                self._draining_writes = True
                queue = writes
            else:
                if (
                    self._draining_writes
                    and writes.count <= _WRITE_QUEUE_LOW
                ):
                    self._draining_writes = False
                queue = writes if self._draining_writes else reads
        elif reads.count:
            # Fast path: no buffered writes — reads drain, and any write
            # drain mode ends (exactly what _select_queue would decide).
            self._draining_writes = False
            queue = reads
        else:
            return
        order = queue.order_v
        keys = queue.bank_key_v
        rows = queue.row_v
        open_row = self._open_row_v
        count = queue.count
        scheduler = self._scheduler
        streak = scheduler._consecutive_hits
        # --- FR-FCFS-Cap selection (pre-refresh bank state) ---
        if count == 1:
            chosen = 0
            slot = order[0]
            if open_row[keys[slot]] == rows[slot]:
                scheduler._consecutive_hits = streak + 1
            else:
                scheduler._consecutive_hits = 0
        else:
            chosen = -1
            if streak < scheduler.cap:
                if count >= _VECTOR_SCAN_MIN:
                    live = queue.order[:count]
                    hits = (
                        self._open_row[queue.bank_key[live]]
                        == queue.row[live]
                    )
                    first = hits.argmax()
                    if hits[first]:
                        chosen = int(first)
                else:
                    index = 0
                    while index < count:
                        slot = order[index]
                        if open_row[keys[slot]] == rows[slot]:
                            chosen = index
                            break
                        index += 1
            if chosen >= 0:
                scheduler._consecutive_hits = streak + 1
            else:
                chosen = 0
                slot = order[0]
                if open_row[keys[slot]] == rows[slot]:
                    scheduler._consecutive_hits = streak + 1
                else:
                    scheduler._consecutive_hits = 0
            slot = order[chosen]
        # --- dequeue: shift the arrival order over the gap ---
        last = count - 1
        index = chosen
        while index < last:
            order[index] = order[index + 1]
            index += 1
        queue.count = last
        if (
            self._write_accept_waiters
            and writes.count <= _WRITE_QUEUE_CAP
        ):
            self._schedule_now(self._write_accept_waiters.popleft())
        # --- issue: refresh catch-up, bank preparation, data burst ---
        key = keys[slot]
        module = 1 if key >= self._banks_per_rank else 0
        module_state = self._modules[module]
        if now >= module_state.next_refresh:
            self._refresh_if_due(module_state, now)
        ready = self._ready_at_v
        dirty = self._dirty_v
        bank_ready = ready[key]
        prep_start = now if now > bank_ready else bank_ready
        if self._blocked_until > prep_start:
            prep_start = self._blocked_until
        orow = open_row[key]
        row_idle_close = self._row_idle_close
        if (
            row_idle_close > 0
            and orow != NO_ROW
            and prep_start - bank_ready >= row_idle_close
        ):
            # Adaptive page policy: the controller precharged this idle
            # row in the background.  The precharge (and write recovery,
            # for a dirty row) happened off the critical path; only its
            # tail can still delay a prompt re-activation.
            penalty = module_state.t_rp + (
                module_state.t_wr if dirty[key] else 0
            )
            self._closed_until_v[key] = bank_ready + row_idle_close + penalty
            orow = NO_ROW
            dirty[key] = 0
        row = rows[slot]
        is_write = queue.is_write_v[slot]
        energy = self._energy
        if orow == row:
            # Row-buffer hit: CAS only; writes land in the row buffer
            # and defer their cell-write cost to the eventual precharge.
            row_hit = True
            data_ready = prep_start + module_state.cl
            new_dirty = 1 if is_write else dirty[key]
        else:
            row_hit = False
            precharge = 0
            if orow != NO_ROW:
                precharge = module_state.t_rp
                if dirty[key]:
                    # Write recovery: the dirty row must finish writing
                    # to the array before the precharge (tWR_M2 = 275 ns
                    # makes this the dominant NVM write cost, Sec. 4.1).
                    precharge += module_state.t_wr
            else:
                closed_until = self._closed_until_v[key]
                if closed_until > prep_start:
                    precharge = closed_until - prep_start
            data_ready = (
                prep_start + precharge + module_state.t_rcd + module_state.cl
            )
            if energy is not None:
                energy.activates[module] += 1
            new_dirty = is_write
        burst_start = data_ready
        if self._bus_free_at > burst_start:
            burst_start = self._bus_free_at
        burst_end = burst_start + module_state.line_burst
        self._bus_free_at = burst_end
        open_row[key] = row
        ready[key] = burst_end
        dirty[key] = new_dirty
        # --- record served traffic and schedule the completion ---
        stats = self.stats
        kind = queue.kind_v[slot]
        if kind == 0:  # RequestKind.DATA
            # Demand traffic first: it dominates the served stream.
            if is_write:
                stats.writes += 1
            else:
                stats.reads += 1
                # Latency statistics track demand reads only (AMMAT).
                stats.read_latency_sum += burst_end - queue.arrival_v[slot]
                stats.read_count += 1
        else:
            if kind == 1:  # RequestKind.ST_READ
                stats.st_reads += 1
            else:
                stats.st_writes += 1
            if is_write:
                stats.writes += 1
            else:
                stats.reads += 1
        if row_hit:
            stats.row_hits += 1
        if energy is not None:
            counters = energy.line_writes if is_write else energy.line_reads
            counters[module] += 1
        origins = queue.origins
        origin = origins[slot]
        if origin is not None:
            origin.completion = burst_end
            origin.row_hit = row_hit
            origins[slot] = None
        callbacks = queue.callbacks
        callback = callbacks[slot]
        # Inline-push contract (events.py): both targets are strictly
        # future cycles (burst_end >= now + CL + burst, the next tick is
        # now + CMD_GAP), so they go straight onto the heap.
        events = self._events
        heap = events._heap
        if callback is not None:
            seq = events._seq
            _heappush(heap, (burst_end, seq, callback))
            events._seq = seq + 1
            callbacks[slot] = None
        # RequestBatch.release, inlined (origins/callbacks cleared only
        # when set — the SoA fast path leaves both None).
        queue.free.append(slot)
        if reads.count or writes.count:
            self._tick_scheduled = True
            seq = events._seq
            _heappush(heap, (now + _CMD_GAP, seq, self._tick_cb))
            events._seq = seq + 1

    def _tick_kernel(self, now: int) -> None:
        """One fused scheduling decision via the compiled backend.

        Queue choice, stats, and callback scheduling stay in Python;
        the integer-only core (selection, dequeue, refresh, timing) runs
        in :func:`repro.mem.backend.mem_tick` over the shared columns.
        """
        self._tick_scheduled = False
        reads = self._reads
        writes = self._writes
        if writes.count:
            queue = self._select_queue()
        elif reads.count:
            self._draining_writes = False
            queue = reads
        else:
            return
        scheduler = self._scheduler
        modules = self._modules
        out = self._kernel_out
        self._kernel(
            queue.order,
            queue.count,
            queue.bank_key,
            queue.row,
            queue.is_write,
            self._open_row,
            self._ready_at,
            self._dirty,
            self._closed_until,
            self._timing_table,
            self._banks_per_rank,
            scheduler._consecutive_hits,
            scheduler.cap,
            now,
            self._bus_free_at,
            self._blocked_until,
            modules[0].next_refresh,
            modules[1].next_refresh,
            self._row_idle_close,
            out,
        )
        out_v = self._kernel_out_v
        slot = out_v[0]
        module = out_v[1]
        burst_end = out_v[2]
        row_hit = bool(out_v[3])
        refreshes = out_v[5]
        scheduler._consecutive_hits = out_v[6]
        self._bus_free_at = out_v[7]
        modules[module].next_refresh = out_v[8]
        queue.count -= 1
        if (
            self._write_accept_waiters
            and writes.count <= self.WRITE_QUEUE_CAP
        ):
            self._schedule_now(self._write_accept_waiters.popleft())
        stats = self.stats
        energy = self._energy
        if refreshes:
            stats.refreshes += refreshes
            if energy is not None:
                index = 0
                while index < refreshes:
                    energy.record_refresh()
                    index += 1
        if out_v[4] and energy is not None:
            energy.activates[module] += 1
        is_write = queue.is_write_v[slot]
        kind = queue.kind_v[slot]
        if kind == 0:  # RequestKind.DATA
            if is_write:
                stats.writes += 1
            else:
                stats.reads += 1
                stats.read_latency_sum += burst_end - queue.arrival_v[slot]
                stats.read_count += 1
        else:
            if kind == 1:  # RequestKind.ST_READ
                stats.st_reads += 1
            else:
                stats.st_writes += 1
            if is_write:
                stats.writes += 1
            else:
                stats.reads += 1
        if row_hit:
            stats.row_hits += 1
        if energy is not None:
            counters = energy.line_writes if is_write else energy.line_reads
            counters[module] += 1
        origins = queue.origins
        origin = origins[slot]
        if origin is not None:
            origin.completion = burst_end
            origin.row_hit = row_hit
            origins[slot] = None
        callbacks = queue.callbacks
        callback = callbacks[slot]
        # Inline-push contract (events.py): both targets are strictly
        # future cycles, same as the python tick.
        events = self._events
        heap = events._heap
        if callback is not None:
            seq = events._seq
            _heappush(heap, (burst_end, seq, callback))
            events._seq = seq + 1
            callbacks[slot] = None
        # RequestBatch.release, inlined (origins/callbacks cleared only
        # when set — the SoA fast path leaves both None).
        queue.free.append(slot)
        if reads.count or writes.count:
            self._tick_scheduled = True
            seq = events._seq
            _heappush(heap, (now + _CMD_GAP, seq, self._tick_cb))
            events._seq = seq + 1

    def _refresh_if_due(self, module_state: ModuleState, now: int) -> None:
        """Apply any refresh cycles that elapsed on the module by ``now``.

        Refresh is all-bank: every bank closes its row and stays busy for
        tRFC.  M2 (NVM) configures t_refi = 0 and never refreshes
        (Section 4.1).  Processing lazily at request issue is exact for
        timing because refresh only matters when traffic arrives.
        Vectorized over the module's bank-key slice.
        """
        lo = module_state.lo
        hi = module_state.hi
        ready_slice = self._ready_at[lo:hi]
        while now >= module_state.next_refresh:
            start = module_state.next_refresh
            end = start + module_state.t_rfc
            self._open_row[lo:hi] = NO_ROW
            self._dirty[lo:hi] = 0
            np.maximum(ready_slice, end, out=ready_slice)
            module_state.next_refresh = start + module_state.t_refi
            self.stats.refreshes += 1
            if self._energy is not None:
                self._energy.record_refresh()

    # ------------------------------------------------------------------
    # Swaps
    # ------------------------------------------------------------------
    def schedule_swap(
        self,
        m1_bank: int,
        m1_row: int,
        m2_bank: int,
        m2_row: int,
        on_complete: Optional[Callable[[int], None]] = None,
    ) -> int:
        """Block the channel for one 2-KB/2-KB swap; returns completion cycle.

        The swap starts once the bus and any earlier swap finish.  Involved
        banks end with the respective rows open (the blocks were just
        rewritten), and the FR-FCFS-Cap row-hit streak is reset, modelling
        the paper's modification of ignoring row hits during swaps.
        """
        now = self._events.now
        start = max(now, self._bus_free_at, self._blocked_until)
        end = start + self._swap_latency
        self._blocked_until = end
        self._bus_free_at = end
        # Both blocks were just rewritten: the involved rows end up open
        # and dirty (their array write-back is pending).
        m1_key = m1_bank
        m2_key = self._banks_per_rank + m2_bank
        self._open_row_v[m1_key] = m1_row
        self._ready_at_v[m1_key] = end
        self._dirty_v[m1_key] = 1
        self._open_row_v[m2_key] = m2_row
        self._ready_at_v[m2_key] = end
        self._dirty_v[m2_key] = 1
        self._scheduler.reset_streak()
        self.stats.swaps += 1
        if self._energy is not None:
            lines = self._lines_per_block
            self._energy.record_activate(Module.M1)
            self._energy.record_activate(Module.M2)
            self._energy.record_line(Module.M1, is_write=False, count=lines)
            self._energy.record_line(Module.M2, is_write=False, count=lines)
            self._energy.record_line(Module.M1, is_write=True, count=lines)
            self._energy.record_line(Module.M2, is_write=True, count=lines)
        if on_complete is not None:
            self._events.schedule(end, on_complete)
        return end

    @property
    def blocked_until(self) -> int:
        """Cycle until which the channel is blocked by a swap."""
        return self._blocked_until
