"""One memory channel with an M1 module and an M2 module (Figure 1).

The model is request-level and event-driven: each 64-B request picks up
bank-preparation latency (precharge + activate on a row miss, CAS only on a
row hit), then occupies the shared channel data bus for one burst.  Bank
preparation of the next request overlaps the current burst, which captures
the bank-level parallelism the open-page FR-FCFS-Cap controller exploits,
while the single data bus serializes transfers from the two modules, which
is what makes M2 traffic and swaps interfere with M1 traffic.

Swaps block the channel for the analytic swap latency (Section 4.1), and
row-buffer hits do not bypass the FR-FCFS-Cap ordering across a swap (the
paper modifies the scheduler to ignore row hits during swaps).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.common.config import MemTimings
from repro.common.events import EventQueue
from repro.mem.bank import Bank
from repro.mem.power import EnergyMeter
from repro.mem.request import MemRequest, Module, RequestKind
from repro.mem.scheduler import FrFcfsCapScheduler


class ChannelStats:
    """Per-channel served-traffic statistics."""

    __slots__ = (
        "reads",
        "writes",
        "row_hits",
        "swaps",
        "read_latency_sum",
        "read_count",
        "st_reads",
        "st_writes",
        "refreshes",
    )

    def __init__(self) -> None:
        self.reads = 0
        self.writes = 0
        self.row_hits = 0
        self.swaps = 0
        self.read_latency_sum = 0
        self.read_count = 0
        self.st_reads = 0
        self.st_writes = 0
        self.refreshes = 0

    @property
    def average_read_latency(self) -> float:
        """Mean read latency in CPU cycles (queueing included)."""
        if self.read_count == 0:
            return 0.0
        return self.read_latency_sum / self.read_count


class ModuleState:
    """One module's banks plus its timing parameters in CPU cycles.

    ``MemTimings`` stores nanoseconds and converts per property access;
    the channel issues commands tens of thousands of times per simulated
    millisecond, so the conversions are done once here and the hot path
    reads plain ints.  This is also the single home for the
    banks-plus-timings pattern that used to be spelled out twice (once
    per module) in ``Channel.__init__``.
    """

    __slots__ = (
        "banks",
        "cl",
        "t_rcd",
        "t_rp",
        "t_wr",
        "t_refi",
        "t_rfc",
        "line_burst",
        "next_refresh",
    )

    def __init__(self, timings: MemTimings, banks_per_rank: int) -> None:
        self.banks = [Bank() for _ in range(banks_per_rank)]
        self.cl = timings.cl
        self.t_rcd = timings.t_rcd
        self.t_rp = timings.t_rp
        self.t_wr = timings.t_wr
        self.t_refi = timings.t_refi
        self.t_rfc = timings.t_rfc
        self.line_burst = timings.line_burst
        self.next_refresh = self.t_refi or (1 << 62)


class Channel:
    """A memory channel shared by one M1 rank and one M2 rank."""

    __slots__ = (
        "_events",
        "_schedule_now",
        "_modules",
        "_scheduler",
        "_energy",
        "_swap_latency",
        "_lines_per_block",
        "_row_idle_close",
        "_pending",
        "_write_queue",
        "_write_accept_waiters",
        "_draining_writes",
        "_bus_free_at",
        "_blocked_until",
        "_tick_scheduled",
        "stats",
    )

    def __init__(
        self,
        events: EventQueue,
        m1_timings: MemTimings,
        m2_timings: MemTimings,
        banks_per_rank: int,
        frfcfs_cap: int,
        energy: Optional[EnergyMeter] = None,
        swap_latency: int = 0,
        lines_per_block: int = 32,
        row_idle_close: int = 0,
    ) -> None:
        self._events = events
        # Same-cycle scheduling fast lane (the kick and posted-write
        # acceptance below always fire at the current cycle).
        self._schedule_now = events.schedule_now
        # Indexed by Module (IntEnum): _modules[Module.M1] is the M1 state.
        self._modules = (
            ModuleState(m1_timings, banks_per_rank),
            ModuleState(m2_timings, banks_per_rank),
        )
        self._scheduler = FrFcfsCapScheduler(frfcfs_cap)
        self._energy = energy
        self._swap_latency = swap_latency
        self._lines_per_block = lines_per_block
        self._row_idle_close = row_idle_close
        self._pending: deque[MemRequest] = deque()
        self._write_queue: deque[MemRequest] = deque()
        self._write_accept_waiters: deque = deque()
        self._draining_writes = False
        self._bus_free_at = 0
        self._blocked_until = 0
        self._tick_scheduled = False
        self.stats = ChannelStats()

    def bank(self, module: Module, index: int) -> Bank:
        """One bank's state (inspection helper for tests and policies)."""
        return self._modules[module].banks[index]

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def enqueue(self, request: MemRequest) -> None:
        """Accept a request.

        Reads complete (``on_complete``) at the end of their data burst.
        Writes are *posted*: they buffer in the controller's write queue,
        their ``on_complete`` fires at acceptance, and the queue drains in
        batches under a watermark policy with read priority.  When the
        write queue is full, acceptance (and thus the issuing core's
        store buffer) backpressures until entries drain.
        """
        if request.is_write:
            self._write_queue.append(request)
            acceptance = request.on_complete
            request.on_complete = None
            if acceptance is not None:
                if len(self._write_queue) <= self.WRITE_QUEUE_CAP:
                    self._schedule_now(acceptance)
                else:
                    self._write_accept_waiters.append(acceptance)
        else:
            self._pending.append(request)
        if not self._tick_scheduled:
            self._tick_scheduled = True
            self._schedule_now(self._tick)

    def queue_depth(self) -> int:
        """Pending (unscheduled) requests, reads + buffered writes."""
        return len(self._pending) + len(self._write_queue)

    def _is_row_hit(self, request: MemRequest) -> bool:
        address = request.address
        bank = self._modules[address.module].banks[address.bank]
        return bank.open_row == address.row

    #: Command-bus gap between consecutive scheduling decisions: one
    #: channel cycle (4 CPU cycles at 3.2/0.8 GHz).  Banks prepare in
    #: parallel; only command issue and the data bus serialize.
    CMD_GAP = 4
    #: Write-queue watermarks: start draining writes when the queue
    #: reaches the high mark (or no reads are waiting), stop at the low
    #: mark — the standard read-priority write-buffering discipline.
    WRITE_QUEUE_HIGH = 24
    WRITE_QUEUE_LOW = 8
    #: Posted-write acceptance backpressures beyond this depth.
    WRITE_QUEUE_CAP = 32

    def _select_queue(self) -> deque:
        """Pick reads or buffered writes for the next decision."""
        if not self._pending:
            self._draining_writes = bool(self._write_queue)
            return self._write_queue
        if len(self._write_queue) >= self.WRITE_QUEUE_HIGH:
            self._draining_writes = True
        elif self._draining_writes and len(self._write_queue) <= self.WRITE_QUEUE_LOW:
            self._draining_writes = False
        return self._write_queue if self._draining_writes else self._pending

    def _tick(self, now: int) -> None:
        self._tick_scheduled = False
        pending = self._pending
        write_queue = self._write_queue
        if write_queue:
            queue = self._select_queue()
            if not queue:
                queue = pending or write_queue
        elif pending:
            # Fast path: no buffered writes — reads drain, and any write
            # drain mode ends (exactly what _select_queue would decide).
            self._draining_writes = False
            queue = pending
        else:
            return
        index = self._scheduler.select(queue, self._is_row_hit)
        request = queue[index]
        del queue[index]
        if (
            self._write_accept_waiters
            and len(write_queue) <= self.WRITE_QUEUE_CAP
        ):
            self._schedule_now(self._write_accept_waiters.popleft())
        self._issue(request, now)
        if pending or write_queue:
            self._tick_scheduled = True
            self._events.schedule(now + self.CMD_GAP, self._tick)

    def _refresh_if_due(self, module_state: ModuleState, now: int) -> None:
        """Apply any refresh cycles that elapsed on the module by ``now``.

        Refresh is all-bank: every bank closes its row and stays busy for
        tRFC.  M2 (NVM) configures t_refi = 0 and never refreshes
        (Section 4.1).  Processing lazily at request issue is exact for
        timing because refresh only matters when traffic arrives.
        """
        while now >= module_state.next_refresh:
            start = module_state.next_refresh
            end = start + module_state.t_rfc
            for bank in module_state.banks:
                bank.close()
                bank.reserve(end)
            module_state.next_refresh = start + module_state.t_refi
            self.stats.refreshes += 1
            if self._energy is not None:
                self._energy.record_refresh()

    def _issue(self, request: MemRequest, now: int) -> None:
        """Schedule one request's commands and data burst.

        Bank-state reads and the final ``bank.open`` are inlined (plain
        slot loads/stores): this method runs once per served request.
        """
        address = request.address
        module = address.module
        module_state = self._modules[module]
        if now >= module_state.next_refresh:
            self._refresh_if_due(module_state, now)
        bank = module_state.banks[address.bank]

        bank_ready = bank.ready_at
        prep_start = now if now > bank_ready else bank_ready
        if self._blocked_until > prep_start:
            prep_start = self._blocked_until
        open_row = bank.open_row
        row_idle_close = self._row_idle_close
        if (
            row_idle_close > 0
            and open_row is not None
            and prep_start - bank_ready >= row_idle_close
        ):
            # Adaptive page policy: the controller precharged this idle row
            # in the background.  The precharge (and write recovery, for a
            # dirty row) happened off the critical path; only its tail can
            # still delay a prompt re-activation.
            close_began = bank_ready + row_idle_close
            penalty = module_state.t_rp + (module_state.t_wr if bank.dirty else 0)
            bank.closed_until = close_began + penalty
            bank.open_row = open_row = None
            bank.dirty = False
        row = address.row
        is_write = request.is_write
        if open_row == row:
            # Row-buffer hit: CAS only; writes land in the row buffer and
            # defer their cell-write cost to the eventual precharge.
            request.row_hit = True
            data_ready = prep_start + module_state.cl
            dirty = is_write or bank.dirty
        else:
            request.row_hit = False
            precharge = 0
            if open_row is not None:
                precharge = module_state.t_rp
                if bank.dirty:
                    # Write recovery: the dirty row must finish writing to
                    # the array before the precharge (tWR_M2 = 275 ns makes
                    # this the dominant NVM write cost, Section 4.1).
                    precharge += module_state.t_wr
            elif bank.closed_until > prep_start:
                precharge = bank.closed_until - prep_start
            data_ready = (
                prep_start + precharge + module_state.t_rcd + module_state.cl
            )
            energy = self._energy
            if energy is not None:
                energy.activates[module] += 1
            dirty = is_write
        burst_start = data_ready
        if self._bus_free_at > burst_start:
            burst_start = self._bus_free_at
        burst_end = burst_start + module_state.line_burst
        self._bus_free_at = burst_end

        # bank.open(row, burst_end, dirty), inlined.
        bank.open_row = row
        bank.ready_at = burst_end
        bank.dirty = dirty

        request.completion = burst_end
        self._record(request, burst_end)
        if request.on_complete is not None:
            self._events.schedule(burst_end, request.on_complete)

    def _record(self, request: MemRequest, completion: int) -> None:
        stats = self.stats
        kind = request.kind
        is_write = request.is_write
        if kind is RequestKind.DATA:
            # Demand traffic first: it dominates the served stream.
            if is_write:
                stats.writes += 1
            else:
                stats.reads += 1
                # Latency statistics track demand reads only (AMMAT).
                stats.read_latency_sum += completion - request.arrival
                stats.read_count += 1
        else:
            if kind is RequestKind.ST_READ:
                stats.st_reads += 1
            else:
                stats.st_writes += 1
            if is_write:
                stats.writes += 1
            else:
                stats.reads += 1
        if request.row_hit:
            stats.row_hits += 1
        energy = self._energy
        if energy is not None:
            counters = energy.line_writes if is_write else energy.line_reads
            counters[request.address.module] += 1

    # ------------------------------------------------------------------
    # Swaps
    # ------------------------------------------------------------------
    def schedule_swap(
        self,
        m1_bank: int,
        m1_row: int,
        m2_bank: int,
        m2_row: int,
        on_complete: Optional[Callable[[int], None]] = None,
    ) -> int:
        """Block the channel for one 2-KB/2-KB swap; returns completion cycle.

        The swap starts once the bus and any earlier swap finish.  Involved
        banks end with the respective rows open (the blocks were just
        rewritten), and the FR-FCFS-Cap row-hit streak is reset, modelling
        the paper's modification of ignoring row hits during swaps.
        """
        now = self._events.now
        start = max(now, self._bus_free_at, self._blocked_until)
        end = start + self._swap_latency
        self._blocked_until = end
        self._bus_free_at = end
        # Both blocks were just rewritten: the involved rows end up open
        # and dirty (their array write-back is pending).
        self._modules[Module.M1].banks[m1_bank].open(m1_row, end, dirty=True)
        self._modules[Module.M2].banks[m2_bank].open(m2_row, end, dirty=True)
        self._scheduler.reset_streak()
        self.stats.swaps += 1
        if self._energy is not None:
            lines = self._lines_per_block
            self._energy.record_activate(Module.M1)
            self._energy.record_activate(Module.M2)
            self._energy.record_line(Module.M1, is_write=False, count=lines)
            self._energy.record_line(Module.M2, is_write=False, count=lines)
            self._energy.record_line(Module.M1, is_write=True, count=lines)
            self._energy.record_line(Module.M2, is_write=True, count=lines)
        if on_complete is not None:
            self._events.schedule(end, on_complete)
        return end

    @property
    def blocked_until(self) -> int:
        """Cycle until which the channel is blocked by a swap."""
        return self._blocked_until
