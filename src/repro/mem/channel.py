"""One memory channel with an M1 module and an M2 module (Figure 1).

The model is request-level and event-driven: each 64-B request picks up
bank-preparation latency (precharge + activate on a row miss, CAS only on a
row hit), then occupies the shared channel data bus for one burst.  Bank
preparation of the next request overlaps the current burst, which captures
the bank-level parallelism the open-page FR-FCFS-Cap controller exploits,
while the single data bus serializes transfers from the two modules, which
is what makes M2 traffic and swaps interfere with M1 traffic.

Swaps block the channel for the analytic swap latency (Section 4.1), and
row-buffer hits do not bypass the FR-FCFS-Cap ordering across a swap (the
paper modifies the scheduler to ignore row hits during swaps).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.common.config import MemTimings
from repro.common.events import EventQueue
from repro.mem.bank import Bank
from repro.mem.power import EnergyMeter
from repro.mem.request import MemRequest, Module, RequestKind
from repro.mem.scheduler import FrFcfsCapScheduler


class ChannelStats:
    """Per-channel served-traffic statistics."""

    __slots__ = (
        "reads",
        "writes",
        "row_hits",
        "swaps",
        "read_latency_sum",
        "read_count",
        "st_reads",
        "st_writes",
        "refreshes",
    )

    def __init__(self) -> None:
        self.reads = 0
        self.writes = 0
        self.row_hits = 0
        self.swaps = 0
        self.read_latency_sum = 0
        self.read_count = 0
        self.st_reads = 0
        self.st_writes = 0
        self.refreshes = 0

    @property
    def average_read_latency(self) -> float:
        """Mean read latency in CPU cycles (queueing included)."""
        if self.read_count == 0:
            return 0.0
        return self.read_latency_sum / self.read_count


class Channel:
    """A memory channel shared by one M1 rank and one M2 rank."""

    def __init__(
        self,
        events: EventQueue,
        m1_timings: MemTimings,
        m2_timings: MemTimings,
        banks_per_rank: int,
        frfcfs_cap: int,
        energy: Optional[EnergyMeter] = None,
        swap_latency: int = 0,
        lines_per_block: int = 32,
        row_idle_close: int = 0,
    ) -> None:
        self._events = events
        self._timings = {Module.M1: m1_timings, Module.M2: m2_timings}
        self._banks = {
            Module.M1: [Bank() for _ in range(banks_per_rank)],
            Module.M2: [Bank() for _ in range(banks_per_rank)],
        }
        self._scheduler = FrFcfsCapScheduler(frfcfs_cap)
        self._energy = energy
        self._swap_latency = swap_latency
        self._lines_per_block = lines_per_block
        self._row_idle_close = row_idle_close
        self._pending: deque[MemRequest] = deque()
        self._write_queue: deque[MemRequest] = deque()
        self._write_accept_waiters: deque = deque()
        self._draining_writes = False
        self._next_refresh = {
            Module.M1: m1_timings.t_refi or (1 << 62),
            Module.M2: m2_timings.t_refi or (1 << 62),
        }
        self._bus_free_at = 0
        self._blocked_until = 0
        self._tick_scheduled = False
        self.stats = ChannelStats()

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def enqueue(self, request: MemRequest) -> None:
        """Accept a request.

        Reads complete (``on_complete``) at the end of their data burst.
        Writes are *posted*: they buffer in the controller's write queue,
        their ``on_complete`` fires at acceptance, and the queue drains in
        batches under a watermark policy with read priority.  When the
        write queue is full, acceptance (and thus the issuing core's
        store buffer) backpressures until entries drain.
        """
        if request.is_write:
            self._write_queue.append(request)
            acceptance = request.on_complete
            request.on_complete = None
            if acceptance is not None:
                if len(self._write_queue) <= self.WRITE_QUEUE_CAP:
                    self._events.schedule(self._events.now, acceptance)
                else:
                    self._write_accept_waiters.append(acceptance)
        else:
            self._pending.append(request)
        self._kick(self._events.now)

    def queue_depth(self) -> int:
        """Pending (unscheduled) requests, reads + buffered writes."""
        return len(self._pending) + len(self._write_queue)

    def _kick(self, now: int) -> None:
        if self._tick_scheduled:
            return
        if not self._pending and not self._write_queue:
            return
        self._tick_scheduled = True
        self._events.schedule(max(now, self._events.now), self._tick)

    def _is_row_hit(self, request: MemRequest) -> bool:
        bank = self._banks[request.address.module][request.address.bank]
        return bank.is_row_hit(request.address.row)

    #: Command-bus gap between consecutive scheduling decisions: one
    #: channel cycle (4 CPU cycles at 3.2/0.8 GHz).  Banks prepare in
    #: parallel; only command issue and the data bus serialize.
    CMD_GAP = 4
    #: Write-queue watermarks: start draining writes when the queue
    #: reaches the high mark (or no reads are waiting), stop at the low
    #: mark — the standard read-priority write-buffering discipline.
    WRITE_QUEUE_HIGH = 24
    WRITE_QUEUE_LOW = 8
    #: Posted-write acceptance backpressures beyond this depth.
    WRITE_QUEUE_CAP = 32

    def _select_queue(self) -> deque:
        """Pick reads or buffered writes for the next decision."""
        if not self._pending:
            self._draining_writes = bool(self._write_queue)
            return self._write_queue
        if len(self._write_queue) >= self.WRITE_QUEUE_HIGH:
            self._draining_writes = True
        elif self._draining_writes and len(self._write_queue) <= self.WRITE_QUEUE_LOW:
            self._draining_writes = False
        return self._write_queue if self._draining_writes else self._pending

    def _tick(self, now: int) -> None:
        self._tick_scheduled = False
        if not self._pending and not self._write_queue:
            return
        queue = self._select_queue()
        if not queue:
            queue = self._pending or self._write_queue
        index = self._scheduler.select(list(queue), self._is_row_hit)
        request = queue[index]
        del queue[index]
        if (
            self._write_accept_waiters
            and len(self._write_queue) <= self.WRITE_QUEUE_CAP
        ):
            self._events.schedule(now, self._write_accept_waiters.popleft())
        self._issue(request, now)
        if self._pending or self._write_queue:
            self._tick_scheduled = True
            self._events.schedule(now + self.CMD_GAP, self._tick)

    def _refresh_if_due(self, module: Module, now: int) -> None:
        """Apply any refresh cycles that elapsed on ``module`` by ``now``.

        Refresh is all-bank: every bank closes its row and stays busy for
        tRFC.  M2 (NVM) configures t_refi = 0 and never refreshes
        (Section 4.1).  Processing lazily at request issue is exact for
        timing because refresh only matters when traffic arrives.
        """
        timings = self._timings[module]
        if timings.t_refi == 0:
            return
        while now >= self._next_refresh[module]:
            start = self._next_refresh[module]
            end = start + timings.t_rfc
            for bank in self._banks[module]:
                bank.close()
                bank.reserve(end)
            self._next_refresh[module] = start + timings.t_refi
            self.stats.refreshes += 1
            if self._energy is not None:
                self._energy.record_refresh()

    def _issue(self, request: MemRequest, now: int) -> None:
        """Schedule one request's commands and data burst."""
        address = request.address
        timings = self._timings[address.module]
        self._refresh_if_due(address.module, now)
        bank = self._banks[address.module][address.bank]

        prep_start = max(now, bank.ready_at, self._blocked_until)
        if (
            bank.open_row is not None
            and self._row_idle_close > 0
            and prep_start - bank.ready_at >= self._row_idle_close
        ):
            # Adaptive page policy: the controller precharged this idle row
            # in the background.  The precharge (and write recovery, for a
            # dirty row) happened off the critical path; only its tail can
            # still delay a prompt re-activation.
            close_began = bank.ready_at + self._row_idle_close
            penalty = timings.t_rp + (timings.t_wr if bank.dirty else 0)
            bank.closed_until = close_began + penalty
            bank.close()
        if bank.is_row_hit(address.row):
            # Row-buffer hit: CAS only; writes land in the row buffer and
            # defer their cell-write cost to the eventual precharge.
            request.row_hit = True
            data_ready = prep_start + timings.cl
        else:
            request.row_hit = False
            precharge = 0
            if bank.open_row is not None:
                precharge = timings.t_rp
                if bank.dirty:
                    # Write recovery: the dirty row must finish writing to
                    # the array before the precharge (tWR_M2 = 275 ns makes
                    # this the dominant NVM write cost, Section 4.1).
                    precharge += timings.t_wr
            elif bank.closed_until > prep_start:
                precharge = bank.closed_until - prep_start
            data_ready = prep_start + precharge + timings.t_rcd + timings.cl
            if self._energy is not None:
                self._energy.record_activate(address.module)
        burst_start = max(data_ready, self._bus_free_at)
        burst_end = burst_start + timings.line_burst
        self._bus_free_at = burst_end

        was_dirty_hit = request.row_hit and bank.dirty
        bank.open(
            address.row,
            burst_end,
            dirty=request.is_write or was_dirty_hit,
        )

        request.completion = burst_end
        self._record(request, burst_end)
        if request.on_complete is not None:
            self._events.schedule(burst_end, request.on_complete)

    def _record(self, request: MemRequest, completion: int) -> None:
        stats = self.stats
        if request.kind is RequestKind.ST_READ:
            stats.st_reads += 1
        elif request.kind is RequestKind.ST_WRITE:
            stats.st_writes += 1
        if request.is_write:
            stats.writes += 1
        else:
            stats.reads += 1
            if request.kind is RequestKind.DATA:
                # Latency statistics track demand reads only (AMMAT).
                stats.read_latency_sum += completion - request.arrival
                stats.read_count += 1
        if request.row_hit:
            stats.row_hits += 1
        if self._energy is not None:
            self._energy.record_line(request.address.module, request.is_write)

    # ------------------------------------------------------------------
    # Swaps
    # ------------------------------------------------------------------
    def schedule_swap(
        self,
        m1_bank: int,
        m1_row: int,
        m2_bank: int,
        m2_row: int,
        on_complete: Optional[Callable[[int], None]] = None,
    ) -> int:
        """Block the channel for one 2-KB/2-KB swap; returns completion cycle.

        The swap starts once the bus and any earlier swap finish.  Involved
        banks end with the respective rows open (the blocks were just
        rewritten), and the FR-FCFS-Cap row-hit streak is reset, modelling
        the paper's modification of ignoring row hits during swaps.
        """
        now = self._events.now
        start = max(now, self._bus_free_at, self._blocked_until)
        end = start + self._swap_latency
        self._blocked_until = end
        self._bus_free_at = end
        # Both blocks were just rewritten: the involved rows end up open
        # and dirty (their array write-back is pending).
        self._banks[Module.M1][m1_bank].open(m1_row, end, dirty=True)
        self._banks[Module.M2][m2_bank].open(m2_row, end, dirty=True)
        self._scheduler.reset_streak()
        self.stats.swaps += 1
        if self._energy is not None:
            lines = self._lines_per_block
            self._energy.record_activate(Module.M1)
            self._energy.record_activate(Module.M2)
            self._energy.record_line(Module.M1, is_write=False, count=lines)
            self._energy.record_line(Module.M2, is_write=False, count=lines)
            self._energy.record_line(Module.M1, is_write=True, count=lines)
            self._energy.record_line(Module.M2, is_write=True, count=lines)
        if on_complete is not None:
            self._events.schedule(end, on_complete)
        return end

    @property
    def blocked_until(self) -> int:
        """Cycle until which the channel is blocked by a swap."""
        return self._blocked_until
