"""Off-chip memory energy accounting (Figures 12 and 15).

The paper reports energy efficiency as requests served per second per watt,
using power reported by the memory simulator.  We accumulate dynamic energy
per event (activates and 64-B line transfers per module) plus background
power integrated over simulated time, and expose requests/J, which equals
requests per second per watt.
"""

from __future__ import annotations

from repro.common.config import EnergyConfig
from repro.common.units import NS_PER_CPU_CYCLE
from repro.mem.request import Module


class EnergyMeter:
    """Accumulates memory-system energy for one simulation."""

    def __init__(self, config: EnergyConfig, num_channels: int) -> None:
        self._config = config
        self._num_channels = num_channels
        # Lists indexed by Module (an IntEnum), not dicts: the channel
        # records a line transfer per served request, and list indexing
        # skips the enum hashing.  ``meter.activates[Module.M1]`` reads
        # the same either way.
        self.activates = [0, 0]
        self.line_reads = [0, 0]
        self.line_writes = [0, 0]
        self.refreshes = 0
        self.requests_served = 0

    def record_activate(self, module: Module) -> None:
        """One row activation on ``module``."""
        self.activates[module] += 1

    def record_line(self, module: Module, is_write: bool, count: int = 1) -> None:
        """``count`` 64-B line transfers on ``module``."""
        if is_write:
            self.line_writes[module] += count
        else:
            self.line_reads[module] += count

    def record_refresh(self) -> None:
        """One all-bank refresh cycle (M1 only; NVM has no refresh)."""
        self.refreshes += 1

    def record_served_request(self, count: int = 1) -> None:
        """Count demand requests for the requests/J numerator."""
        self.requests_served += count

    def dynamic_energy_nj(self) -> float:
        """Total dynamic energy in nanojoules."""
        c = self._config
        return (
            self.activates[Module.M1] * c.m1_activate_nj
            + self.activates[Module.M2] * c.m2_activate_nj
            + self.line_reads[Module.M1] * c.m1_read_line_nj
            + self.line_writes[Module.M1] * c.m1_write_line_nj
            + self.line_reads[Module.M2] * c.m2_read_line_nj
            + self.line_writes[Module.M2] * c.m2_write_line_nj
            + self.refreshes * c.m1_refresh_nj
        )

    def background_energy_nj(self, elapsed_cycles: int) -> float:
        """Background energy over the run, in nanojoules.

        Background power is per channel (one M1 + one M2 module each).
        """
        c = self._config
        seconds = elapsed_cycles * NS_PER_CPU_CYCLE * 1e-9
        watts = (c.m1_background_mw + c.m2_background_mw) * 1e-3
        return watts * self._num_channels * seconds * 1e9

    def total_energy_j(self, elapsed_cycles: int) -> float:
        """Total memory-system energy in joules."""
        nj = self.dynamic_energy_nj() + self.background_energy_nj(elapsed_cycles)
        return nj * 1e-9

    def efficiency_requests_per_joule(self, elapsed_cycles: int) -> float:
        """Requests per joule == requests per second per watt."""
        energy = self.total_energy_j(elapsed_cycles)
        if energy <= 0:
            return 0.0
        return self.requests_served / energy
