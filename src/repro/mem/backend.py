"""Pluggable backend for the fused channel tick kernel (DESIGN.md §14).

The channel advances in *ticks*: one FR-FCFS-Cap scheduling decision,
one refresh catch-up, one bank-timing update, one data burst.  On the
columnar layout of :mod:`repro.mem.batch` that whole decision is pure
integer arithmetic over ``int64`` arrays, so it can be compiled.  This
module owns backend selection and the kernel itself:

* ``python`` — the channel's hand-tuned interpreted tick
  (:meth:`repro.mem.channel.Channel._tick_python`); always available
  and the reference implementation.
* ``compiled`` — the fused :func:`mem_tick` kernel below, jitted with
  numba when importable.  numba is an *optional* extra
  (``pip install repro[compiled]``); when it is absent the same kernel
  function runs interpreted, so forcing ``--mem-backend compiled``
  degrades gracefully to a slower-but-correct run instead of crashing.
* ``auto`` — ``compiled`` iff numba imports cleanly, else ``python``.

The backend contract: for any sequence of ticks over the same queue and
bank arrays, both backends perform *identical state transitions* —
``profess golden --check`` must be byte-identical across them (enforced
by the CI backend-parity job), which is also why the choice is excluded
from cache keys.

One call per tick keeps the dispatch overhead of the jitted kernel
amortized: selection, dequeue, refresh, and timing update are fused,
and results return through a caller-preallocated ``out`` array
(:data:`OUT_*` indices) so no Python objects are built per event.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.common.config import MEM_BACKENDS
from repro.common.errors import InvalidValueError
from repro.mem.batch import NO_ROW

#: ``out`` array indices filled by :func:`mem_tick` (one int64 each).
OUT_SLOT = 0  # slot of the issued request
OUT_MODULE = 1  # module (0 = M1, 1 = M2) that served it
OUT_BURST_END = 2  # completion cycle of the data burst
OUT_ROW_HIT = 3  # 1 if served from the open row buffer
OUT_ACTIVATED = 4  # 1 if a row activation was performed
OUT_REFRESHES = 5  # all-bank refresh cycles applied this tick
OUT_STREAK = 6  # updated FR-FCFS-Cap row-hit streak
OUT_BUS_FREE_AT = 7  # updated channel data-bus availability
OUT_NEXT_REFRESH = 8  # updated next-refresh cycle of OUT_MODULE
OUT_SIZE = 9

#: Columns of the per-module timing table handed to the kernel.
TIMING_CL = 0
TIMING_T_RCD = 1
TIMING_T_RP = 2
TIMING_T_WR = 3
TIMING_LINE_BURST = 4
TIMING_T_RFC = 5
TIMING_T_REFI = 6
TIMING_COLUMNS = 7

_numba_njit: Optional[Callable] = None
_numba_checked = False
_kernel: Optional[Callable] = None


def compiled_available() -> bool:
    """True when numba imports cleanly (the kernel can actually be jitted)."""
    global _numba_checked, _numba_njit
    if not _numba_checked:
        _numba_checked = True
        try:  # graceful fallback: numba is an optional extra
            from numba import njit
        # Any import-time failure (not just ImportError: broken LLVM
        # installs raise SystemError and friends) degrades to the
        # interpreted kernel.
        except Exception:  # pragma: no cover  # repro: noqa[C306]
            _numba_njit = None
        else:
            _numba_njit = njit
    return _numba_njit is not None


def resolve_backend(name: str) -> str:
    """Map a requested backend name to the one that will run.

    ``auto`` picks ``compiled`` only when numba is importable.  An
    explicit ``compiled`` is honored even without numba — the same
    kernel runs interpreted (identical results, no hard dependency) —
    so the compiled code path is testable everywhere.
    """
    if name not in MEM_BACKENDS:
        raise InvalidValueError(
            f"mem backend must be one of {MEM_BACKENDS}, got {name!r}"
        )
    if name == "auto":
        return "compiled" if compiled_available() else "python"
    return name


def mem_tick(
    order: np.ndarray,
    count: int,
    bank_key: np.ndarray,
    row: np.ndarray,
    is_write: np.ndarray,
    open_row: np.ndarray,
    ready_at: np.ndarray,
    dirty: np.ndarray,
    closed_until: np.ndarray,
    timings: np.ndarray,
    banks: int,
    streak: int,
    cap: int,
    now: int,
    bus_free_at: int,
    blocked_until: int,
    next_refresh_m1: int,
    next_refresh_m2: int,
    row_idle_close: int,
    out: np.ndarray,
) -> None:
    """One fused channel tick over the columnar state (both backends).

    Mirrors ``Channel._tick_python`` step for step: FR-FCFS-Cap
    selection against pre-refresh bank state, dequeue (order shift),
    lazy refresh catch-up for the chosen module, idle-close, bank
    preparation, and the data burst.  Plain-int arithmetic only so that
    numba compiles it in nopython mode; results land in ``out``.
    """
    # --- FR-FCFS-Cap selection (bank state BEFORE refresh, exactly as
    # the scalar scheduler saw it) ---
    if count == 1:
        chosen = 0
        slot = order[0]
        if open_row[bank_key[slot]] == row[slot]:
            streak += 1
        else:
            streak = 0
    else:
        chosen = -1
        if streak < cap:
            index = 0
            while index < count:
                slot = order[index]
                if open_row[bank_key[slot]] == row[slot]:
                    chosen = index
                    break
                index += 1
        if chosen >= 0:
            streak += 1
        else:
            chosen = 0
            slot = order[0]
            if open_row[bank_key[slot]] == row[slot]:
                streak += 1
            else:
                streak = 0
        slot = order[chosen]
    # --- dequeue: shift the arrival order over the gap ---
    last = count - 1
    index = chosen
    while index < last:
        order[index] = order[index + 1]
        index += 1
    key = bank_key[slot]
    module = 1 if key >= banks else 0
    cl = timings[module, 0]
    t_rcd = timings[module, 1]
    t_rp = timings[module, 2]
    t_wr = timings[module, 3]
    line_burst = timings[module, 4]
    t_rfc = timings[module, 5]
    t_refi = timings[module, 6]
    # --- lazy all-bank refresh catch-up for the chosen module ---
    next_refresh = next_refresh_m1 if module == 0 else next_refresh_m2
    refreshes = 0
    while now >= next_refresh:
        end = next_refresh + t_rfc
        lo = module * banks
        hi = lo + banks
        bank = lo
        while bank < hi:
            open_row[bank] = NO_ROW
            dirty[bank] = 0
            if end > ready_at[bank]:
                ready_at[bank] = end
            bank += 1
        next_refresh += t_refi
        refreshes += 1
    # --- bank preparation ---
    bank_ready = ready_at[key]
    prep_start = now if now > bank_ready else bank_ready
    if blocked_until > prep_start:
        prep_start = blocked_until
    orow = open_row[key]
    if (
        row_idle_close > 0
        and orow != NO_ROW
        and prep_start - bank_ready >= row_idle_close
    ):
        # Adaptive page policy: background precharge of the idle row.
        penalty = t_rp + (t_wr if dirty[key] else 0)
        closed_until[key] = bank_ready + row_idle_close + penalty
        orow = NO_ROW
        dirty[key] = 0
    r = row[slot]
    w = is_write[slot]
    activated = 0
    if orow == r:
        row_hit = 1
        data_ready = prep_start + cl
        new_dirty = 1 if w else dirty[key]
    else:
        row_hit = 0
        precharge = 0
        if orow != NO_ROW:
            precharge = t_rp
            if dirty[key]:
                precharge += t_wr
        elif closed_until[key] > prep_start:
            precharge = closed_until[key] - prep_start
        data_ready = prep_start + precharge + t_rcd + cl
        activated = 1
        new_dirty = 1 if w else 0
    # --- data burst on the shared channel bus ---
    burst_start = data_ready if data_ready > bus_free_at else bus_free_at
    burst_end = burst_start + line_burst
    open_row[key] = r
    ready_at[key] = burst_end
    dirty[key] = new_dirty
    out[0] = slot
    out[1] = module
    out[2] = burst_end
    out[3] = row_hit
    out[4] = activated
    out[5] = refreshes
    out[6] = streak
    out[7] = burst_end
    out[8] = next_refresh


def get_tick_kernel() -> Callable:
    """The ``compiled`` backend's tick: jitted when numba is present.

    Falls back to the interpreted :func:`mem_tick` (same semantics) when
    numba is unavailable, so an explicit ``--mem-backend compiled`` is
    never a correctness dependency.  The jitted kernel compiles lazily
    on first call.
    """
    global _kernel
    if _kernel is None:
        if compiled_available():
            assert _numba_njit is not None
            _kernel = _numba_njit(cache=False)(mem_tick)
        else:
            _kernel = mem_tick
    return _kernel
