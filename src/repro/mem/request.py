"""Memory request and device-address types."""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Callable, Optional


class Module(IntEnum):
    """Which module on the channel serves a request (Figure 1)."""

    M1 = 0
    M2 = 1


class RequestKind(IntEnum):
    """What a request carries.

    DATA requests come from the cores; ST_READ/ST_WRITE are the memory
    controller's own traffic for Swap-group Table entries stored in M1
    (Section 2.2).
    """

    DATA = 0
    ST_READ = 1
    ST_WRITE = 2


@dataclass(frozen=True, slots=True)
class DeviceAddress:
    """Bank/row coordinates of a 64-B line inside one module.

    ``row`` is a device-local row identifier; the ST area of M1 uses a
    disjoint (negative) row namespace so table traffic and data traffic
    contend for banks realistically without aliasing rows.
    """

    module: Module
    bank: int
    row: int


class MemRequest:
    """One 64-B request presented to a channel.

    ``on_complete`` is invoked once, with the completion cycle, when the
    data burst for this request finishes (reads) or when the write is
    accepted onto the data bus (writes are posted).

    A hand-rolled ``__slots__`` class rather than a dataclass: one of
    these is allocated per memory access, so construction cost and
    attribute-access cost are both on the kernel's critical path.
    """

    __slots__ = (
        "core_id",
        "address",
        "is_write",
        "arrival",
        "kind",
        "on_complete",
        "completion",
        "row_hit",
    )

    def __init__(
        self,
        core_id: int,
        address: DeviceAddress,
        is_write: bool,
        arrival: int,
        kind: RequestKind = RequestKind.DATA,
        on_complete: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.core_id = core_id
        self.address = address
        self.is_write = is_write
        self.arrival = arrival
        self.kind = kind
        self.on_complete = on_complete
        #: Set by the channel when the request is scheduled.
        self.completion = -1
        #: True if the access hit in the open row buffer.
        self.row_hit = False

    def __repr__(self) -> str:  # debugging aid; never on the hot path
        return (
            f"MemRequest(core_id={self.core_id}, address={self.address!r}, "
            f"is_write={self.is_write}, arrival={self.arrival}, "
            f"kind={self.kind!r})"
        )

    @property
    def served_from_m1(self) -> bool:
        """Whether this request was served by the M1 (DRAM) module."""
        return self.address.module is Module.M1
