"""Memory request and device-address types."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Callable, Optional


class Module(IntEnum):
    """Which module on the channel serves a request (Figure 1)."""

    M1 = 0
    M2 = 1


class RequestKind(IntEnum):
    """What a request carries.

    DATA requests come from the cores; ST_READ/ST_WRITE are the memory
    controller's own traffic for Swap-group Table entries stored in M1
    (Section 2.2).
    """

    DATA = 0
    ST_READ = 1
    ST_WRITE = 2


@dataclass(frozen=True)
class DeviceAddress:
    """Bank/row coordinates of a 64-B line inside one module.

    ``row`` is a device-local row identifier; the ST area of M1 uses a
    disjoint (negative) row namespace so table traffic and data traffic
    contend for banks realistically without aliasing rows.
    """

    module: Module
    bank: int
    row: int


@dataclass
class MemRequest:
    """One 64-B request presented to a channel.

    ``on_complete`` is invoked once, with the completion cycle, when the
    data burst for this request finishes (reads) or when the write is
    accepted onto the data bus (writes are posted).
    """

    core_id: int
    address: DeviceAddress
    is_write: bool
    arrival: int
    kind: RequestKind = RequestKind.DATA
    on_complete: Optional[Callable[[int], None]] = None
    #: Set by the channel when the request is scheduled.
    completion: int = field(default=-1, init=False)
    #: True if the access hit in the open row buffer.
    row_hit: bool = field(default=False, init=False)

    @property
    def served_from_m1(self) -> bool:
        """Whether this request was served by the M1 (DRAM) module."""
        return self.address.module is Module.M1
