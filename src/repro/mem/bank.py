"""Bank state: open row tracking and availability."""

from __future__ import annotations


class Bank:
    """One memory bank with an open-page row buffer.

    Tracks the currently open row, whether it has absorbed writes (a
    *dirty* row buffer pays the write-recovery time ``tWR`` before it can
    be precharged — the cost that makes NVM writes expensive at row
    granularity rather than per burst), and the cycle at which the bank
    can begin the next command sequence.  The channel computes command
    timing; the bank only records state.
    """

    __slots__ = ("open_row", "ready_at", "dirty", "closed_until")

    def __init__(self) -> None:
        self.open_row: int | None = None
        self.ready_at: int = 0
        self.dirty: bool = False
        #: Set when the idle-close policy precharges the row in the
        #: background: the bank cannot activate again before this cycle
        #: (covers the precharge and, for a dirty row, write recovery).
        self.closed_until: int = 0

    def is_row_hit(self, row: int) -> bool:
        """True if ``row`` is already open in the row buffer."""
        return self.open_row == row

    def open(self, row: int, ready_at: int, dirty: bool = False) -> None:
        """Record that ``row`` is now open and the bank busy until ready_at."""
        self.open_row = row
        self.ready_at = ready_at
        self.dirty = dirty

    def mark_dirty(self) -> None:
        """The open row absorbed a write; closing it will cost tWR."""
        self.dirty = True

    def reserve(self, ready_at: int) -> None:
        """Extend the bank's busy window without changing the open row."""
        if ready_at > self.ready_at:
            self.ready_at = ready_at

    def close(self) -> None:
        """Precharge: no row open."""
        self.open_row = None
        self.dirty = False
