"""FR-FCFS-Cap request scheduling (Section 4.1).

The memory controller uses First-Ready FCFS with a cap: among pending
requests, row-buffer hits are prioritized over misses, but at most
``cap`` consecutive row hits may be served before the oldest request is
picked regardless, bounding starvation of row-miss requests (Mutlu &
Moscibroda's FR-FCFS-Cap, cap = 4 in the paper).
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.mem.request import MemRequest
from repro.common.errors import InvalidValueError


class FrFcfsCapScheduler:
    """Selects the next request to issue from a pending queue."""

    __slots__ = ("cap", "_consecutive_hits")

    def __init__(self, cap: int = 4) -> None:
        if cap < 1:
            raise InvalidValueError("cap must be >= 1")
        self.cap = cap
        self._consecutive_hits = 0

    def reset_streak(self) -> None:
        """Forget the current row-hit streak (used across swaps)."""
        self._consecutive_hits = 0

    def select(
        self,
        pending: Sequence[MemRequest],
        is_row_hit: Callable[[MemRequest], bool],
    ) -> int:
        """Return the index of the request to issue next.

        ``pending`` must be in arrival order (index 0 = oldest).  The
        chosen request's hit/miss status updates the streak counter.
        """
        if not pending:
            raise InvalidValueError("select called with no pending requests")
        if len(pending) == 1:
            # Typical light-load case: one candidate, no choice to make —
            # only the streak counter needs updating.
            if is_row_hit(pending[0]):
                self._consecutive_hits += 1
            else:
                self._consecutive_hits = 0
            return 0
        chosen = 0
        if self._consecutive_hits < self.cap:
            for index, request in enumerate(pending):
                if is_row_hit(request):
                    chosen = index
                    break
        if is_row_hit(pending[chosen]):
            self._consecutive_hits += 1
        else:
            self._consecutive_hits = 0
        return chosen

    def select_batched(
        self,
        order: Sequence[int],
        count: int,
        bank_key: Sequence[int],
        row: Sequence[int],
        open_row: Sequence[int],
    ) -> int:
        """FR-FCFS-Cap over columnar queue state; returns an order index.

        The batched twin of :meth:`select`: ``order[:count]`` lists the
        live slots oldest first, ``bank_key``/``row`` are the queue
        columns, and ``open_row`` is the channel's bank-state column —
        a request is a row hit iff ``open_row[bank_key[slot]] ==
        row[slot]``.  Same policy, same streak accounting; property
        tests pin the two implementations against each other, and the
        channel tick paths inline exactly this logic.
        """
        if count < 1:
            raise InvalidValueError("select called with no pending requests")
        if count == 1:
            if open_row[bank_key[order[0]]] == row[order[0]]:
                self._consecutive_hits += 1
            else:
                self._consecutive_hits = 0
            return 0
        chosen = -1
        if self._consecutive_hits < self.cap:
            index = 0
            while index < count:
                slot = order[index]
                if open_row[bank_key[slot]] == row[slot]:
                    chosen = index
                    break
                index += 1
        if chosen >= 0:
            self._consecutive_hits += 1
            return chosen
        slot = order[0]
        if open_row[bank_key[slot]] == row[slot]:
            self._consecutive_hits += 1
        else:
            self._consecutive_hits = 0
        return 0
