"""Off-chip memory device model.

Implements the request-level timing substrate the paper obtained from a
modified DRAMSim2: banks with open-page row buffers, a shared per-channel
data bus, FR-FCFS-Cap scheduling, channel-blocking 2-KB swaps, and an
activate/burst/background energy model.
"""

from repro.mem.request import DeviceAddress, MemRequest, Module, RequestKind
from repro.mem.bank import Bank
from repro.mem.channel import Channel
from repro.mem.power import EnergyMeter
from repro.mem.scheduler import FrFcfsCapScheduler

__all__ = [
    "Bank",
    "Channel",
    "DeviceAddress",
    "EnergyMeter",
    "FrFcfsCapScheduler",
    "MemRequest",
    "Module",
    "RequestKind",
]
