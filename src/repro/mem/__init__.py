"""Off-chip memory device model.

Implements the request-level timing substrate the paper obtained from a
modified DRAMSim2: banks with open-page row buffers, a shared per-channel
data bus, FR-FCFS-Cap scheduling, channel-blocking 2-KB swaps, and an
activate/burst/background energy model.

The channel hot path is columnar (structure-of-arrays) with a pluggable
tick backend — see :mod:`repro.mem.batch` and :mod:`repro.mem.backend`
and DESIGN.md §14.
"""

from repro.mem.request import DeviceAddress, MemRequest, Module, RequestKind
from repro.mem.backend import compiled_available, resolve_backend
from repro.mem.bank import Bank
from repro.mem.batch import NO_ROW, BankView, RequestBatch
from repro.mem.channel import Channel
from repro.mem.power import EnergyMeter
from repro.mem.scheduler import FrFcfsCapScheduler

__all__ = [
    "Bank",
    "BankView",
    "Channel",
    "DeviceAddress",
    "EnergyMeter",
    "FrFcfsCapScheduler",
    "MemRequest",
    "Module",
    "NO_ROW",
    "RequestBatch",
    "RequestKind",
    "compiled_available",
    "resolve_backend",
]
