"""Per-program MDM statistics: Table 6 counters and Eqs. (5)-(7).

For every ST-entry eviction from the STC, each block with a non-zero access
count contributes one *transition* from its QAC value at insertion (q_I) to
the quantized value of its new count (q_E).  From these the predictor
maintains::

    avg_cnt(q_E)  = accum_cnt(q_E) / num_q_sum_I(q_E)                  (6)
    P(q_E | q_I)  = (num_q(q_I, q_E) + 1) / (num_q_sum_E(q_I) + |q_E|) (7)
    exp_cnt(q_I)  = sum over q_E of avg_cnt(q_E) * P(q_E | q_I)        (5)

Updates happen in phases (Section 4.1): an *observation* phase (counters
accumulate, no recomputation) of ``phase_updates`` updates is followed by
an *estimation* phase of the same length during which exp_cnt is
recomputed every ``recompute_updates`` updates.  Counters reset at the
start of each observation phase; the registered exp_cnt values persist
between recomputations, so predictions are always available.

Before any data exists, exp_cnt falls back to a uniform prior over the
bucket midpoints — a cold-start choice documented in DESIGN.md (the paper
does not specify initial register values).
"""

from __future__ import annotations

from enum import Enum

from repro.common.config import MDMConfig
from repro.core.qac import bucket_midpoint
from repro.common.errors import InvalidValueError


class Phase(Enum):
    """MDM statistics phase (Section 3.2.2)."""

    OBSERVATION = "observation"
    ESTIMATION = "estimation"


class MDMProgramStats:
    """One program's transition statistics and expected-count registers."""

    __slots__ = (
        "_config",
        "num_qi",
        "num_qe",
        "accum_cnt",
        "num_q_sum_i",
        "num_q",
        "num_q_sum_e",
        "exp_cnt",
        "phase",
        "_updates_in_phase",
        "_updates_since_recompute",
        "total_updates",
        "recomputations",
    )

    def __init__(self, config: MDMConfig) -> None:
        self._config = config
        num_qi = config.num_qac_values  # 4: q_I in {0, 1, 2, 3}
        num_qe = num_qi - 1  # 3: q_E in {1, 2, 3}; q_E = 0 is invalid
        self.num_qi = num_qi
        self.num_qe = num_qe
        # Table 6 counters.
        self.accum_cnt = [0.0] * (num_qe + 1)  # index by q_E (1..)
        self.num_q_sum_i = [0] * (num_qe + 1)
        self.num_q = [[0] * (num_qe + 1) for _ in range(num_qi)]
        self.num_q_sum_e = [0] * num_qi
        # Registered predictions (persist between recomputations).
        prior = sum(
            bucket_midpoint(q, config.qac_boundaries)
            for q in range(1, num_qe + 1)
        ) / num_qe
        self.exp_cnt = [prior] * num_qi
        # Phase machinery.
        self.phase = Phase.OBSERVATION
        self._updates_in_phase = 0
        self._updates_since_recompute = 0
        self.total_updates = 0
        self.recomputations = 0

    # ------------------------------------------------------------------
    def record_transition(self, q_i: int, q_e: int, count: int) -> None:
        """Absorb one block's (q_I -> q_E, count) at ST-entry eviction.

        ``q_e`` must be >= 1 (blocks with a zero count do not update their
        QAC value and generate no transition).
        """
        if not 1 <= q_e <= self.num_qe:
            raise InvalidValueError(f"invalid q_E {q_e}")
        if not 0 <= q_i < self.num_qi:
            raise InvalidValueError(f"invalid q_I {q_i}")
        self.accum_cnt[q_e] += count
        self.num_q_sum_i[q_e] += 1
        self.num_q[q_i][q_e] += 1
        self.num_q_sum_e[q_i] += 1
        self.total_updates += 1
        self._advance_phase()

    def _advance_phase(self) -> None:
        self._updates_in_phase += 1
        if self.phase is Phase.OBSERVATION:
            if self._updates_in_phase >= self._config.phase_updates:
                self.phase = Phase.ESTIMATION
                self._updates_in_phase = 0
                self._updates_since_recompute = 0
                self.recompute()
        else:
            self._updates_since_recompute += 1
            if self._updates_since_recompute >= self._config.recompute_updates:
                self._updates_since_recompute = 0
                self.recompute()
            if self._updates_in_phase >= self._config.phase_updates:
                self._reset_counters()
                self.phase = Phase.OBSERVATION
                self._updates_in_phase = 0

    def _reset_counters(self) -> None:
        """Reset Table 6 counters (start of each observation phase)."""
        for q_e in range(self.num_qe + 1):
            self.accum_cnt[q_e] = 0.0
            self.num_q_sum_i[q_e] = 0
        for q_i in range(self.num_qi):
            self.num_q_sum_e[q_i] = 0
            for q_e in range(self.num_qe + 1):
                self.num_q[q_i][q_e] = 0

    # ------------------------------------------------------------------
    def avg_cnt(self, q_e: int) -> float:
        """Eq. (6); 0 when no transition into q_E has been seen."""
        seen = self.num_q_sum_i[q_e]
        if seen == 0:
            return 0.0
        return self.accum_cnt[q_e] / seen

    def transition_probability(self, q_i: int, q_e: int) -> float:
        """Eq. (7) with Laplace smoothing."""
        return (self.num_q[q_i][q_e] + 1) / (
            self.num_q_sum_e[q_i] + self.num_qe
        )

    def recompute(self) -> None:
        """Eq. (5): refresh the exp_cnt registers from current counters.

        Registers only change for q_I values with data-bearing predictions:
        if no transition at all has been recorded since the last counter
        reset, the previous registers (or the cold-start prior) persist.
        """
        self.recomputations += 1
        if sum(self.num_q_sum_i[1:]) == 0:
            return
        for q_i in range(self.num_qi):
            expected = 0.0
            for q_e in range(1, self.num_qe + 1):
                expected += self.avg_cnt(q_e) * self.transition_probability(
                    q_i, q_e
                )
            self.exp_cnt[q_i] = expected

    def expected(self, q_i: int) -> float:
        """Registered expected access count for a block inserted with q_I."""
        return self.exp_cnt[q_i]
