"""The paper's contribution: MDM, RSM, and their integration, ProFess.

* :mod:`repro.core.qac` — Table 5 access-count quantization.
* :mod:`repro.core.mdm_stats` — Table 6 counters and the expected-access
  predictor of Eqs. (5)-(7).
* :mod:`repro.core.mdm` — the probabilistic Migration-Decision Mechanism
  (Section 3.2.3).
* :mod:`repro.core.rsm` — the Relative-Slowdown Monitor: Table 3 counters
  and slowdown factors SF_A / SF_B of Eqs. (2)-(3).
* :mod:`repro.core.profess` — RSM-guided MDM per Table 7.
"""

from repro.core.qac import quantize_access_count
from repro.core.mdm_stats import MDMProgramStats
from repro.core.mdm import MDMPolicy
from repro.core.rsm import RSM, RSMCounters, RSMSample
from repro.core.profess import ProFessPolicy

__all__ = [
    "MDMPolicy",
    "MDMProgramStats",
    "ProFessPolicy",
    "RSM",
    "RSMCounters",
    "RSMSample",
    "quantize_access_count",
]
