"""Relative-Slowdown Monitor (Section 3.1).

Per program, RSM maintains the six counters of Table 3, updated on every
served request (private vs shared region, served from M1 or not) and every
swap in the shared regions.  At the end of each sampling period (``m_samp``
served requests for that program) the counters are exponentially smoothed
(alpha = 0.125, +1 bias to avoid zeros), the slowdown factors are
recomputed::

    SF_A = (M1_P / Total_P) / (M1_S / Total_S)      (2)
    SF_B = num_Swap_Total / num_Swap_Self           (3)

and the raw counters reset.  SF_A and SF_B only *rank* programs by how
much they suffer from M1 competition — they are not absolute slowdown
estimates (Section 3.1.2).

For Table 4, RSM can optionally track per-region request counts, yielding
the sampling-accuracy estimates (sigma_req, sigma of raw and averaged
SF_A) the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.config import RSMConfig
from repro.common.smoothing import ExponentialSmoother
from repro.common.stats import stddev


@dataclass(slots=True)
class RSMCounters:
    """The per-program counter set of Table 3 (one sampling period)."""

    num_req_m1_p: int = 0
    num_req_total_p: int = 0
    num_req_m1_s: int = 0
    num_req_total_s: int = 0
    num_swap_self: int = 0
    num_swap_total: int = 0

    def as_tuple(self) -> tuple[int, ...]:
        """Counter values in Table 3 order."""
        return (
            self.num_req_m1_p,
            self.num_req_total_p,
            self.num_req_m1_s,
            self.num_req_total_s,
            self.num_swap_self,
            self.num_swap_total,
        )

    def reset(self) -> None:
        """Zero all counters (start of a sampling period)."""
        self.num_req_m1_p = 0
        self.num_req_total_p = 0
        self.num_req_m1_s = 0
        self.num_req_total_s = 0
        self.num_swap_self = 0
        self.num_swap_total = 0


@dataclass(frozen=True)
class RSMSample:
    """One sampling period's outputs (kept for analysis/Table 4)."""

    program: int
    period_index: int
    raw_sf_a: Optional[float]
    raw_sf_b: Optional[float]
    smoothed_sf_a: float
    smoothed_sf_b: float
    #: Std dev of per-region request counts as a fraction of the mean
    #: (sigma_req of Table 4); None unless region tracking is enabled.
    sigma_req: Optional[float] = None


def _ratio_sf_a(m1_p: float, total_p: float, m1_s: float, total_s: float) -> Optional[float]:
    """Eq. (2); None when a denominator is zero (raw counters only)."""
    if total_p <= 0 or total_s <= 0 or m1_s <= 0:
        return None
    return (m1_p / total_p) / (m1_s / total_s)


def _ratio_sf_b(swap_self: float, swap_total: float) -> Optional[float]:
    """Eq. (3); None when no self swaps were seen (raw counters only)."""
    if swap_self <= 0:
        return None
    return swap_total / swap_self


class RSM:
    """The monitor: counters, sampling, smoothing, and SF outputs."""

    def __init__(
        self,
        config: RSMConfig,
        num_programs: int,
        num_regions: int,
        track_regions: bool = False,
    ) -> None:
        self._config = config
        self._m_samp = config.m_samp
        self.num_programs = num_programs
        self.num_regions = num_regions
        self.counters = [RSMCounters() for _ in range(num_programs)]
        self._served = [0] * num_programs
        self._period = [0] * num_programs
        # One smoother per counter per program (Section 3.1.3 smooths the
        # counters, then computes the SFs from the smoothed values).
        self._smoothers = [
            [
                ExponentialSmoother(alpha=config.alpha, bias=1.0)
                for _ in range(6)
            ]
            for _ in range(num_programs)
        ]
        self.sf_a: list[Optional[float]] = [None] * num_programs
        self.sf_b: list[Optional[float]] = [None] * num_programs
        self.history: list[RSMSample] = []
        self._track_regions = track_regions
        self._region_counts = (
            [[0] * num_regions for _ in range(num_programs)]
            if track_regions
            else None
        )

    @property
    def ready(self) -> bool:
        """True once every program has produced at least one sample."""
        return all(sf is not None for sf in self.sf_a)

    # ------------------------------------------------------------------
    def on_request(
        self,
        program: int,
        region: int,
        region_is_private_own: bool,
        served_from_m1: bool,
    ) -> None:
        """Account one served request (Table 3 request counters)."""
        counters = self.counters[program]
        if region_is_private_own:
            counters.num_req_total_p += 1
            if served_from_m1:
                counters.num_req_m1_p += 1
        else:
            counters.num_req_total_s += 1
            if served_from_m1:
                counters.num_req_m1_s += 1
        if self._region_counts is not None:
            self._region_counts[program][region] += 1
        served = self._served[program] + 1
        self._served[program] = served
        if served >= self._m_samp:
            self._sample(program)

    def on_swap(
        self, owner_promoted: Optional[int], owner_demoted: Optional[int]
    ) -> None:
        """Account one shared-region swap (Table 3 swap counters).

        A program's total counts every swap touching one of its blocks,
        regardless of who triggered it; self counts swaps where both blocks
        are its own.  The caller must filter out private-region swaps (the
        paper does not count swaps there).
        """
        involved = {
            owner
            for owner in (owner_promoted, owner_demoted)
            if owner is not None
        }
        for owner in involved:
            self.counters[owner].num_swap_total += 1
        if (
            owner_promoted is not None
            and owner_promoted == owner_demoted
        ):
            self.counters[owner_promoted].num_swap_self += 1

    # ------------------------------------------------------------------
    def _sample(self, program: int) -> None:
        counters = self.counters[program]
        raw = counters.as_tuple()
        smoothed = [
            smoother.update(value)
            for smoother, value in zip(self._smoothers[program], raw)
        ]
        raw_sf_a = _ratio_sf_a(raw[0], raw[1], raw[2], raw[3])
        raw_sf_b = _ratio_sf_b(raw[4], raw[5])
        sf_a = _ratio_sf_a(*smoothed[:4])
        sf_b = _ratio_sf_b(smoothed[4], smoothed[5])
        # Smoothed counters carry the +1 bias, so the ratios are always
        # defined; guard anyway to keep the invariant explicit.
        self.sf_a[program] = sf_a if sf_a is not None else 1.0
        self.sf_b[program] = sf_b if sf_b is not None else 1.0
        sigma_req = None
        if self._region_counts is not None:
            region_counts = self._region_counts[program]
            mu = sum(region_counts) / len(region_counts)
            sigma_req = stddev(region_counts) / mu if mu > 0 else None
            self._region_counts[program] = [0] * self.num_regions
        self.history.append(
            RSMSample(
                program=program,
                period_index=self._period[program],
                raw_sf_a=raw_sf_a,
                raw_sf_b=raw_sf_b,
                smoothed_sf_a=self.sf_a[program],
                smoothed_sf_b=self.sf_b[program],
                sigma_req=sigma_req,
            )
        )
        self._period[program] += 1
        self._served[program] = 0
        counters.reset()

    # ------------------------------------------------------------------
    def samples_for(self, program: int) -> list[RSMSample]:
        """All samples recorded for one program (analysis helper)."""
        return [s for s in self.history if s.program == program]
