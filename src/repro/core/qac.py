"""Quantized Access-Counter values (Table 5).

A block's attribute is the quantized number of accesses counted during the
last residency of its ST entry in the STC:

====== ==========================
Value  Meaning
====== ==========================
0      previously unseen block (default)
1      1-7 accesses
2      8-31 accesses
3      32 or more accesses
====== ==========================

The boundaries are configurable (``MDMConfig.qac_boundaries``) so the
ablation benchmarks can perturb them.
"""

from __future__ import annotations

from typing import Sequence
from repro.common.errors import InvalidValueError


def quantize_access_count(
    count: int, boundaries: Sequence[int] = (1, 8, 32)
) -> int:
    """Map an access count to its QAC value.

    ``boundaries[i]`` is the smallest count mapping to QAC value ``i+1``;
    counts below ``boundaries[0]`` map to 0.  Boundaries must be strictly
    increasing.
    """
    if count < 0:
        raise InvalidValueError(f"negative access count {count}")
    value = 0
    for index, lower_bound in enumerate(boundaries):
        if count >= lower_bound:
            value = index + 1
        else:
            break
    return value


def bucket_midpoint(
    qac_value: int, boundaries: Sequence[int] = (1, 8, 32)
) -> float:
    """Representative access count for a QAC bucket.

    Interior buckets use their midpoint; the open top bucket uses 1.5x its
    lower bound.  Used only for the cold-start prior of the expected-count
    predictor (before any transitions have been observed).
    """
    if not 1 <= qac_value <= len(boundaries):
        raise InvalidValueError(f"QAC value {qac_value} has no bucket")
    lower = boundaries[qac_value - 1]
    if qac_value == len(boundaries):
        return 1.5 * lower
    upper = boundaries[qac_value]
    return (lower + upper) / 2.0
