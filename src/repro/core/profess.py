"""ProFess: MDM guided by RSM (Section 3.3, Table 7).

When the block in M1 and the accessed block in M2 belong to different
programs, the relative slowdown factors steer the decision:

* **Case 1** — c_M2 suffers more by both factors: aggressive help — treat
  M1 as vacant and let MDM judge only the benefit of the promotion.
* **Case 2** — c_M1 suffers more by both factors: prohibit the swap.
* **Case 3** — SF_A says c_M2 suffers more but SF_B says c_M1 does, and
  the SF_A*SF_B products still favour c_M1: prohibit the swap.
* Otherwise plain MDM decides.

Each comparison uses a ~3 % hysteresis factor (1/32) and the Case-3
product comparison uses twice that (~6 %), per Section 3.3.  Until RSM
has produced slowdown factors for both programs, plain MDM applies.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import SystemConfig
from repro.core.mdm import MDMPolicy
from repro.policies.base import AccessContext
from repro.policies.registry import register_policy


@register_policy("profess", base="mdm", guidance=True)
class ProFessPolicy(MDMPolicy):
    """The integrated framework: probabilistic MDM + RSM fairness guidance."""

    name = "profess"

    def __init__(self, config: SystemConfig) -> None:
        super().__init__(config)
        self._profess = config.profess
        self.case_counts = {1: 0, 2: 0, 3: 0, "default": 0, "same": 0}

    def on_access(self, ctx: AccessContext) -> Optional[int]:
        if ctx.location == 0:  # ctx.in_m1, sans the property call
            return None
        self.decisions += 1
        if self._decide_guided(ctx):
            self.promotions += 1
            return ctx.slot
        return None

    def _decide_guided(self, ctx: AccessContext) -> bool:
        c_m1, c_m2 = ctx.m1_owner, ctx.owner
        if c_m1 is None or c_m1 == c_m2:
            # Same program on both sides (or vacant M1): plain MDM.
            self.case_counts["same"] += 1
            return self._decide_m2(ctx, m1_vacant=c_m1 is None)
        controller = self._controller
        rsm = controller.rsm if controller is not None else None
        if rsm is None or rsm.sf_a[c_m1] is None or rsm.sf_a[c_m2] is None:
            self.case_counts["default"] += 1
            return self._decide_m2(ctx, m1_vacant=False)
        sf_a1, sf_a2 = rsm.sf_a[c_m1], rsm.sf_a[c_m2]
        sf_b1, sf_b2 = rsm.sf_b[c_m1], rsm.sf_b[c_m2]
        factor = self._profess.sf_factor
        product_factor = self._profess.product_factor
        a_says_m2 = sf_a1 * factor < sf_a2
        a_says_m1 = sf_a1 > sf_a2 * factor
        b_says_m2 = sf_b1 * factor < sf_b2
        b_says_m1 = sf_b1 > sf_b2 * factor
        if a_says_m2 and b_says_m2:
            # Case 1: help c_M2 as if it ran alone (consider M1 vacant);
            # MDM still judges whether the swap benefits at all.
            self.case_counts[1] += 1
            return self._decide_m2(ctx, m1_vacant=True)
        if a_says_m1 and b_says_m1:
            self.case_counts[2] += 1
            return False  # Case 2: protect c_M1's block
        if (
            self._profess.case3_enabled
            and a_says_m2
            and b_says_m1
            and sf_a1 * sf_b1 > sf_a2 * sf_b2 * product_factor
        ):
            self.case_counts[3] += 1
            return False  # Case 3: products still favour c_M1
        self.case_counts["default"] += 1
        return self._decide_m2(ctx, m1_vacant=False)
