"""RSM guidance wrapped around a non-MDM migration algorithm.

Section 6 of the paper notes that "the proposed RSM can be integrated
with other migration algorithms instead of MDM, since it merely guides
migration decisions."  This module implements that claim for the PoM
baseline: the Table 7 cases are applied on top of PoM's competing-counter
decision —

* **Case 1** (help the M2 block's program): decide as if the competing
  counter had already reached the lowest candidate threshold, i.e.
  promote on this access provided swaps are not globally prohibited;
* **Case 2 / Case 3** (protect the M1 resident): veto the swap;
* otherwise PoM decides unmodified.

This is an *extension experiment*, not a paper artifact: it quantifies
how much of ProFess's fairness gain comes from RSM guidance alone versus
from MDM's cost-benefit analysis (see ``bench_ext_rsm_pom.py``).
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import SystemConfig
from repro.policies.base import AccessContext
from repro.policies.pom import PoMPolicy
from repro.policies.registry import register_policy


@register_policy("rsm-pom", base="pom", guidance=True)
class RSMGuidedPoMPolicy(PoMPolicy):
    """PoM with Table 7 fairness guidance."""

    name = "rsm-pom"

    def __init__(self, config: SystemConfig) -> None:
        super().__init__(config)
        self._profess = config.profess
        self.case_counts = {1: 0, 2: 0, 3: 0, "default": 0, "same": 0}

    def on_access(self, ctx: AccessContext) -> Optional[int]:
        decision = super().on_access(ctx)
        if ctx.in_m1:
            return decision
        c_m1, c_m2 = ctx.m1_owner, ctx.owner
        if c_m1 is None or c_m1 == c_m2:
            self.case_counts["same"] += 1
            return decision
        rsm = getattr(self._controller, "rsm", None)
        if rsm is None or rsm.sf_a[c_m1] is None or rsm.sf_a[c_m2] is None:
            self.case_counts["default"] += 1
            return decision
        sf_a1, sf_a2 = rsm.sf_a[c_m1], rsm.sf_a[c_m2]
        sf_b1, sf_b2 = rsm.sf_b[c_m1], rsm.sf_b[c_m2]
        factor = self._profess.sf_factor
        a_says_m2 = sf_a1 * factor < sf_a2
        a_says_m1 = sf_a1 > sf_a2 * factor
        b_says_m2 = sf_b1 * factor < sf_b2
        b_says_m1 = sf_b1 > sf_b2 * factor
        if a_says_m2 and b_says_m2:
            # Aggressive help: promote now unless swaps are prohibited.
            self.case_counts[1] += 1
            return ctx.slot if self.threshold is not None else decision
        if a_says_m1 and b_says_m1:
            self.case_counts[2] += 1
            return None
        if (
            self._profess.case3_enabled
            and a_says_m2
            and b_says_m1
            and sf_a1 * sf_b1 > sf_a2 * sf_b2 * self._profess.product_factor
        ):
            self.case_counts[3] += 1
            return None
        self.case_counts["default"] += 1
        return decision
