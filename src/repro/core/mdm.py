"""The probabilistic Migration-Decision Mechanism (Section 3.2.3).

Upon an access to a block in M2, MDM predicts the block's *remaining*
accesses::

    rem_cnt = exp_cnt(q_I) - curr_cnt                         (8)

and promotes only when the predicted benefit clears ``min_benefit`` (the
swap cost in accesses, = PoM's K = 8 for this technology pair):

a) the M1 location is vacant and ``rem_cnt_M2 >= min_benefit``; or
b) the M1 resident has not been accessed this STC residency while some
   other block in the group has; or
c) the M1 resident has been accessed and either (c.i) its own predicted
   remaining count is <= 0, or (c.ii) ``rem_cnt_M2 - rem_cnt_M1 >=
   min_benefit``.

Statistics updates happen at ST-entry evictions from the STC, per block
with a non-zero access count (see :mod:`repro.core.mdm_stats`); the new
quantized count is written back to the ST entry as the block's next q_I.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import SystemConfig
from repro.cache.stc import STCEntry
from repro.core.mdm_stats import MDMProgramStats
from repro.core.qac import quantize_access_count
from repro.hybrid.st_entry import STEntry
from repro.policies.base import AccessContext, MigrationPolicy
from repro.policies.registry import register_policy


@register_policy("mdm")
class MDMPolicy(MigrationPolicy):
    """Individual cost-benefit migration decisions via predicted accesses."""

    name = "mdm"

    #: Cap on retained (predicted, actual) pairs when recording.
    PREDICTION_LOG_LIMIT = 200_000

    def __init__(
        self, config: SystemConfig, record_predictions: bool = False
    ) -> None:
        super().__init__(config)
        self.write_weight = config.write_access_weight
        self._mdm = config.mdm
        self._stats: dict[int, MDMProgramStats] = {}
        self.decisions = 0
        self.promotions = 0
        #: Optional predictor-calibration instrumentation: at the first
        #: decision of each block residency, remember the predicted
        #: remaining (weighted) accesses; at ST-entry eviction pair it
        #: with what actually arrived.  Fuel for the
        #: ``ext-prediction-accuracy`` analysis.
        self.record_predictions = record_predictions
        #: (group, slot) -> (predicted_remaining, count_at_decision)
        self._open_predictions: dict[tuple[int, int], tuple[float, int]] = {}
        #: Completed (predicted, actual) pairs.
        self.prediction_log: list[tuple[float, float]] = []

    # ------------------------------------------------------------------
    def stats_for(self, program: int) -> MDMProgramStats:
        """Per-program statistics (created on first touch)."""
        stats = self._stats.get(program)
        if stats is None:
            stats = MDMProgramStats(self._mdm)
            self._stats[program] = stats
        return stats

    def remaining_count(
        self, program: int, q_at_insert: int, current_count: int
    ) -> float:
        """Eq. (8): predicted remaining accesses for one block."""
        return self.stats_for(program).expected(q_at_insert) - current_count

    # ------------------------------------------------------------------
    def on_access(self, ctx: AccessContext) -> Optional[int]:
        if ctx.location == 0:  # ctx.in_m1, sans the property call
            return None
        self.decisions += 1
        if self._decide_m2(ctx, m1_vacant=ctx.m1_owner is None):
            self.promotions += 1
            return ctx.slot
        return None

    def _decide_m2(self, ctx: AccessContext, m1_vacant: bool) -> bool:
        """The Section 3.2.3 decision tree for an M2 access."""
        owner = ctx.owner
        if owner is None:
            # A block outside any allocated page cannot be accessed by a
            # program; be conservative if it ever happens.
            return False
        q_i2 = ctx.stc_entry.qac_at_insert[ctx.slot]
        count_now = ctx.stc_entry.count(ctx.slot)
        rem_m2 = self.remaining_count(owner, q_i2, count_now)
        if self.record_predictions:
            key = (ctx.group, ctx.slot)
            if key not in self._open_predictions:
                self._open_predictions[key] = (rem_m2, count_now)
        min_benefit = self._mdm.min_benefit
        if rem_m2 < min_benefit:
            return False  # top-level condition: no benefit to promote
        if m1_vacant:
            return True  # case (a)
        m1_slot = ctx.m1_slot
        m1_count = ctx.stc_entry.count(m1_slot)
        if m1_count == 0:
            # Case (b): the resident is idle while the group is active.
            return ctx.stc_entry.any_other_accessed(m1_slot)
        q_i1 = ctx.stc_entry.qac_at_insert[m1_slot]
        rem_m1 = self.remaining_count(ctx.m1_owner, q_i1, m1_count)
        if rem_m1 <= 0:
            return True  # case (c.i)
        return rem_m2 - rem_m1 >= min_benefit  # case (c.ii)

    # ------------------------------------------------------------------
    def on_st_eviction(self, stc_entry: STCEntry, st_entry: STEntry) -> None:
        """Update Table 6 statistics and write back QAC values (Sec. 3.2.1)."""
        controller = self._controller
        boundaries = self._mdm.qac_boundaries
        if self.record_predictions:
            self._close_predictions(stc_entry)
        for slot, count in enumerate(stc_entry.counters):
            if count == 0:
                continue  # QAC not updated for untouched blocks
            q_e = quantize_access_count(count, boundaries)
            if q_e == 0:
                # Possible only with ablated boundaries whose first bucket
                # starts above 1: a barely-touched block stays "unseen".
                continue
            q_i = stc_entry.qac_at_insert[slot]
            owner = None
            if controller is not None:
                owner = controller.owner_of_slot(stc_entry.group, slot)
            if owner is not None:
                self.stats_for(owner).record_transition(q_i, q_e, count)
            st_entry.qac[slot] = q_e

    def _close_predictions(self, stc_entry: STCEntry) -> None:
        """Resolve open prediction records for an evicted entry's blocks."""
        group = stc_entry.group
        for slot in range(len(stc_entry.counters)):
            record = self._open_predictions.pop((group, slot), None)
            if record is None:
                continue
            predicted, count_at_decision = record
            actual = stc_entry.counters[slot] - count_at_decision
            if len(self.prediction_log) < self.PREDICTION_LOG_LIMIT:
                self.prediction_log.append((predicted, float(actual)))
