"""Command-line interface: ``profess list`` / ``profess run <id>``.

Examples::

    profess list
    profess run fig5
    profess run fig13 --scale 128 --requests 20000
    profess run all --out results/
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.runner import (
    DEFAULT_MULTI_REQUESTS,
    DEFAULT_SCALE,
    DEFAULT_SINGLE_REQUESTS,
    ExperimentRunner,
)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="profess",
        description="ProFess (HPCA 2018) reproduction experiment harness",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run experiment(s)")
    run_parser.add_argument(
        "experiment",
        help="experiment id (e.g. fig5, table4) or 'all'",
    )
    run_parser.add_argument(
        "--scale",
        type=int,
        default=DEFAULT_SCALE,
        help="capacity divisor vs the paper system (power of two)",
    )
    run_parser.add_argument(
        "--requests",
        type=int,
        default=DEFAULT_MULTI_REQUESTS,
        help="trace length per program (multiprogram runs)",
    )
    run_parser.add_argument(
        "--single-requests",
        type=int,
        default=DEFAULT_SINGLE_REQUESTS,
        help="trace length per program (single-program runs)",
    )
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument(
        "--out", type=Path, default=None, help="directory for .txt reports"
    )
    run_parser.add_argument("--verbose", action="store_true")

    report_parser = subparsers.add_parser(
        "report",
        help="run every paper artifact and generate EXPERIMENTS.md",
    )
    report_parser.add_argument(
        "--scale", type=int, default=DEFAULT_SCALE
    )
    report_parser.add_argument(
        "--requests", type=int, default=DEFAULT_MULTI_REQUESTS
    )
    report_parser.add_argument(
        "--single-requests", type=int, default=DEFAULT_SINGLE_REQUESTS
    )
    report_parser.add_argument("--seed", type=int, default=0)
    report_parser.add_argument(
        "--output", type=Path, default=Path("EXPERIMENTS.md")
    )
    report_parser.add_argument(
        "--store", type=Path, default=None, help="directory for JSON results"
    )

    trace_parser = subparsers.add_parser(
        "trace", help="synthesize a program trace to a .npz file"
    )
    trace_parser.add_argument("program", help="Table 9 program name")
    trace_parser.add_argument("output", type=Path)
    trace_parser.add_argument("--requests", type=int, default=50_000)
    trace_parser.add_argument("--scale", type=int, default=DEFAULT_SCALE)
    trace_parser.add_argument("--seed", type=int, default=0)

    char_parser = subparsers.add_parser(
        "characterize", help="summarize a trace file (or a program name)"
    )
    char_parser.add_argument(
        "trace", help="path to a .npz trace, or a Table 9 program name"
    )
    char_parser.add_argument("--requests", type=int, default=50_000)
    char_parser.add_argument("--scale", type=int, default=DEFAULT_SCALE)
    char_parser.add_argument("--seed", type=int, default=0)
    return parser


def _run(args: argparse.Namespace) -> int:
    runner = ExperimentRunner(
        scale=args.scale,
        multi_requests=args.requests,
        single_requests=args.single_requests,
        seed=args.seed,
        verbose=args.verbose,
    )
    ids = (
        list(EXPERIMENTS)
        if args.experiment == "all"
        else [args.experiment]
    )
    for experiment_id in ids:
        if experiment_id not in EXPERIMENTS:
            print(
                f"unknown experiment {experiment_id!r}; try 'profess list'",
                file=sys.stderr,
            )
            return 2
        started = time.time()
        result = run_experiment(experiment_id, runner)
        report = result.render()
        elapsed = time.time() - started
        print(report)
        print(f"[{experiment_id} completed in {elapsed:.1f}s]\n")
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / f"{experiment_id}.txt").write_text(report + "\n")
    return 0


def _report(args: argparse.Namespace) -> int:
    from repro.experiments.paper_report import generate_experiments_md
    from repro.experiments.store import ResultStore

    runner = ExperimentRunner(
        scale=args.scale,
        multi_requests=args.requests,
        single_requests=args.single_requests,
        seed=args.seed,
    )
    store = ResultStore(args.store) if args.store is not None else None
    started = time.time()
    generate_experiments_md(runner, args.output, store=store)
    print(f"wrote {args.output} in {time.time() - started:.0f}s")
    return 0


def _trace(args: argparse.Namespace) -> int:
    from repro.traces.generator import synthesize_trace

    trace = synthesize_trace(
        args.program, args.requests, scale=args.scale, seed=args.seed
    )
    trace.save(args.output)
    print(
        f"wrote {args.output}: {len(trace)} requests, "
        f"MPKI {trace.mpki:.1f}, writes {trace.write_fraction:.1%}"
    )
    return 0


def _characterize(args: argparse.Namespace) -> int:
    from repro.cpu.trace import Trace
    from repro.traces.generator import synthesize_trace
    from repro.traces.spec import PROGRAM_PROFILES
    from repro.traces.stats import characterize

    if args.trace in PROGRAM_PROFILES:
        trace = synthesize_trace(
            args.trace, args.requests, scale=args.scale, seed=args.seed
        )
    else:
        trace = Trace.load(args.trace)
    summary = characterize(trace)
    print(f"requests:                  {summary.requests}")
    print(f"instructions:              {summary.instructions}")
    print(f"MPKI:                      {summary.mpki:.2f}")
    print(f"write fraction:            {summary.write_fraction:.1%}")
    print(f"footprint:                 {summary.footprint_bytes / 1024:.0f} KB")
    print(f"distinct 2-KB blocks:      {summary.distinct_blocks}")
    print(f"mean accesses per block:   {summary.mean_accesses_per_block:.1f}")
    print(f"top-decile access share:   {summary.top_decile_access_share:.1%}")
    print(f"same-block request pairs:  {summary.same_block_fraction:.1%}")
    reuse = summary.median_block_reuse_distance
    print(
        "median block reuse dist:   "
        + (f"{reuse:.0f}" if reuse is not None else "n/a (streaming)")
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(i) for i in EXPERIMENTS)
        for experiment_id, spec in EXPERIMENTS.items():
            print(f"{experiment_id.ljust(width)}  {spec.description}")
        return 0
    if args.command == "report":
        return _report(args)
    if args.command == "trace":
        return _trace(args)
    if args.command == "characterize":
        return _characterize(args)
    return _run(args)


if __name__ == "__main__":
    sys.exit(main())
