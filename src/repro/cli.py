"""Command-line interface: ``profess list`` / ``profess run <id>``.

Examples::

    profess list
    profess run fig5
    profess run fig13 --scale 128 --requests 20000
    profess run all --out results/
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments.registry import (
    EXPERIMENTS,
    UnknownExperimentError,
    resolve_experiment_ids,
    run_experiment,
)
from repro.experiments.runner import (
    DEFAULT_MULTI_REQUESTS,
    DEFAULT_SCALE,
    DEFAULT_SINGLE_REQUESTS,
    ExperimentRunner,
)


def _job_count(value: str) -> int:
    jobs = int(value)
    if jobs < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return jobs


def _cache_dir(value: str) -> Path:
    path = Path(value)
    if path.exists() and not path.is_dir():
        raise argparse.ArgumentTypeError(
            f"{value!r} exists and is not a directory"
        )
    return path


def _retry_count(value: str) -> int:
    retries = int(value)
    if retries < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return retries


def _timeout_seconds(value: str) -> float:
    seconds = float(value)
    if seconds <= 0:
        raise argparse.ArgumentTypeError("must be > 0 seconds")
    return seconds


def _add_execution_flags(parser: argparse.ArgumentParser) -> None:
    """Flags shared by every simulating subcommand."""
    parser.add_argument(
        "--jobs",
        type=_job_count,
        default=1,
        help="worker processes for independent runs (1 = in-process serial)",
    )
    parser.add_argument(
        "--cache-dir",
        type=_cache_dir,
        default=None,
        help="directory for the persistent result cache (shared across "
        "invocations; repeat runs become cache hits)",
    )
    parser.add_argument(
        "--retries",
        type=_retry_count,
        default=1,
        metavar="N",
        help="re-attempts per run for transient failures (worker death, "
        "timeout, OS errors); simulation errors are never retried",
    )
    parser.add_argument(
        "--run-timeout",
        type=_timeout_seconds,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per simulation; an overdue run counts as "
        "a (retryable) failure and its worker is replaced",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="replay the run journal beside --cache-dir: completed work "
        "is served from the cache, failed keys are re-attempted",
    )
    parser.add_argument(
        "--fail-fast",
        action="store_true",
        help="abort the sweep on the first failed run instead of "
        "finishing the wave and reporting a failure table",
    )
    _add_backend_flag(parser)
    _add_transport_flag(parser)


def _add_transport_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--transport",
        choices=("auto", "pickle", "shm"),
        default="auto",
        help="how workers return results: 'pickle' (full result over the "
        "pool pipe), 'shm' (length-prefixed frames in shared memory; the "
        "parent maps them lazily), or 'auto' (shm when --jobs > 1); "
        "results are byte-identical across transports and the choice "
        "never affects cache keys",
    )


def _add_backend_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--mem-backend",
        choices=("auto", "python", "compiled"),
        default="auto",
        help="memory-timing kernel backend: 'python' (pure numpy SoA "
        "reference), 'compiled' (numba-jitted when installed, else the "
        "interpreted fallback), or 'auto' (compiled when numba imports, "
        "python otherwise); results are byte-identical across backends "
        "and the choice never affects cache keys",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="profess",
        description="ProFess (HPCA 2018) reproduction experiment harness",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    policies_parser = subparsers.add_parser(
        "policies",
        help="list registered migration policies and composition axes",
        description="Print every policy in the composable registry "
        "(repro.policies.registry) with its base algorithm and RSM "
        "guidance, plus the axis grammar accepted by 'profess run "
        "--policy' (base[+rsm][+swap:STYLE][+bypass:RATE][+stc:POLICY]).",
    )
    policies_parser.add_argument(
        "--markdown",
        action="store_true",
        help="emit the listing as markdown tables (README source)",
    )

    run_parser = subparsers.add_parser("run", help="run experiment(s)")
    run_parser.add_argument(
        "experiment",
        nargs="+",
        help="experiment id(s) (e.g. fig5 table4) or 'all'",
    )
    run_parser.add_argument(
        "--scale",
        type=int,
        default=DEFAULT_SCALE,
        help="capacity divisor vs the paper system (power of two)",
    )
    run_parser.add_argument(
        "--requests",
        type=int,
        default=DEFAULT_MULTI_REQUESTS,
        help="trace length per program (multiprogram runs)",
    )
    run_parser.add_argument(
        "--single-requests",
        type=int,
        default=DEFAULT_SINGLE_REQUESTS,
        help="trace length per program (single-program runs)",
    )
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument(
        "--policy",
        action="append",
        default=None,
        metavar="SPEC",
        help="restrict policy-sweep experiments (e.g. ext-policy-matrix) "
        "to these composable policy specs (repeatable; e.g. "
        "mdm+rsm+bypass:0.05+stc:lfu); see 'profess policies'",
    )
    run_parser.add_argument(
        "--validate-every",
        type=int,
        default=0,
        metavar="N",
        help="audit all simulator invariants (sim.validation) every N "
        "cycles during each run; corruption aborts the run instead of "
        "poisoning results (0 = off; does not affect cache keys)",
    )
    run_parser.add_argument(
        "--out", type=Path, default=None, help="directory for .txt reports"
    )
    run_parser.add_argument("--verbose", action="store_true")
    run_parser.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile and print the hottest functions "
        "(profiles the driving process; use --jobs 1)",
    )
    _add_execution_flags(run_parser)

    report_parser = subparsers.add_parser(
        "report",
        help="run every paper artifact and generate EXPERIMENTS.md",
    )
    report_parser.add_argument(
        "--scale", type=int, default=DEFAULT_SCALE
    )
    report_parser.add_argument(
        "--requests", type=int, default=DEFAULT_MULTI_REQUESTS
    )
    report_parser.add_argument(
        "--single-requests", type=int, default=DEFAULT_SINGLE_REQUESTS
    )
    report_parser.add_argument("--seed", type=int, default=0)
    report_parser.add_argument(
        "--output", type=Path, default=Path("EXPERIMENTS.md")
    )
    report_parser.add_argument(
        "--store", type=Path, default=None, help="directory for JSON results"
    )
    report_parser.add_argument("--verbose", action="store_true")
    _add_execution_flags(report_parser)

    trace_parser = subparsers.add_parser(
        "trace", help="synthesize a program trace to a .npz file"
    )
    trace_parser.add_argument("program", help="Table 9 program name")
    trace_parser.add_argument("output", type=Path)
    trace_parser.add_argument("--requests", type=int, default=50_000)
    trace_parser.add_argument("--scale", type=int, default=DEFAULT_SCALE)
    trace_parser.add_argument("--seed", type=int, default=0)

    char_parser = subparsers.add_parser(
        "characterize", help="summarize a trace file (or a program name)"
    )
    char_parser.add_argument(
        "trace", help="path to a .npz trace, or a Table 9 program name"
    )
    char_parser.add_argument("--requests", type=int, default=50_000)
    char_parser.add_argument("--scale", type=int, default=DEFAULT_SCALE)
    char_parser.add_argument("--seed", type=int, default=0)

    cache_parser = subparsers.add_parser(
        "cache",
        help="inspect or maintain a persistent result cache directory",
        description="Report entry and quarantine counts for a "
        "--cache-dir, optionally deleting quarantined entries "
        "(--prune-quarantine) or every entry (--clear).  Quarantine "
        "holds corrupt/stale payloads moved aside for diagnosis; nothing "
        "expires them automatically, so long-lived shared caches need "
        "the occasional prune.",
    )
    cache_parser.add_argument(
        "--cache-dir",
        type=_cache_dir,
        required=True,
        help="the cache directory to inspect (same flag as 'profess run')",
    )
    cache_parser.add_argument(
        "--prune-quarantine",
        action="store_true",
        help="delete quarantined entries and their .reason.txt notes",
    )
    cache_parser.add_argument(
        "--clear",
        action="store_true",
        help="delete every cached result (quarantine is left alone "
        "unless --prune-quarantine is also given)",
    )

    perf_parser = subparsers.add_parser(
        "perf",
        help="run the standard kernel benchmark (events/sec)",
        description="Measure simulation-kernel throughput on two fixed "
        "scenarios and write BENCH_kernel.json.  With --baseline, exits "
        "non-zero when events/sec regresses below --min-ratio times the "
        "recorded rates (the CI perf-smoke gate).  With --sweep, run the "
        "sweep-scale benchmark instead: a few hundred small specs "
        "through the executor under --transport, gating throughput "
        "(floor) and parent peak RSS (ceiling) against a baseline "
        "BENCH_sweep.json (the CI sweep-scale gate).",
    )
    perf_parser.add_argument(
        "--quick",
        action="store_true",
        help="shorter traces (CI-sized; compare only against a quick baseline)",
    )
    perf_parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="repeats per scenario; the best repeat is reported",
    )
    perf_parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="where to write the benchmark payload (default "
        "BENCH_kernel.json, or BENCH_sweep.json with --sweep)",
    )
    perf_parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline BENCH_kernel.json (or BENCH_sweep.json with "
        "--sweep) to compare against",
    )
    perf_parser.add_argument(
        "--min-ratio",
        type=float,
        default=0.7,
        help="fail when events/sec drops below this fraction of baseline",
    )
    perf_parser.add_argument(
        "--sweep",
        action="store_true",
        help="run the sweep-scale execution benchmark instead of the "
        "kernel benchmark (throughput floor + parent peak-RSS ceiling)",
    )
    perf_parser.add_argument(
        "--sweep-specs",
        type=int,
        default=200,
        metavar="N",
        help="wave width for --sweep (baselines only compare at equal N)",
    )
    perf_parser.add_argument(
        "--jobs",
        type=_job_count,
        default=1,
        help="worker processes for --sweep (1 = in-process serial)",
    )
    perf_parser.add_argument(
        "--max-rss-ratio",
        type=float,
        default=1.4,
        help="with --sweep and --baseline: fail when parent peak RSS "
        "exceeds this multiple of the baseline's",
    )
    _add_transport_flag(perf_parser)
    perf_parser.add_argument(
        "--components",
        action="store_true",
        help="also run each scenario once with per-component timing "
        "(instrumented event loop; slower) and print the breakdown",
    )
    perf_parser.add_argument(
        "--decode",
        action="store_true",
        help="also benchmark trace decoding itself: the legacy "
        "per-element front end vs the batched numpy decoder "
        "(before/after evidence for DESIGN.md Sec. 12)",
    )
    perf_parser.add_argument(
        "--summary",
        type=Path,
        default=None,
        metavar="FILE",
        help="append a markdown delta-vs-baseline table to FILE (CI "
        "writes this to $GITHUB_STEP_SUMMARY)",
    )
    perf_parser.add_argument("--verbose", action="store_true")
    _add_backend_flag(perf_parser)

    golden_parser = subparsers.add_parser(
        "golden",
        help="regenerate the golden determinism scenarios and digest them",
        description="Run every golden scenario (tests/golden/) and print "
        "its SHA-256 digest.  --check diffs the regenerated results "
        "byte-for-byte against the checked-in blobs; --out writes a "
        "digest JSON for the CI cross-version determinism gate.",
    )
    golden_parser.add_argument(
        "--check",
        type=Path,
        default=None,
        metavar="DIR",
        help="golden blob directory to verify against (e.g. tests/golden)",
    )
    golden_parser.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="FILE",
        help="write {python, scenarios: {name: sha256}} JSON to FILE",
    )
    _add_backend_flag(golden_parser)

    lint_parser = subparsers.add_parser(
        "lint",
        help="run the repro static-analysis pass (determinism/hot-path/"
        "contract rules)",
        description="AST-based project lint (DESIGN.md Sec. 11): D-rules "
        "protect golden determinism, H-rules protect the kernel fast "
        "path via the hot-path manifest, C-rules enforce API contracts. "
        "Exit 0 when clean, 1 when findings remain, 2 on usage errors.",
    )
    lint_parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the repro package)",
    )
    lint_parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (json is one object with a findings array; "
        "sarif is a SARIF 2.1.0 log for GitHub code scanning)",
    )
    lint_parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids/prefixes to enable (e.g. D,H201)",
    )
    lint_parser.add_argument(
        "--ignore",
        default=None,
        help="comma-separated rule ids/prefixes to disable",
    )
    lint_parser.add_argument(
        "--changed",
        action="store_true",
        help="lint only files changed vs HEAD (pre-commit mode)",
    )
    lint_parser.add_argument(
        "--exclude",
        action="append",
        type=Path,
        default=[],
        metavar="PATH",
        help="file or directory subtree to skip (repeatable; used to "
        "keep deliberately-broken lint fixtures out of a tests/ sweep)",
    )
    lint_parser.add_argument(
        "--show-unused-noqa",
        action="store_true",
        help="also report `# repro: noqa` comments that no longer match "
        "any finding (rule W001)",
    )
    lint_parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id with its description and exit",
    )
    return parser


def _make_runner(args: argparse.Namespace) -> ExperimentRunner:
    return ExperimentRunner(
        scale=args.scale,
        multi_requests=args.requests,
        single_requests=args.single_requests,
        seed=args.seed,
        verbose=getattr(args, "verbose", False),
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        validate_every=getattr(args, "validate_every", 0),
        policies=getattr(args, "policy", None),
        mem_backend=getattr(args, "mem_backend", "auto"),
        retries=getattr(args, "retries", 1),
        run_timeout=getattr(args, "run_timeout", None),
        fail_fast=getattr(args, "fail_fast", False),
        resume=getattr(args, "resume", False),
        transport=getattr(args, "transport", "auto"),
    )


def _run(args: argparse.Namespace) -> int:
    from repro.common.errors import (
        InvalidValueError,
        PolicySpecError,
        UnknownPolicyError,
    )
    from repro.exec import SweepFailure, format_failure_table
    from repro.experiments.paper_report import format_run_stats
    from repro.policies.registry import canonical_policy

    # Validate the complete request before simulating anything: a typo
    # at the end of an id list must not waste the runs before it.
    try:
        ids = resolve_experiment_ids(args.experiment)
    except UnknownExperimentError as error:
        unknown = ", ".join(map(repr, error.unknown))
        print(
            f"unknown experiment(s) {unknown}; try 'profess list'",
            file=sys.stderr,
        )
        return 2
    try:
        for spec in args.policy or ():
            canonical_policy(spec)
    except (PolicySpecError, UnknownPolicyError) as error:
        print(f"bad --policy: {error}", file=sys.stderr)
        return 2
    try:
        runner = _make_runner(args)
    except InvalidValueError as error:
        print(f"profess run: {error}", file=sys.stderr)
        return 2
    summary = runner.resume_summary()
    if summary is not None:
        print(summary)
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    for experiment_id in ids:
        started = time.time()
        try:
            result = run_experiment(experiment_id, runner)
        except SweepFailure as error:
            print(f"[{experiment_id} aborted: fail-fast]", file=sys.stderr)
            print(format_failure_table(error.failures), file=sys.stderr)
            return 1
        report = result.render()
        elapsed = time.time() - started
        print(report)
        print(f"[{experiment_id} completed in {elapsed:.1f}s]\n")
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / f"{experiment_id}.txt").write_text(report + "\n")
    if profiler is not None:
        import pstats

        profiler.disable()
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.strip_dirs().sort_stats("cumulative").print_stats(25)
    if args.verbose:
        from repro.perf.sweep_bench import peak_rss_mb

        print(format_run_stats(runner))
        rss = peak_rss_mb()
        if rss > 0:
            print(f"parent peak RSS: {rss:,.1f} MiB")
    if runner.failures:
        print(format_failure_table(runner.failures), file=sys.stderr)
        print(
            f"{len(runner.failures)} run(s) failed; rerun with --resume "
            "and --cache-dir to retry only the failures",
            file=sys.stderr,
        )
        return 1
    return 0


def _report(args: argparse.Namespace) -> int:
    from repro.experiments.paper_report import (
        format_run_stats,
        generate_experiments_md,
    )
    from repro.common.errors import InvalidValueError
    from repro.experiments.store import ResultStore

    try:
        runner = _make_runner(args)
    except InvalidValueError as error:
        print(f"profess report: {error}", file=sys.stderr)
        return 2
    store = ResultStore(args.store) if args.store is not None else None
    started = time.time()
    generate_experiments_md(runner, args.output, store=store)
    print(f"wrote {args.output} in {time.time() - started:.0f}s")
    if args.verbose:
        print(format_run_stats(runner))
    return 0


def _trace(args: argparse.Namespace) -> int:
    from repro.traces.generator import synthesize_trace

    trace = synthesize_trace(
        args.program, args.requests, scale=args.scale, seed=args.seed
    )
    trace.save(args.output)
    print(
        f"wrote {args.output}: {len(trace)} requests, "
        f"MPKI {trace.mpki:.1f}, writes {trace.write_fraction:.1%}"
    )
    return 0


def _characterize(args: argparse.Namespace) -> int:
    from repro.cpu.trace import Trace
    from repro.traces.generator import synthesize_trace
    from repro.traces.spec import PROGRAM_PROFILES
    from repro.traces.stats import characterize

    if args.trace in PROGRAM_PROFILES:
        trace = synthesize_trace(
            args.trace, args.requests, scale=args.scale, seed=args.seed
        )
    else:
        trace = Trace.load(args.trace)
    summary = characterize(trace)
    print(f"requests:                  {summary.requests}")
    print(f"instructions:              {summary.instructions}")
    print(f"MPKI:                      {summary.mpki:.2f}")
    print(f"write fraction:            {summary.write_fraction:.1%}")
    print(f"footprint:                 {summary.footprint_bytes / 1024:.0f} KB")
    print(f"distinct 2-KB blocks:      {summary.distinct_blocks}")
    print(f"mean accesses per block:   {summary.mean_accesses_per_block:.1f}")
    print(f"top-decile access share:   {summary.top_decile_access_share:.1%}")
    print(f"same-block request pairs:  {summary.same_block_fraction:.1%}")
    reuse = summary.median_block_reuse_distance
    print(
        "median block reuse dist:   "
        + (f"{reuse:.0f}" if reuse is not None else "n/a (streaming)")
    )
    return 0


def _perf_sweep(args: argparse.Namespace) -> int:
    import json

    from repro.perf.sweep_bench import (
        compare_sweep_to_baseline,
        run_sweep_benchmark,
        sweep_markdown_summary,
        write_sweep_json,
    )

    progress = print if args.verbose else None
    payload = run_sweep_benchmark(
        count=args.sweep_specs,
        jobs=args.jobs,
        transport=args.transport,
        progress=progress,
    )
    print(
        f"sweep    {payload['spec_count']} specs  "
        f"jobs={payload['jobs']} transport={payload['transport']}  "
        f"{payload['requests_per_sec']:>11,.0f} requests/sec  "
        f"peak RSS {payload['peak_rss_mb']:,.1f} MiB"
    )
    if payload["failed"]:
        print(
            f"PERF WARNING: {payload['failed']} spec(s) failed",
            file=sys.stderr,
        )
    out = args.out if args.out is not None else Path("BENCH_sweep.json")
    write_sweep_json(payload, out)
    print(f"wrote {out}")

    baseline = None
    if args.baseline is not None:
        baseline = json.loads(args.baseline.read_text())

    if args.summary is not None:
        with args.summary.open("a") as handle:
            handle.write(sweep_markdown_summary(payload, baseline))
        print(f"appended summary to {args.summary}")

    if baseline is not None:
        failures = compare_sweep_to_baseline(
            payload,
            baseline,
            min_ratio=args.min_ratio,
            max_rss_ratio=args.max_rss_ratio,
        )
        if failures:
            for failure in failures:
                print(f"SWEEP REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(
            f"within {args.min_ratio:.2f}x throughput / "
            f"{args.max_rss_ratio:.2f}x RSS of baseline {args.baseline}"
        )
    return 0


def _perf(args: argparse.Namespace) -> int:
    import json

    if args.sweep:
        return _perf_sweep(args)

    from repro.perf.bench import (
        compare_to_baseline,
        compatibility_warnings,
        markdown_summary,
        run_kernel_benchmark,
        standard_scenarios,
        write_bench_json,
    )
    from repro.perf.profile import KernelProfile

    progress = print if args.verbose else None
    payload = run_kernel_benchmark(
        quick=args.quick,
        repeats=args.repeats,
        progress=progress,
        backend=args.mem_backend,
    )
    for scenario in payload["scenarios"]:
        print(
            f"{scenario['name']:<8}"
            f"{scenario['backend']:<10}"
            f"{scenario['events']:>10,} events  "
            f"{scenario['events_per_sec']:>11,.0f} events/sec  "
            f"{scenario['requests_per_sec']:>10,.0f} requests/sec"
        )

    if args.decode:
        from repro.perf.decode_bench import run_decode_benchmark

        decode = run_decode_benchmark(
            quick=args.quick, repeats=args.repeats, progress=progress
        )
        payload["decode"] = decode
        print(
            f"decode  {decode['requests']:>10,} requests  "
            f"legacy {decode['legacy_seconds']:.4f}s  "
            f"batched {decode['batched_seconds']:.4f}s  "
            f"{decode['speedup']:.1f}x (identical={decode['identical']})"
        )

    out = args.out if args.out is not None else Path("BENCH_kernel.json")
    write_bench_json(payload, out)
    print(f"wrote {out}")

    if args.components:
        for scenario in standard_scenarios(quick=args.quick):
            profile = KernelProfile(component_timing=True)
            scenario.build_driver(profile).run()
            print(f"\n{scenario.name}: time per component (instrumented)")
            for label, calls, seconds in profile.component_table()[:12]:
                print(f"  {label:<40} {calls:>9,} calls  {seconds:>8.3f}s")

    baseline = None
    if args.baseline is not None:
        baseline = json.loads(args.baseline.read_text())

    if args.summary is not None:
        with args.summary.open("a") as handle:
            handle.write(markdown_summary(payload, baseline))
        print(f"appended summary to {args.summary}")

    if baseline is not None:
        for warning in compatibility_warnings(payload, baseline):
            print(f"PERF WARNING: {warning}", file=sys.stderr)
        failures = compare_to_baseline(
            payload, baseline, min_ratio=args.min_ratio
        )
        if failures:
            for failure in failures:
                print(f"PERF REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"within {args.min_ratio:.2f}x of baseline {args.baseline}")
    return 0


def _cache(args: argparse.Namespace) -> int:
    from repro.exec.cache import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.clear:
        removed = cache.clear()
        print(f"cleared {removed} cached result(s)")
    if args.prune_quarantine:
        pruned = cache.prune_quarantine()
        print(f"pruned {pruned} quarantined entr(ies)")
    print(f"cache {args.cache_dir}: {len(cache)} entr(ies), "
          f"{cache.quarantine_count()} quarantined")
    return 0


def _golden(args: argparse.Namespace) -> int:
    import json
    import platform

    from repro.sim.golden import check_against_blobs, golden_digests

    digests = golden_digests(mem_backend=args.mem_backend)
    for name, digest in sorted(digests.items()):
        print(f"{name:<16} sha256:{digest}")
    if args.out is not None:
        args.out.write_text(
            json.dumps(
                {
                    "python": platform.python_version(),
                    "scenarios": digests,
                },
                indent=1,
                sort_keys=True,
            )
            + "\n"
        )
        print(f"wrote {args.out}")
    if args.check is not None:
        problems = check_against_blobs(args.check, mem_backend=args.mem_backend)
        if problems:
            for name, problem in sorted(problems.items()):
                print(f"GOLDEN MISMATCH: {name}: {problem}", file=sys.stderr)
            return 1
        print(f"all scenarios byte-identical to {args.check}")
    return 0


def _lint(args: argparse.Namespace) -> int:
    import json

    from repro.lint import RULES, LintError, lint_paths, render_sarif

    if args.list_rules:
        width = max(len(rule) for rule in RULES)
        for rule, description in sorted(RULES.items()):
            print(f"{rule.ljust(width)}  {description}")
        return 0
    paths = args.paths or [Path(__file__).parent]
    try:
        findings = lint_paths(
            paths,
            select=args.select,
            ignore=args.ignore,
            changed_only=args.changed,
            exclude=args.exclude,
            show_unused_noqa=args.show_unused_noqa,
        )
    except LintError as error:
        print(f"lint: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(
            json.dumps(
                {
                    "findings": [f.to_dict() for f in findings],
                    "count": len(findings),
                },
                indent=2,
            )
        )
    elif args.format == "sarif":
        print(json.dumps(render_sarif(findings), indent=2))
    else:
        for finding in findings:
            print(finding.render_trace())
        if findings:
            counts: dict[str, int] = {}
            for finding in findings:
                counts[finding.rule] = counts.get(finding.rule, 0) + 1
            summary = ", ".join(
                f"{rule} x{count}" for rule, count in sorted(counts.items())
            )
            print(f"{len(findings)} finding(s): {summary}", file=sys.stderr)
    return 1 if findings else 0


def _policies(args: argparse.Namespace) -> int:
    from repro.common.config import STC_REPLACEMENTS, SWAP_STYLES
    from repro.policies.registry import guided_bases, iter_registered

    entries = list(iter_registered())
    guided = ", ".join(guided_bases())
    swap_styles = ", ".join(SWAP_STYLES)
    stc_policies = ", ".join(STC_REPLACEMENTS)
    if args.markdown:
        print("| name | base | guidance | description |")
        print("| --- | --- | --- | --- |")
        for entry in entries:
            guidance = "RSM" if entry.guidance else "—"
            print(
                f"| `{entry.name}` | {entry.base} | {guidance} "
                f"| {entry.description} |"
            )
        print()
        print("| axis | values | default |")
        print("| --- | --- | --- |")
        print(f"| `+rsm` | guided bases: {guided} | off |")
        print(f"| `+swap:STYLE` | {swap_styles} | policy default |")
        print("| `+bypass:RATE` | [0, 1) | 0 (off) |")
        print(f"| `+stc:POLICY` | {stc_policies} | lru |")
    else:
        width = max(len(entry.name) for entry in entries)
        for entry in entries:
            tag = " [rsm]" if entry.guidance else ""
            print(f"{entry.name.ljust(width)}  {entry.description}{tag}")
        print()
        print(
            "compose axes with '+': "
            "base[+rsm][+swap:STYLE][+bypass:RATE][+stc:POLICY]"
        )
        print(f"  rsm guidance available for: {guided}")
        print(f"  swap styles: {swap_styles}")
        print(f"  stc replacement: {stc_policies}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(i) for i in EXPERIMENTS)
        for experiment_id, spec in EXPERIMENTS.items():
            print(f"{experiment_id.ljust(width)}  {spec.description}")
        return 0
    if args.command == "policies":
        return _policies(args)
    if args.command == "report":
        return _report(args)
    if args.command == "trace":
        return _trace(args)
    if args.command == "characterize":
        return _characterize(args)
    if args.command == "perf":
        return _perf(args)
    if args.command == "cache":
        return _cache(args)
    if args.command == "golden":
        return _golden(args)
    if args.command == "lint":
        return _lint(args)
    return _run(args)


if __name__ == "__main__":
    sys.exit(main())
