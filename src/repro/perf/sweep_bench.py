"""The sweep-scale benchmark behind ``profess perf --sweep``.

Where the kernel benchmark (:mod:`repro.perf.bench`) measures how fast
one simulation runs, this one measures how well the *execution
subsystem* carries a wide wave: it fans a few hundred small single-core
specs through the real :class:`~repro.exec.executor.Executor` under a
chosen transport, folds every result through a counting reducer (so the
parent never materializes the wave — the scenario the shm transport and
streaming aggregation exist for), and records two numbers that gate CI:

* sustained throughput (requests simulated per second of wall clock);
* the parent process's **peak RSS** (``ru_maxrss``) — the headline
  property: with frames in shared memory and streaming reduction, parent
  memory must stay flat no matter how many specs the wave holds.

The payload lands in ``BENCH_sweep.json`` and
:func:`compare_sweep_to_baseline` backs the ``sweep-scale`` CI job:
throughput has a 0.7x-style floor (like perf-smoke), peak RSS has a
*ceiling* against the checked-in baseline — a regression that quietly
re-materializes waves in the parent trips it long before a runner OOMs.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Optional

from repro.common.config import paper_single_core
from repro.exec.executor import Executor
from repro.exec.resilience import RunFailure
from repro.exec.spec import RunSpec
from repro.sim.results import SimulationResult

SWEEP_SCHEMA_VERSION = 1

#: Programs the sweep cycles through (distinct access patterns, all
#: cheap at the benchmark scale).
SWEEP_PROGRAMS = ("zeusmp", "leslie3d", "mcf", "libquantum", "lbm", "omnetpp")
#: Policies the sweep alternates between.
SWEEP_POLICIES = ("pom", "mdm")
#: Capacity divisor / trace length per spec: small enough that 200 specs
#: finish in CI minutes, large enough that each spec does real work.
#: 128 is the largest divisor the scaled single-core organization
#: supports (beyond it, regions drop under two swap-group pairs).
SWEEP_SCALE = 128
SWEEP_REQUESTS = 300


def peak_rss_mb() -> float:
    """This process's lifetime peak resident set size, in MiB.

    ``ru_maxrss`` is kibibytes on Linux and bytes on macOS; a platform
    without :mod:`resource` (Windows) reports 0.0, which disables the
    RSS gate rather than failing it.
    """
    try:
        import resource
    except ImportError:
        return 0.0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def build_sweep_specs(count: int = 200) -> list[RunSpec]:
    """``count`` distinct small single-core specs (a synthetic wave).

    Programs, policies, and seeds cycle so every spec has a unique cache
    key (nothing deduplicates away) while staying individually cheap.
    """
    config = paper_single_core(scale=SWEEP_SCALE)
    specs = []
    for index in range(count):
        specs.append(
            RunSpec(
                kind="single",
                programs=(SWEEP_PROGRAMS[index % len(SWEEP_PROGRAMS)],),
                policy=SWEEP_POLICIES[index % len(SWEEP_POLICIES)],
                config=config,
                requests=SWEEP_REQUESTS,
                seed=index // len(SWEEP_PROGRAMS),
                trace_scale=SWEEP_SCALE,
            )
        )
    return specs


class _CountingReducer:
    """Folds a wave into running totals; retains no results."""

    def __init__(
        self, progress: Optional[Callable[[str], None]] = None,
        every: int = 50,
    ) -> None:
        self.completed = 0
        self.failed = 0
        self.total_requests = 0
        self.total_cycles = 0
        self._progress = progress
        self._every = every

    def fold(
        self, key: str, spec: RunSpec, result: SimulationResult
    ) -> None:
        self.completed += 1
        self.total_requests += result.total_requests
        self.total_cycles += result.cycles
        if self._progress is not None and self.completed % self._every == 0:
            self._progress(f"  {self.completed} specs folded")

    def fold_failure(self, failure: RunFailure) -> None:
        self.failed += 1


def run_sweep_benchmark(
    count: int = 200,
    jobs: int = 1,
    transport: str = "auto",
    progress: Optional[Callable[[str], None]] = None,
) -> dict:
    """Run the sweep-scale benchmark; returns the ``BENCH_sweep.json``
    payload.

    No disk cache is attached, so every spec simulates — the measured
    throughput is execution-subsystem throughput, not cache luck.  Peak
    RSS is sampled after the wave drains and covers the whole process
    lifetime, which is exactly what a CI memory gate cares about.
    """
    specs = build_sweep_specs(count)
    reducer = _CountingReducer(progress)
    executor = Executor(jobs=jobs, transport=transport)
    started = time.perf_counter()
    executor.run_wave(specs, reducer=reducer)
    wall_seconds = time.perf_counter() - started
    rss = peak_rss_mb()
    return {
        "schema_version": SWEEP_SCHEMA_VERSION,
        "kind": "sweep",
        "spec_count": count,
        "jobs": jobs,
        "transport": transport,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "completed": reducer.completed,
        "failed": reducer.failed,
        "total_requests": reducer.total_requests,
        "total_cycles": reducer.total_cycles,
        "wall_seconds": wall_seconds,
        "requests_per_sec": (
            reducer.total_requests / wall_seconds if wall_seconds > 0 else 0.0
        ),
        "specs_per_sec": (
            reducer.completed / wall_seconds if wall_seconds > 0 else 0.0
        ),
        "peak_rss_mb": rss,
    }


def write_sweep_json(payload: dict, path: Path) -> None:
    """Write the payload (stable formatting for diffs)."""
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")


def compare_sweep_to_baseline(
    payload: dict,
    baseline: dict,
    min_ratio: float = 0.7,
    max_rss_ratio: float = 1.4,
) -> list[str]:
    """The sweep-scale CI gate; returns failures (empty = pass).

    Two checks against the checked-in baseline:

    * throughput floor — requests/sec below ``min_ratio`` x baseline
      fails (the perf-smoke pattern: the baseline is recorded well under
      a quiet machine's rate, so shared-runner noise cannot trip it);
    * peak-RSS ceiling — parent peak RSS above ``max_rss_ratio`` x
      baseline fails (the regression this benchmark exists to catch:
      results re-materializing in the parent scales RSS with the wave).

    Runs of different spec counts are not comparable and fail fast; a
    baseline or run without RSS data (``peak_rss_mb`` <= 0, e.g. a
    platform without ``resource``) skips the RSS check only.
    """
    failures: list[str] = []
    if payload.get("spec_count") != baseline.get("spec_count"):
        failures.append(
            f"sweep size mismatch: current {payload.get('spec_count')} "
            f"specs vs baseline {baseline.get('spec_count')} — re-record "
            "the baseline"
        )
        return failures
    reference_rate = baseline.get("requests_per_sec") or 0.0
    current_rate = payload.get("requests_per_sec") or 0.0
    if reference_rate > 0:
        ratio = current_rate / reference_rate
        if ratio < min_ratio:
            failures.append(
                f"sweep throughput: {current_rate:,.0f} requests/sec is "
                f"{ratio:.2f}x the baseline {reference_rate:,.0f} "
                f"(floor {min_ratio:.2f}x)"
            )
    reference_rss = baseline.get("peak_rss_mb") or 0.0
    current_rss = payload.get("peak_rss_mb") or 0.0
    if reference_rss > 0 and current_rss > 0:
        rss_ratio = current_rss / reference_rss
        if rss_ratio > max_rss_ratio:
            failures.append(
                f"parent peak RSS: {current_rss:.1f} MiB is "
                f"{rss_ratio:.2f}x the baseline {reference_rss:.1f} MiB "
                f"(ceiling {max_rss_ratio:.2f}x) — is the wave "
                "materializing in the parent again?"
            )
    return failures


def sweep_markdown_summary(
    payload: dict, baseline: Optional[dict] = None
) -> str:
    """Delta-vs-baseline table for ``$GITHUB_STEP_SUMMARY``."""
    lines = [
        "## Sweep-scale benchmark "
        f"({payload.get('spec_count', '?')} specs, "
        f"jobs={payload.get('jobs', '?')}, "
        f"transport={payload.get('transport', '?')}, "
        f"Python {payload.get('python', '?')})",
        "",
        "| metric | current | baseline | delta |",
        "| --- | ---: | ---: | ---: |",
    ]
    baseline = baseline or {}

    def row(label: str, key: str, fmt: str) -> str:
        current = payload.get(key)
        reference = baseline.get(key)
        current_cell = format(current, fmt) if current is not None else "—"
        if reference:
            reference_cell = format(reference, fmt)
            delta_cell = f"{(current or 0.0) / reference:.2f}x"
        else:
            reference_cell = delta_cell = "—"
        return f"| {label} | {current_cell} | {reference_cell} | {delta_cell} |"

    lines.append(row("requests/sec", "requests_per_sec", ",.0f"))
    lines.append(row("specs/sec", "specs_per_sec", ",.2f"))
    lines.append(row("parent peak RSS (MiB)", "peak_rss_mb", ",.1f"))
    lines.append(row("wall seconds", "wall_seconds", ",.2f"))
    if payload.get("failed"):
        lines += ["", f"> :warning: {payload['failed']} spec(s) failed"]
    return "\n".join(lines) + "\n"
