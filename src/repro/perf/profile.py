"""Throughput counters for the simulation kernel.

A :class:`KernelProfile` is handed to :class:`repro.sim.engine.
SimulationDriver` and accumulates events processed, demand requests
served, simulated cycles, and wall-clock seconds across one or more
runs.  When ``component_timing`` is enabled the driver switches to the
instrumented event loop (:meth:`EventQueue.run_profiled`), which times
every callback into per-component buckets — useful for finding the next
hot spot, at a substantial slowdown.  With the flag off (the default)
the kernel runs the uninstrumented fast path and the profile costs one
attribute check per run, not per event.
"""

from __future__ import annotations


class KernelProfile:
    """Accumulated kernel throughput counters (events, requests, wall time)."""

    __slots__ = (
        "events_processed",
        "requests_served",
        "cycles_simulated",
        "wall_seconds",
        "runs",
        "component_timing",
        "component_buckets",
    )

    def __init__(self, component_timing: bool = False) -> None:
        self.events_processed = 0
        self.requests_served = 0
        self.cycles_simulated = 0
        self.wall_seconds = 0.0
        self.runs = 0
        #: When True, the driver uses the instrumented event loop and
        #: fills ``component_buckets``; when False the buckets stay empty
        #: and the kernel pays nothing per event.
        self.component_timing = component_timing
        #: label -> [calls, seconds]; labels are callback qualnames
        #: (e.g. ``Channel._tick``, ``TraceCore._dispatch``).
        self.component_buckets: dict[str, list] = {}

    # ------------------------------------------------------------------
    def record_run(
        self, events: int, requests: int, cycles: int, wall_seconds: float
    ) -> None:
        """Fold one completed simulation into the totals."""
        self.events_processed += events
        self.requests_served += requests
        self.cycles_simulated += cycles
        self.wall_seconds += wall_seconds
        self.runs += 1

    # ------------------------------------------------------------------
    @property
    def events_per_sec(self) -> float:
        """Processed events per wall-second (the kernel's headline rate)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.events_processed / self.wall_seconds

    @property
    def requests_per_sec(self) -> float:
        """Simulated 64-B requests served per wall-second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.requests_served / self.wall_seconds

    def component_table(self) -> list[tuple[str, int, float]]:
        """(label, calls, seconds) rows, heaviest bucket first."""
        return sorted(
            (
                (label, bucket[0], bucket[1])
                for label, bucket in self.component_buckets.items()
            ),
            key=lambda row: row[2],
            reverse=True,
        )

    def to_dict(self) -> dict:
        """JSON-compatible summary (feeds ``BENCH_kernel.json``)."""
        payload = {
            "events_processed": self.events_processed,
            "requests_served": self.requests_served,
            "cycles_simulated": self.cycles_simulated,
            "wall_seconds": self.wall_seconds,
            "runs": self.runs,
            "events_per_sec": self.events_per_sec,
            "requests_per_sec": self.requests_per_sec,
        }
        if self.component_buckets:
            payload["components"] = {
                label: {"calls": calls, "seconds": seconds}
                for label, calls, seconds in self.component_table()
            }
        return payload

    def __repr__(self) -> str:
        return (
            f"KernelProfile(runs={self.runs}, "
            f"events={self.events_processed}, "
            f"events_per_sec={self.events_per_sec:,.0f})"
        )
