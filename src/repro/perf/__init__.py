"""Kernel performance instrumentation and benchmarking.

The simulator's value scales with simulated requests per wall-second;
this package is the layer that measures it: :class:`KernelProfile`
accumulates throughput counters for one or more runs (optionally with
per-component time buckets), and :mod:`repro.perf.bench` defines the
standard kernel benchmark behind ``profess perf`` / ``BENCH_kernel.json``.
"""

from repro.perf.profile import KernelProfile
from repro.perf.bench import (
    BENCH_SCHEMA_VERSION,
    KernelBenchResult,
    compare_to_baseline,
    compatibility_warnings,
    markdown_summary,
    run_kernel_benchmark,
    standard_scenarios,
)
from repro.perf.decode_bench import run_decode_benchmark

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "KernelBenchResult",
    "KernelProfile",
    "compare_to_baseline",
    "compatibility_warnings",
    "markdown_summary",
    "run_decode_benchmark",
    "run_kernel_benchmark",
    "standard_scenarios",
]
