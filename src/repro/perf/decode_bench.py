"""Before/after benchmark for the trace-decode front end.

The batched decoder (:mod:`repro.traces.decode`, DESIGN.md §12) replaced
a per-element Python conversion loop in ``TraceCore.__init__``.  This
module keeps that legacy loop alive as a reference implementation and
measures both against the same synthesized trace, so the decode win
stays quantified (``profess perf --decode``) and the two front ends are
re-proven to produce identical Python values on every run — the
operational half of the determinism argument.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Optional

from repro.cpu.trace import Trace
from repro.traces.decode import TraceDecoder

#: Trace used for the decode benchmark: long enough that per-element
#: interpreter cost dominates timer noise.
DECODE_BENCH_PROGRAM = "zeusmp"
DECODE_BENCH_REQUESTS = 200_000
DECODE_BENCH_QUICK_REQUESTS = 50_000


def legacy_decode(
    trace: Trace, issue_ipc: float
) -> tuple[list, list, list, list]:
    """The seed's per-element front end, verbatim (the "before").

    Returns ``(compute_cycles, lines, writes, retired)`` where
    ``retired[i]`` is the instructions retired by request ``i`` alone
    (``gap + 1``).
    """
    gaps = [int(gap) for gap in trace.gaps]
    lines = [int(line) for line in trace.lines]
    writes = [bool(write) for write in trace.writes]
    cycles = [
        math.ceil(gap / issue_ipc) if gap > 0 else 0 for gap in gaps
    ]
    retired = [gap + 1 for gap in gaps]
    return cycles, lines, writes, retired


def batched_decode(
    trace: Trace, issue_ipc: float
) -> tuple[list, list, list, list]:
    """The numpy-batched front end (the "after"), fully materialized.

    Concatenates every chunk into whole-trace lists shaped exactly like
    :func:`legacy_decode`'s output so the two are directly comparable.
    """
    decoder = TraceDecoder(trace, issue_ipc)
    cycles: list = []
    lines: list = []
    writes: list = []
    retired: list = []
    for index in range(decoder.num_chunks):
        chunk = decoder.chunk(index)
        cycles.extend(chunk.cycles)
        lines.extend(chunk.lines)
        writes.extend(chunk.writes)
        prefix = chunk.retired_prefix
        retired.extend(
            prefix[i + 1] - prefix[i] for i in range(chunk.length)
        )
    return cycles, lines, writes, retired


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    best = math.inf
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def run_decode_benchmark(
    quick: bool = False,
    repeats: int = 3,
    issue_ipc: float = 2.0,
    progress: Optional[Callable[[str], None]] = None,
) -> dict:
    """Time legacy vs batched decoding of one standard trace.

    Returns a JSON-compatible payload (merged into ``BENCH_kernel.json``
    under ``"decode"``).  ``identical`` asserts the two front ends
    produced element-for-element equal Python values; a False here means
    the batched path broke the determinism contract.
    """
    from repro.traces.generator import synthesize_trace

    requests = DECODE_BENCH_QUICK_REQUESTS if quick else DECODE_BENCH_REQUESTS
    trace = synthesize_trace(
        DECODE_BENCH_PROGRAM, requests, scale=128, seed=0
    )
    legacy_seconds = _best_of(lambda: legacy_decode(trace, issue_ipc), repeats)
    batched_seconds = _best_of(
        lambda: batched_decode(trace, issue_ipc), repeats
    )
    identical = legacy_decode(trace, issue_ipc) == batched_decode(
        trace, issue_ipc
    )
    if progress is not None:
        progress(
            f"  decode {requests:,} requests: legacy {legacy_seconds:.4f}s, "
            f"batched {batched_seconds:.4f}s"
        )
    return {
        "program": DECODE_BENCH_PROGRAM,
        "requests": requests,
        "repeats": repeats,
        "issue_ipc": issue_ipc,
        "legacy_seconds": legacy_seconds,
        "batched_seconds": batched_seconds,
        "speedup": (
            legacy_seconds / batched_seconds if batched_seconds > 0 else 0.0
        ),
        "identical": identical,
    }
