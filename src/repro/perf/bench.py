"""The standard kernel benchmark behind ``profess perf``.

Two fixed scenarios exercise the event loop, channel, translation, and
policy layers the way real experiments do:

* ``single`` — one core, MDM policy, one long zeusmp trace (the
  single-program shape of Figures 5-9);
* ``multi`` — the paper's quad-core mix under ProFess (the
  multiprogrammed shape of Figures 10-16, with swaps, RSM sampling, and
  channel contention).

Each scenario is run ``repeats`` times and the best run is reported
(best-of filters scheduler noise; the simulations themselves are
deterministic, so every repeat does identical work).  Results are
written to ``BENCH_kernel.json`` so the events/sec trajectory is
tracked in-repo, and :func:`compare_to_baseline` backs the CI
perf-smoke gate.
"""

from __future__ import annotations

import json
import platform
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional

from repro.common.config import paper_quad_core, paper_single_core
from repro.perf.profile import KernelProfile

BENCH_SCHEMA_VERSION = 1

#: The quad-core benchmark mix: distinct access patterns (streaming,
#: hot-set, pointer-chase heavy) so channel contention and swap traffic
#: both appear.
MULTI_PROGRAMS = ("zeusmp", "leslie3d", "mcf", "libquantum")


@dataclass(frozen=True)
class BenchScenario:
    """One fixed benchmark configuration."""

    name: str
    policy: str
    #: (program, requests, seed) per core.
    programs: tuple[tuple[str, int, int], ...]
    quad: bool

    def build_driver(
        self,
        profile: Optional[KernelProfile] = None,
        mem_backend: Optional[str] = None,
    ):
        """A fresh driver for this scenario (imports deferred: CLI startup)."""
        from repro.sim.engine import SimulationDriver
        from repro.traces.generator import synthesize_trace

        config = paper_quad_core(scale=128) if self.quad else paper_single_core(scale=128)
        traces = [
            (program, synthesize_trace(program, requests, scale=128, seed=seed))
            for program, requests, seed in self.programs
        ]
        return SimulationDriver(
            config,
            self.policy,
            traces,
            seed=0,
            profile=profile,
            mem_backend=mem_backend,
        )


def standard_scenarios(quick: bool = False) -> list[BenchScenario]:
    """The standard (or ``--quick``) kernel-benchmark scenario set."""
    single_requests = 5_000 if quick else 20_000
    multi_requests = 1_500 if quick else 6_000
    return [
        BenchScenario(
            name="single",
            policy="mdm",
            programs=(("zeusmp", single_requests, 0),),
            quad=False,
        ),
        BenchScenario(
            name="multi",
            policy="profess",
            programs=tuple(
                (program, multi_requests, seed)
                for seed, program in enumerate(MULTI_PROGRAMS)
            ),
            quad=True,
        ),
    ]


@dataclass
class KernelBenchResult:
    """Measured throughput of one scenario (best repeat)."""

    name: str
    events: int
    requests: int
    cycles: int
    wall_seconds: float
    events_per_sec: float
    requests_per_sec: float
    backend: str = "python"

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "backend": self.backend,
            "events": self.events,
            "requests": self.requests,
            "cycles": self.cycles,
            "wall_seconds": self.wall_seconds,
            "events_per_sec": self.events_per_sec,
            "requests_per_sec": self.requests_per_sec,
        }


def run_scenario(
    scenario: BenchScenario,
    repeats: int = 3,
    progress: Optional[Callable[[str], None]] = None,
    mem_backend: str = "python",
) -> KernelBenchResult:
    """Run one scenario ``repeats`` times; report the fastest repeat."""
    best: Optional[KernelProfile] = None
    for repeat in range(repeats):
        profile = KernelProfile()
        scenario.build_driver(profile, mem_backend=mem_backend).run()
        if best is None or profile.events_per_sec > best.events_per_sec:
            best = profile
        if progress is not None:
            progress(
                f"  {scenario.name} [{mem_backend}] "
                f"repeat {repeat + 1}/{repeats}: "
                f"{profile.events_per_sec:,.0f} events/sec"
            )
    assert best is not None
    return KernelBenchResult(
        name=scenario.name,
        events=best.events_processed,
        requests=best.requests_served,
        cycles=best.cycles_simulated,
        wall_seconds=best.wall_seconds,
        events_per_sec=best.events_per_sec,
        requests_per_sec=best.requests_per_sec,
        backend=mem_backend,
    )


def benchmark_backends(backend: str = "auto") -> list[str]:
    """The backend list one ``profess perf`` invocation measures.

    ``auto`` always measures the pure-python reference and adds a
    ``compiled`` row only when numba actually imports (an interpreted
    "compiled" row would measure the fallback, not the jit).  An explicit
    backend measures exactly that backend.
    """
    from repro.mem.backend import compiled_available

    if backend == "auto":
        backends = ["python"]
        if compiled_available():
            backends.append("compiled")
        return backends
    return [backend]


def run_kernel_benchmark(
    quick: bool = False,
    repeats: int = 3,
    progress: Optional[Callable[[str], None]] = None,
    backend: str = "auto",
) -> dict:
    """Run the standard benchmark; returns the ``BENCH_kernel.json`` payload."""
    import numpy

    from repro.mem.backend import compiled_available

    backends = benchmark_backends(backend)
    results = [
        run_scenario(
            scenario, repeats=repeats, progress=progress, mem_backend=name
        )
        for scenario in standard_scenarios(quick=quick)
        for name in backends
    ]
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "quick": quick,
        "repeats": repeats,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "machine": platform.machine(),
        "compiled_available": compiled_available(),
        "scenarios": [result.to_dict() for result in results],
    }


def write_bench_json(payload: dict, path: Path) -> None:
    """Write the benchmark payload (stable formatting for diffs)."""
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")


def _python_minor(version: object) -> str:
    """``"3.12.4"`` -> ``"3.12"`` (tolerates junk: returns it verbatim)."""
    parts = str(version).split(".")
    return ".".join(parts[:2])


def compatibility_warnings(payload: dict, baseline: dict) -> list[str]:
    """Non-fatal comparability problems between a run and its baseline.

    ``BENCH_kernel.json`` records the host ``python``/``machine``, but
    the regression gate historically ignored them — so a baseline
    recorded under one interpreter was silently compared against runs of
    another, where a throughput delta may be the interpreter's, not the
    kernel's.  Warns (never fails) on a Python *minor*-version mismatch,
    and on a machine-architecture mismatch for the same reason.
    """
    warnings: list[str] = []
    current_python = payload.get("python")
    baseline_python = baseline.get("python")
    if (
        current_python
        and baseline_python
        and _python_minor(current_python) != _python_minor(baseline_python)
    ):
        warnings.append(
            f"baseline was recorded on Python {baseline_python} but this "
            f"run is Python {current_python}: events/sec deltas may "
            "reflect the interpreter, not the kernel"
        )
    current_machine = payload.get("machine")
    baseline_machine = baseline.get("machine")
    if (
        current_machine
        and baseline_machine
        and current_machine != baseline_machine
    ):
        warnings.append(
            f"baseline was recorded on {baseline_machine!r} but this run "
            f"is {current_machine!r}: rates are not directly comparable"
        )
    current_numpy = payload.get("numpy")
    baseline_numpy = baseline.get("numpy")
    if (
        current_numpy
        and baseline_numpy
        and _python_minor(current_numpy) != _python_minor(baseline_numpy)
    ):
        warnings.append(
            f"baseline was recorded with numpy {baseline_numpy} but this "
            f"run uses numpy {current_numpy}: the SoA kernel's array "
            "primitives may perform differently"
        )
    return warnings


def markdown_summary(payload: dict, baseline: Optional[dict] = None) -> str:
    """A markdown delta-vs-baseline table (the CI ``$GITHUB_STEP_SUMMARY``).

    One row per scenario with events/sec, requests/sec, and — when the
    scenario exists in ``baseline`` — the throughput ratio against it.
    Compatibility warnings are appended so a cross-interpreter
    comparison is flagged right in the PR summary.
    """
    mode = "quick" if payload.get("quick") else "full"
    lines = [
        "## Kernel benchmark "
        f"({mode}, best of {payload.get('repeats', '?')} repeats, "
        f"Python {payload.get('python', '?')})",
        "",
        "| scenario | backend | events/sec | requests/sec "
        "| baseline events/sec | delta |",
        "| --- | --- | ---: | ---: | ---: | ---: |",
    ]
    # The baseline is keyed on python-backend rows (pre-backend baselines
    # carry no "backend" key at all, which means python).
    baseline_rates = {
        scenario["name"]: scenario["events_per_sec"]
        for scenario in (baseline or {}).get("scenarios", [])
        if scenario.get("backend", "python") == "python"
    }
    python_rates: dict[str, float] = {}
    compiled_rates: dict[str, float] = {}
    for scenario in payload.get("scenarios", []):
        backend = scenario.get("backend", "python")
        if backend == "python":
            python_rates[scenario["name"]] = scenario["events_per_sec"]
        elif backend == "compiled":
            compiled_rates[scenario["name"]] = scenario["events_per_sec"]
        reference = (
            baseline_rates.get(scenario["name"])
            if backend == "python"
            else None
        )
        if reference:
            baseline_cell = f"{reference:,.0f}"
            delta_cell = f"{scenario['events_per_sec'] / reference:.2f}x"
        else:
            baseline_cell = delta_cell = "—"
        requests_rate = scenario.get("requests_per_sec")
        requests_cell = (
            f"{requests_rate:,.0f}" if requests_rate is not None else "—"
        )
        lines.append(
            f"| {scenario['name']} "
            f"| {backend} "
            f"| {scenario['events_per_sec']:,.0f} "
            f"| {requests_cell} "
            f"| {baseline_cell} | {delta_cell} |"
        )
    speedups = [
        f"{name} {compiled_rates[name] / python_rates[name]:.2f}x"
        for name in python_rates
        if name in compiled_rates and python_rates[name] > 0
    ]
    if speedups:
        lines += ["", "Compiled-vs-python speedup: " + ", ".join(speedups)]
    decode = payload.get("decode")
    if decode:
        lines += [
            "",
            f"Trace decode ({decode['requests']:,} requests): "
            f"legacy {decode['legacy_seconds']:.4f}s -> batched "
            f"{decode['batched_seconds']:.4f}s "
            f"(**{decode['speedup']:.1f}x**, identical="
            f"{decode['identical']})",
        ]
    if baseline is not None:
        for warning in compatibility_warnings(payload, baseline):
            lines += ["", f"> :warning: {warning}"]
    return "\n".join(lines) + "\n"


def compare_to_baseline(
    payload: dict, baseline: dict, min_ratio: float = 0.7
) -> list[str]:
    """Regression check: current events/sec vs a recorded baseline.

    Returns a list of human-readable failures (empty = pass).  A scenario
    fails when its events/sec drops below ``min_ratio`` times the
    baseline's; scenarios missing from the baseline are skipped (adding a
    scenario must not fail CI until the baseline is re-recorded).
    Comparisons are only meaningful between runs of the same mode
    (``quick`` vs full), which is also checked.  Only ``python``-backend
    rows are gated: the pure-python reference is the floor every machine
    can reproduce, while compiled rows depend on whether numba is
    installed (rows without a ``backend`` key predate backends and mean
    python).
    """
    failures: list[str] = []
    if bool(payload.get("quick")) != bool(baseline.get("quick")):
        failures.append(
            "benchmark mode mismatch: current quick="
            f"{payload.get('quick')} vs baseline quick={baseline.get('quick')}"
        )
        return failures
    baseline_rates = {
        scenario["name"]: scenario["events_per_sec"]
        for scenario in baseline.get("scenarios", [])
        if scenario.get("backend", "python") == "python"
    }
    for scenario in payload.get("scenarios", []):
        if scenario.get("backend", "python") != "python":
            continue
        reference = baseline_rates.get(scenario["name"])
        if reference is None or reference <= 0:
            continue
        ratio = scenario["events_per_sec"] / reference
        if ratio < min_ratio:
            failures.append(
                f"scenario {scenario['name']!r}: "
                f"{scenario['events_per_sec']:,.0f} events/sec is "
                f"{ratio:.2f}x the baseline {reference:,.0f} "
                f"(floor {min_ratio:.2f}x)"
            )
    return failures
