"""Result rendering: ASCII tables and box-plot summaries for the
experiment drivers and benchmark harness."""

from repro.analysis.plotting import hbar_chart, sparkline
from repro.analysis.report import (
    format_table,
    normalized_series_summary,
    render_boxplot_summary,
)

__all__ = [
    "format_table",
    "hbar_chart",
    "normalized_series_summary",
    "render_boxplot_summary",
    "sparkline",
]
