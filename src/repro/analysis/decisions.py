"""Predictor-calibration analysis for MDM.

MDM's central bet is that ``exp_cnt(q_I) - curr_cnt`` predicts how many
more (weighted) accesses a block will receive during its current STC
residency.  With ``MDMPolicy(record_predictions=True)`` the policy logs
(predicted, actual) pairs; this module turns them into calibration
statistics: bias, mean absolute error, rank correlation, and — most
relevant to migration quality — the *decision accuracy*: how often
``predicted >= min_benefit`` agrees with ``actual >= min_benefit``,
i.e. whether the promote/don't-promote verdict would have been right in
hindsight.

Caveat: per-block counters saturate at 63 (6-bit, Section 4.1), so
actuals are right-censored for very hot blocks; the calibration treats a
saturated actual as "at least" its value, which can only understate the
predictor's accuracy on the hot side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from repro.common.errors import InvalidValueError


@dataclass(frozen=True)
class CalibrationReport:
    """Summary of predicted-vs-actual remaining-access pairs."""

    pairs: int
    #: Mean (predicted - actual): positive = systematic over-prediction.
    bias: float
    mean_absolute_error: float
    #: Spearman rank correlation (ordering quality is what the
    #: cost-benefit comparisons consume).
    rank_correlation: float
    #: Fraction of pairs where the promote verdict at ``min_benefit``
    #: matches hindsight.
    decision_accuracy: float
    #: Confusion counts at the min_benefit threshold.
    true_promotes: int
    false_promotes: int
    true_skips: int
    false_skips: int


def _rank(values: np.ndarray) -> np.ndarray:
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty_like(order, dtype=np.float64)
    ranks[order] = np.arange(len(values))
    return ranks


def calibrate(
    pairs: Sequence[tuple[float, float]], min_benefit: float = 8.0
) -> CalibrationReport:
    """Build a :class:`CalibrationReport` from (predicted, actual) pairs."""
    if not pairs:
        raise InvalidValueError("no prediction pairs recorded")
    data = np.asarray(pairs, dtype=np.float64)
    predicted, actual = data[:, 0], data[:, 1]
    errors = predicted - actual
    if len(pairs) >= 2 and predicted.std() > 0 and actual.std() > 0:
        rank_corr = float(
            np.corrcoef(_rank(predicted), _rank(actual))[0, 1]
        )
    else:
        rank_corr = 0.0
    predicted_go = predicted >= min_benefit
    actual_go = actual >= min_benefit
    return CalibrationReport(
        pairs=len(pairs),
        bias=float(errors.mean()),
        mean_absolute_error=float(np.abs(errors).mean()),
        rank_correlation=rank_corr,
        decision_accuracy=float((predicted_go == actual_go).mean()),
        true_promotes=int((predicted_go & actual_go).sum()),
        false_promotes=int((predicted_go & ~actual_go).sum()),
        true_skips=int((~predicted_go & ~actual_go).sum()),
        false_skips=int((~predicted_go & actual_go).sum()),
    )


def calibration_by_bucket(
    pairs: Sequence[tuple[float, float]], edges: Sequence[float] = (0, 8, 32)
) -> list[tuple[str, int, float, float]]:
    """Per-predicted-magnitude buckets: (label, n, mean predicted, mean actual).

    Shows where the predictor is sharp (low buckets on chase traffic,
    high buckets on hot blocks) and where it drifts.
    """
    if not pairs:
        raise InvalidValueError("no prediction pairs recorded")
    data = np.asarray(pairs, dtype=np.float64)
    predicted, actual = data[:, 0], data[:, 1]
    rows = []
    bounds = list(edges) + [float("inf")]
    for low, high in zip(bounds, bounds[1:]):
        mask = (predicted >= low) & (predicted < high)
        if not mask.any():
            continue
        label = f"[{low:g}, {high:g})"
        rows.append(
            (
                label,
                int(mask.sum()),
                float(predicted[mask].mean()),
                float(actual[mask].mean()),
            )
        )
    return rows
