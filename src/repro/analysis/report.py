"""Plain-text rendering of experiment outputs.

The paper's figures are normalized bar charts and box plots; the
benchmark harness prints the same data as aligned tables so results can
be compared row by row against the paper (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.common.stats import BoxplotStats, boxplot_stats, geomean
from repro.common.errors import InvalidValueError


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = "{:.3f}",
) -> str:
    """Render an aligned ASCII table."""
    materialized = [
        [
            float_format.format(cell) if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in materialized:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def render_boxplot_summary(values: Sequence[float], label: str = "") -> str:
    """One-line Tukey summary, the textual form of a Figure 5 box."""
    stats: BoxplotStats = boxplot_stats(values)
    outliers = (
        " outliers=" + ",".join(f"{v:.3f}" for v in stats.outliers)
        if stats.outliers
        else ""
    )
    prefix = f"{label}: " if label else ""
    return (
        f"{prefix}min={stats.minimum:.3f} q1={stats.q1:.3f} "
        f"med={stats.median:.3f} q3={stats.q3:.3f} max={stats.maximum:.3f} "
        f"gmean={stats.geometric_mean:.3f}{outliers}"
    )


def normalized_series_summary(
    series: Mapping[str, float], higher_is_better: bool = True
) -> dict:
    """Summarize a normalized-to-baseline series the way the paper does.

    Returns the geometric mean and the best case with its key ("improves
    by X% avg., up to Y% for Z").
    """
    if not series:
        raise InvalidValueError("empty series")
    values = list(series.values())
    gmean = geomean(values)
    best_key = (
        max(series, key=series.get)
        if higher_is_better
        else min(series, key=series.get)
    )
    return {
        "geomean": gmean,
        "average_improvement": gmean - 1.0 if higher_is_better else 1.0 - gmean,
        "best_key": best_key,
        "best_value": series[best_key],
        "best_improvement": (
            series[best_key] - 1.0
            if higher_is_better
            else 1.0 - series[best_key]
        ),
    }
