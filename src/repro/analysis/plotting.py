"""ASCII charts for terminal reports.

The paper's figures are normalized bar charts; these helpers render the
same series as horizontal ASCII bars so experiment reports remain
readable without a plotting stack (the environment is offline).
"""

from __future__ import annotations

from typing import Mapping, Sequence
from repro.common.errors import InvalidValueError


def hbar_chart(
    series: Mapping[str, float],
    width: int = 50,
    baseline: float | None = None,
    value_format: str = "{:.3f}",
) -> str:
    """Horizontal bar chart of a {label: value} series.

    With ``baseline`` set (e.g. 1.0 for normalized figures), bars grow
    right for values above the baseline and left for values below it,
    which matches how the paper's normalized charts read.
    """
    if not series:
        raise InvalidValueError("empty series")
    labels = list(series)
    values = [float(series[label]) for label in labels]
    label_width = max(len(label) for label in labels)
    lines = []
    if baseline is None:
        top = max(values)
        scale = (width / top) if top > 0 else 0.0
        for label, value in zip(labels, values):
            bar = "#" * max(int(value * scale), 0)
            lines.append(
                f"{label.ljust(label_width)} |{bar.ljust(width)} "
                + value_format.format(value)
            )
        return "\n".join(lines)
    # Diverging chart around the baseline.
    half = width // 2
    deviation = max(abs(value - baseline) for value in values) or 1.0
    scale = half / deviation
    for label, value in zip(labels, values):
        magnitude = int(round(abs(value - baseline) * scale))
        if value >= baseline:
            left, right = " " * half, "#" * magnitude
        else:
            left = (" " * (half - magnitude)) + "#" * magnitude
            right = ""
        lines.append(
            f"{label.ljust(label_width)} {left}|{right.ljust(half)} "
            + value_format.format(value)
        )
    lines.append(
        f"{' ' * label_width} {' ' * half}^ baseline "
        + value_format.format(baseline)
    )
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """A one-line trend of a numeric series (8-level blocks)."""
    if not values:
        raise InvalidValueError("empty series")
    blocks = "▁▂▃▄▅▆▇█"
    low, high = min(values), max(values)
    span = high - low
    if span == 0:
        return blocks[0] * len(values)
    return "".join(
        blocks[min(int((v - low) / span * 8), 7)] for v in values
    )
