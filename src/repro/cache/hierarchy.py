"""L1/L2/L3 data-cache hierarchy (Table 8).

The main experiment pipeline feeds the simulator with post-L3 (main-memory)
traces directly, but the hierarchy is a complete substrate: the optional
CPU-trace pipeline (:mod:`repro.cpu.trace`) filters raw address streams
through it to produce main-memory traces, and the examples exercise it.

The model is inclusive and write-back/write-allocate, with true LRU at
each level.  Latencies accumulate down the hierarchy, as in a blocking
lookup; timing consumers only need hit level + latency, not MSHR detail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.common.config import CacheLevelConfig
from repro.cache.sets import SetAssociativeCache
from repro.common.errors import InvalidValueError


@dataclass(frozen=True)
class HierarchyAccessResult:
    """Outcome of one hierarchy access."""

    #: 0-based level that hit, or None for a main-memory access.
    hit_level: Optional[int]
    #: On-chip latency accumulated before the request was satisfied (or
    #: before it left for main memory).
    latency: int
    #: Dirty lines evicted from the last level (their line addresses).
    writebacks: tuple[int, ...]

    @property
    def is_memory_access(self) -> bool:
        """True when the access missed every level."""
        return self.hit_level is None


class CacheHierarchy:
    """A stack of set-associative levels addressed by 64-B line number."""

    def __init__(self, levels: Sequence[CacheLevelConfig]) -> None:
        if not levels:
            raise InvalidValueError("need at least one cache level")
        self._configs = list(levels)
        self._levels = [
            SetAssociativeCache[int](cfg.num_sets, cfg.associativity)
            for cfg in levels
        ]

    @property
    def num_levels(self) -> int:
        """Number of cache levels."""
        return len(self._levels)

    def level_stats(self, level: int) -> SetAssociativeCache:
        """Expose a level's array for statistics inspection."""
        return self._levels[level]

    def access(self, line: int, is_write: bool = False) -> HierarchyAccessResult:
        """Access one 64-B line; fills all levels above the hit level.

        Returns the hit level (or None for main memory), the accumulated
        on-chip latency, and at most one last-level dirty writeback line.
        """
        latency = 0
        hit_level: Optional[int] = None
        for index, level in enumerate(self._levels):
            latency += self._configs[index].latency_cycles
            if level.lookup(line) is not None:
                hit_level = index
                break
        writebacks: list[int] = []
        fill_down_to = hit_level if hit_level is not None else self.num_levels
        # Fill every level above the hit point, cascading dirty victims
        # downward; only a last-level dirty eviction reaches main memory.
        pending: list[tuple[int, int, bool]] = [
            (index, line, False) for index in range(fill_down_to)
        ]
        while pending:
            index, key, dirty = pending.pop()
            victim = self._levels[index].insert(key, key, dirty=dirty)
            if victim is not None and victim.dirty:
                if index + 1 < self.num_levels:
                    pending.append((index + 1, victim.key, True))
                else:
                    writebacks.append(victim.key)
        if is_write:
            self._levels[0].mark_dirty(line)
        return HierarchyAccessResult(hit_level, latency, tuple(writebacks))

    def mpki(self, instructions: int) -> float:
        """Last-level misses per kilo-instruction observed so far."""
        if instructions <= 0:
            return 0.0
        return 1000.0 * self._levels[-1].misses / instructions
