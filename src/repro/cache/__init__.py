"""On-chip cache substrate: generic set-associative arrays, the L1/L2/L3
data hierarchy, and the Swap-group Table Cache (STC) that MDM uses as its
temporal filter (Section 3.2)."""

from repro.cache.sets import SetAssociativeCache
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.stc import STC, STCEntry

__all__ = ["CacheHierarchy", "STC", "STCEntry", "SetAssociativeCache"]
