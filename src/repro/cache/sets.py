"""Generic set-associative cache array with true-LRU replacement.

Used directly for the L1/L2/L3 data hierarchy and, with payloads, for the
Swap-group Table Cache.  Keys are opaque integers (line or group numbers);
the array does not interpret addresses beyond set indexing.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Generic, Optional, TypeVar

from repro.common.errors import ConfigError

V = TypeVar("V")


@dataclass
class EvictedLine(Generic[V]):
    """What fell out of the cache on an insertion."""

    key: int
    value: V
    dirty: bool


REPLACEMENT_POLICIES = ("lru", "fifo", "random", "lru-lip", "lfu")


class SetAssociativeCache(Generic[V]):
    """A num_sets x associativity array of (key -> value).

    Each set is an OrderedDict from key to (value, dirty).  Replacement
    is pluggable: true LRU (default — hits refresh recency), FIFO (hits
    do not), pseudo-random (deterministic in the seed, as a hardware
    LFSR would be), LRU-LIP (LRU with low-priority insertion: fills land
    at the LRU end and must earn a hit to be promoted — scan-resistant),
    or LFU (evict the least-frequently-accessed entry, insertion-order
    tie-break).  ``num_sets`` must be a power of two so indexing is a
    mask, as in hardware.
    """

    __slots__ = (
        "num_sets",
        "_set_mask",
        "associativity",
        "replacement",
        "_lfsr",
        "_sets",
        "_touch_moves",
        "_is_lfu",
        "_freq",
        "hits",
        "misses",
    )

    def __init__(
        self,
        num_sets: int,
        associativity: int,
        replacement: str = "lru",
        seed: int = 0,
    ) -> None:
        if num_sets < 1 or num_sets & (num_sets - 1):
            raise ConfigError(f"num_sets must be a power of two, got {num_sets}")
        if associativity < 1:
            raise ConfigError("associativity must be >= 1")
        if replacement not in REPLACEMENT_POLICIES:
            raise ConfigError(
                f"replacement must be one of {REPLACEMENT_POLICIES}, "
                f"got {replacement!r}"
            )
        self.num_sets = num_sets
        self._set_mask = num_sets - 1
        self.associativity = associativity
        self.replacement = replacement
        # Hot-path predicates, resolved once (lookup runs per request).
        self._touch_moves = replacement in ("lru", "lru-lip")
        self._is_lfu = replacement == "lfu"
        #: key -> access count since fill (LFU only; keys are globally
        #: unique, so one dict serves every set).
        self._freq: dict[int, int] = {}
        # Simple deterministic LFSR-style state for random replacement.
        self._lfsr = (seed * 2654435761 + 1) & 0xFFFFFFFF
        self._sets: list[OrderedDict[int, list]] = [
            OrderedDict() for _ in range(num_sets)
        ]
        self.hits = 0
        self.misses = 0

    def _next_random(self) -> int:
        # xorshift32: cheap, deterministic, hardware-plausible.
        x = self._lfsr or 0x9E3779B9
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self._lfsr = x & 0xFFFFFFFF
        return self._lfsr

    # ------------------------------------------------------------------
    def _set_for(self, key: int) -> OrderedDict:
        return self._sets[key & self._set_mask]

    def lookup(self, key: int, touch: bool = True) -> Optional[V]:
        """Return the value for ``key`` or None; updates hit/miss stats."""
        # _set_for, inlined: lookup/peek run once per demand request.
        entry_set = self._sets[key & self._set_mask]
        slot = entry_set.get(key)
        if slot is None:
            self.misses += 1
            return None
        self.hits += 1
        if touch:
            if self._touch_moves:
                entry_set.move_to_end(key)
            elif self._is_lfu:
                self._freq[key] = self._freq.get(key, 0) + 1
        return slot[0]

    def peek(self, key: int) -> Optional[V]:
        """Return the value without touching LRU or stats."""
        slot = self._sets[key & self._set_mask].get(key)
        return None if slot is None else slot[0]

    def contains(self, key: int) -> bool:
        """Presence check without touching LRU or stats."""
        return key in self._set_for(key)

    def mark_dirty(self, key: int) -> None:
        """Set the dirty bit of a resident key (no-op when absent)."""
        slot = self._set_for(key).get(key)
        if slot is not None:
            slot[1] = True

    def insert(self, key: int, value: V, dirty: bool = False) -> Optional[EvictedLine[V]]:
        """Insert ``key``; returns the evicted line if the set was full.

        Inserting an already-resident key updates it in place (returns
        None); this mirrors a fill racing a hit.
        """
        entry_set = self._set_for(key)
        if key in entry_set:
            entry_set[key][0] = value
            if dirty:
                entry_set[key][1] = True
            entry_set.move_to_end(key)
            if self._is_lfu:
                self._freq[key] = self._freq.get(key, 0) + 1
            return None
        victim: Optional[EvictedLine[V]] = None
        if len(entry_set) >= self.associativity:
            if self.replacement == "random":
                keys = list(entry_set)
                victim_key = keys[self._next_random() % len(keys)]
                victim_value, victim_dirty = entry_set.pop(victim_key)
            elif self._is_lfu:
                # Least-frequently-used; ties break toward the oldest
                # insertion (deterministic: OrderedDict iteration order).
                freq = self._freq
                victim_key = min(entry_set, key=lambda k: freq.get(k, 0))
                victim_value, victim_dirty = entry_set.pop(victim_key)
            else:  # lru, fifo, lru-lip all evict the oldest-ordered entry
                victim_key, (victim_value, victim_dirty) = entry_set.popitem(
                    last=False
                )
            victim = EvictedLine(victim_key, victim_value, victim_dirty)
            if self._is_lfu:
                self._freq.pop(victim_key, None)
        entry_set[key] = [value, dirty]
        if self.replacement == "lru-lip":
            # Low-priority insertion: the fill lands at the LRU end and
            # must earn a lookup hit to be promoted.
            entry_set.move_to_end(key, last=False)
        elif self._is_lfu:
            self._freq[key] = 1
        return victim

    def invalidate(self, key: int) -> Optional[V]:
        """Remove ``key`` if present; return its value."""
        entry_set = self._set_for(key)
        slot = entry_set.pop(key, None)
        if self._is_lfu:
            self._freq.pop(key, None)
        return None if slot is None else slot[0]

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def items(self):
        """Iterate (key, value) over all resident entries (test helper)."""
        for entry_set in self._sets:
            for key, (value, _dirty) in entry_set.items():
                yield key, value

    @property
    def hit_rate(self) -> float:
        """Lookup hit rate since construction."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
