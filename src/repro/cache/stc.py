"""Swap-group Table Cache (STC) with MDM's per-block access counters.

Figure 4: while a swap group's ST entry is resident in the STC, the memory
controller keeps one saturating access counter per swap-group location.
Counters are reset to zero at insertion; at eviction, every location with a
non-zero count has its Quantized Access Counter (QAC) value recomputed and
written back to the ST entry, and MDM's per-program statistics are updated
(Section 3.2.1).  The STC thereby acts as the temporal filter that bounds
the amount of accurate state to what is resident.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.cache.sets import SetAssociativeCache


@dataclass(slots=True)
class STCEntry:
    """Accurate per-block state kept only while the ST entry is cached.

    ``qac_at_insert`` snapshots each location's QAC value (q_I) when the
    entry was inserted; ``counters`` are the 6-bit saturating access
    counts accumulated since insertion, indexed by swap-group location.
    ``st_entry`` is an opaque back-reference the memory controller
    attaches at insertion (the group's resident ST entry), so the
    per-request path resolves both structures with one cache probe.
    """

    group: int
    qac_at_insert: tuple[int, ...]
    counters: list[int] = field(default_factory=list)
    st_entry: object = None

    def __post_init__(self) -> None:
        if not self.counters:
            self.counters = [0] * len(self.qac_at_insert)

    def count(self, location: int) -> int:
        """Access count of ``location`` since insertion."""
        return self.counters[location]

    def bump(self, location: int, weight: int, maximum: int) -> None:
        """Saturating increment of one location's counter."""
        new_value = self.counters[location] + weight
        self.counters[location] = new_value if new_value < maximum else maximum

    def any_other_accessed(self, location: int) -> bool:
        """True if any location other than ``location`` has been accessed."""
        return any(
            count > 0
            for index, count in enumerate(self.counters)
            if index != location
        )


EvictionCallback = Callable[[STCEntry], None]


class STC:
    """The on-chip cache of ST entries, keyed by swap-group number.

    ``lookup(group)`` (LRU-touching, stat-counting) and ``peek(group)``
    (neither) are instance slots bound directly to the backing array's
    methods: the per-request hot calls cost one frame, not a delegation
    chain.
    """

    __slots__ = (
        "_array",
        "_group_size",
        "_counter_max",
        "_eviction_callbacks",
        "lookup",
        "peek",
    )

    def __init__(
        self,
        num_sets: int,
        associativity: int,
        group_size: int,
        counter_max: int = 63,
        replacement: str = "lru",
        seed: int = 0,
    ) -> None:
        self._array: SetAssociativeCache[STCEntry] = SetAssociativeCache(
            num_sets, associativity, replacement=replacement, seed=seed
        )
        self._group_size = group_size
        self._counter_max = counter_max
        self._eviction_callbacks: list[EvictionCallback] = []
        #: LRU-touching lookup; None on miss (stats updated).
        self.lookup: Callable[[int], Optional[STCEntry]] = self._array.lookup
        #: Non-touching, stat-free lookup (used by policies).
        self.peek: Callable[[int], Optional[STCEntry]] = self._array.peek

    def on_eviction(self, callback: EvictionCallback) -> None:
        """Register a callback invoked with every evicted entry."""
        self._eviction_callbacks.append(callback)

    @property
    def hit_rate(self) -> float:
        """STC lookup hit rate (Figure 7 reports this under MDM)."""
        return self._array.hit_rate

    @property
    def hits(self) -> int:
        """Number of lookups that hit."""
        return self._array.hits

    @property
    def misses(self) -> int:
        """Number of lookups that missed."""
        return self._array.misses

    def insert(
        self,
        group: int,
        qac_values: tuple[int, ...],
        st_entry: object = None,
    ) -> Optional[STCEntry]:
        """Insert a freshly fetched ST entry; returns the evicted entry.

        ``qac_values`` is the QAC field of the ST entry at fetch time; the
        per-location access counters start at zero (Section 3.2.1).
        ``st_entry`` is stored as the new entry's back-reference.
        Eviction callbacks run before this method returns, so MDM statistics
        and ST write-back happen at the architecturally correct instant.
        """
        entry = STCEntry(
            group=group, qac_at_insert=tuple(qac_values), st_entry=st_entry
        )
        victim = self._array.insert(group, entry)
        if victim is None:
            return None
        for callback in self._eviction_callbacks:
            callback(victim.value)
        return victim.value

    def flush(self) -> list[STCEntry]:
        """Evict everything (end-of-simulation bookkeeping); returns entries."""
        evicted = [entry for _, entry in self._array.items()]
        for entry in evicted:
            self._array.invalidate(entry.group)
            for callback in self._eviction_callbacks:
                callback(entry)
        return evicted

    def bump(self, entry: STCEntry, location: int, weight: int) -> None:
        """Increment a resident entry's access counter (saturating)."""
        entry.bump(location, weight, self._counter_max)
