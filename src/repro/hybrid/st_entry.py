"""One Swap-group Table entry (Figure 4).

An ST entry records, for each of the group's nine original blocks (slots),
which physical location the block currently occupies (the Address
Translation Bits), the block's 2-bit Quantized Access Counter value, and
the program ID of the block resident in the group's M1 location.
"""

from __future__ import annotations

from typing import Optional

from repro.common.errors import SimulationError


class STEntry:
    """Mutable per-group translation state.

    ``loc_of_slot[s]`` gives the location (0 = M1, 1.. = M2) holding the
    block whose original home is slot ``s``; ``slot_of_loc`` is the inverse
    permutation.  Both start as the identity (no migrations yet).
    """

    __slots__ = ("loc_of_slot", "slot_of_loc", "qac", "m1_owner")

    def __init__(self, group_size: int) -> None:
        self.loc_of_slot = list(range(group_size))
        self.slot_of_loc = list(range(group_size))
        self.qac = [0] * group_size
        #: Program whose block is in the M1 location (c_M1, Section 3.3);
        #: None while that block belongs to no allocated page.
        self.m1_owner: Optional[int] = None

    @property
    def group_size(self) -> int:
        """Locations (and slots) in this group."""
        return len(self.loc_of_slot)

    def location_of(self, slot: int) -> int:
        """Current location of the block with original home ``slot``."""
        return self.loc_of_slot[slot]

    def slot_at(self, location: int) -> int:
        """Original slot of the block currently at ``location``."""
        return self.slot_of_loc[location]

    @property
    def m1_slot(self) -> int:
        """Slot of the block currently residing in M1 (location 0)."""
        return self.slot_of_loc[0]

    def is_in_m1(self, slot: int) -> bool:
        """True if the block of ``slot`` currently occupies the M1 location."""
        return self.loc_of_slot[slot] == 0

    def swap(self, slot_a: int, slot_b: int) -> None:
        """Exchange the physical locations of two blocks (a fast swap)."""
        if slot_a == slot_b:
            raise SimulationError("cannot swap a slot with itself")
        loc_a, loc_b = self.loc_of_slot[slot_a], self.loc_of_slot[slot_b]
        self.loc_of_slot[slot_a], self.loc_of_slot[slot_b] = loc_b, loc_a
        self.slot_of_loc[loc_a], self.slot_of_loc[loc_b] = slot_b, slot_a

    def is_identity(self) -> bool:
        """True when no block has moved from its original home."""
        return all(loc == slot for slot, loc in enumerate(self.loc_of_slot))
