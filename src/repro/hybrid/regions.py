"""Interleaved regions and OS page-frame allocation (Section 3.1.1).

Memory is divided into ``num_regions`` interleaved regions along the swap
groups (Figure 3).  One region per program is *private*: the OS allocates
its page frames only to that program.  All other regions are *shared*.
The OS keeps per-region free-frame lists; the memory controller decodes a
request's region from the group number and the region map.

The allocator hands frames to a program by rotating round-robin over its
allowed regions, drawing from a per-region shuffled free list that mixes
M1-home and M2-home segments.  This spreads every program's footprint
nearly uniformly across regions and segments — the property RSM's
private-region sampling relies on (Section 3.1.3) — while remaining a
plausible first-touch OS policy.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.common.errors import ConfigError, SimulationError
from repro.hybrid.address import AddressMap


class RegionMap:
    """Region typing: which region is private to which program."""

    def __init__(self, address_map: AddressMap, num_programs: int) -> None:
        if num_programs >= address_map.num_regions:
            raise ConfigError("more programs than regions")
        self._map = address_map
        self.num_programs = num_programs
        #: Program -> its private region.  Regions 0..num_programs-1 are
        #: dedicated; the remainder are shared.
        self.private_region = {pid: pid for pid in range(num_programs)}

    def is_private_to(self, region: int, program: int) -> bool:
        """True if ``region`` is ``program``'s own private region."""
        return self.private_region.get(program) == region

    def is_private(self, region: int) -> bool:
        """True if ``region`` is private to any program."""
        return region < self.num_programs

    def allowed_regions(self, program: int) -> list[int]:
        """Regions whose frames ``program`` may receive."""
        return [self.private_region[program]] + [
            region
            for region in range(self._map.num_regions)
            if not self.is_private(region)
        ]


class OSAllocator:
    """Per-region free-frame accounting and program page allocation."""

    def __init__(
        self,
        address_map: AddressMap,
        region_map: RegionMap,
        rng: np.random.Generator,
    ) -> None:
        self._map = address_map
        self._regions = region_map
        #: region -> stack of free frame numbers (pre-shuffled).
        self._free: dict[int, list[int]] = {
            region: [] for region in range(address_map.num_regions)
        }
        for page in range(address_map.total_pages):
            self._free[address_map.region_of_page(page)].append(page)
        for frames in self._free.values():
            rng.shuffle(frames)
        #: frame -> owning program.
        self._owner: dict[int, int] = {}

    def free_frames(self, region: int) -> int:
        """Free frames remaining in ``region``."""
        return len(self._free[region])

    def allocate(self, program: int, num_pages: int) -> list[int]:
        """Allocate ``num_pages`` frames to ``program``.

        Frames rotate round-robin over the program's allowed regions
        (private region included on equal footing), skipping exhausted
        regions.  Raises SimulationError when memory is exhausted.
        """
        allowed = self._regions.allowed_regions(program)
        frames: list[int] = []
        cursor = 0
        misses = 0
        while len(frames) < num_pages:
            region = allowed[cursor % len(allowed)]
            cursor += 1
            free = self._free[region]
            if free:
                frame = free.pop()
                self._owner[frame] = program
                frames.append(frame)
                misses = 0
            else:
                misses += 1
                if misses >= len(allowed):
                    raise SimulationError(
                        f"out of memory allocating page {len(frames)} of "
                        f"{num_pages} for program {program}"
                    )
        return frames

    def release(self, program: int, frames: Sequence[int]) -> None:
        """Return frames to their regions' free lists."""
        for frame in frames:
            owner = self._owner.pop(frame, None)
            if owner != program:
                raise SimulationError(
                    f"frame {frame} not owned by program {program}"
                )
            self._free[self._map.region_of_page(frame)].append(frame)

    @property
    def frame_owners(self) -> dict[int, int]:
        """Live frame -> owning-program mapping.

        The dict object is stable for the allocator's lifetime (allocate
        and release mutate it in place), so hot paths may hold a direct
        reference instead of paying two method calls per request.
        Callers must treat it as read-only.
        """
        return self._owner

    def owner_of_frame(self, frame: int) -> Optional[int]:
        """Program owning a frame, or None if free."""
        return self._owner.get(frame)

    def owner_of_block(self, block: int) -> Optional[int]:
        """Program owning an original block address, or None."""
        return self._owner.get(self._map.page_of_block(block))


class PageTable:
    """One program's virtual-to-physical page mapping.

    Programs address their footprint with virtual page numbers 0..N-1;
    the constructor pre-allocates all frames (the traces' working sets
    are touched quickly, so first-touch and pre-allocation coincide).
    """

    def __init__(
        self, program: int, allocator: OSAllocator, num_pages: int
    ) -> None:
        self.program = program
        self._frames = allocator.allocate(program, num_pages)
        self._num_pages = len(self._frames)

    @property
    def num_pages(self) -> int:
        """Pages in this program's footprint."""
        return self._num_pages

    def translate_line(self, virtual_line: int, lines_per_page: int) -> int:
        """Virtual 64-B line number -> physical (original) line number.

        Called once per demand request; the 64-line (4-KB) page used by
        every trace takes the shift/mask path instead of a divmod.
        """
        if lines_per_page == 64:
            vpage = virtual_line >> 6
            offset = virtual_line & 63
        else:
            vpage, offset = divmod(virtual_line, lines_per_page)
        return self._frames[vpage % self._num_pages] * lines_per_page + offset
