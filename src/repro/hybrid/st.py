"""The Swap-group Table: one entry per swap group, stored in M1.

Entries are created lazily on first touch, which keeps start-up cheap for
large configurations while preserving the abstraction of a fully populated
table (an untouched entry is the identity mapping).
"""

from __future__ import annotations

from repro.hybrid.st_entry import STEntry
from repro.common.errors import RangeError


class SwapGroupTable:
    """Lazily materialized array of :class:`STEntry`."""

    __slots__ = ("total_groups", "group_size", "_entries")

    def __init__(self, total_groups: int, group_size: int) -> None:
        self.total_groups = total_groups
        self.group_size = group_size
        self._entries: dict[int, STEntry] = {}

    def entry(self, group: int) -> STEntry:
        """The ST entry for ``group`` (created on first touch)."""
        if not 0 <= group < self.total_groups:
            raise RangeError(f"group {group} out of range")
        entry = self._entries.get(group)
        if entry is None:
            entry = STEntry(self.group_size)
            self._entries[group] = entry
        return entry

    def touched_groups(self) -> list[int]:
        """Groups whose entries have been materialized."""
        return sorted(self._entries)

    def migrated_groups(self) -> list[int]:
        """Groups whose mapping is no longer the identity."""
        return sorted(
            group
            for group, entry in self._entries.items()
            if not entry.is_identity()
        )

    def __len__(self) -> int:
        return len(self._entries)
