"""Bit-level encoding of ST entries (Figure 4 / Section 4.1).

The paper sizes a ProFess ST entry at 8 bytes: 4 address-translation bits
per location x 9 locations = 36 bits, 2 QAC bits x 9 = 18 bits, and a
2-bit program ID for the M1 resident's owner — 56 bits used, one byte
reserved.  This module packs/unpacks :class:`repro.hybrid.st_entry.STEntry`
state to that exact layout, which pins down the storage-overhead claims
(and gives file-format stability for anyone persisting ST state).

Layout (little-endian bit offsets within a 64-bit word):

====== ======================= =========
bits   field                   width
====== ======================= =========
0-35   ATB: location_of(slot)  9 x 4
36-53  QAC per slot            9 x 2
54-55  m1_owner program id     2
56-63  reserved (zero)         8
====== ======================= =========
"""

from __future__ import annotations

from repro.common.errors import ReproError
from repro.hybrid.st_entry import STEntry

#: Field widths from Figure 4 / Section 4.1.
ATB_BITS = 4
QAC_BITS = 2
PID_BITS = 2
GROUP_SIZE = 9
ENTRY_BYTES = 8

_ATB_SHIFT = 0
_QAC_SHIFT = GROUP_SIZE * ATB_BITS  # 36
_PID_SHIFT = _QAC_SHIFT + GROUP_SIZE * QAC_BITS  # 54
_USED_BITS = _PID_SHIFT + PID_BITS  # 56


class EncodingError(ReproError):
    """State does not fit the hardware entry format."""


def encode_st_entry(entry: STEntry, owner_bits: int = 0) -> int:
    """Pack an ST entry into its 64-bit hardware representation.

    ``owner_bits`` substitutes for ``entry.m1_owner`` when the owner is
    None (the hardware field always holds *some* 2-bit value; vacancy is
    derived from the OS frame map, not stored here).
    """
    if entry.group_size != GROUP_SIZE:
        raise EncodingError(
            f"entry format is fixed at {GROUP_SIZE} locations, got "
            f"{entry.group_size}"
        )
    word = 0
    for slot, location in enumerate(entry.loc_of_slot):
        if not 0 <= location < (1 << ATB_BITS):
            raise EncodingError(f"location {location} exceeds {ATB_BITS} bits")
        word |= location << (_ATB_SHIFT + slot * ATB_BITS)
    for slot, qac in enumerate(entry.qac):
        if not 0 <= qac < (1 << QAC_BITS):
            raise EncodingError(f"QAC {qac} exceeds {QAC_BITS} bits")
        word |= qac << (_QAC_SHIFT + slot * QAC_BITS)
    owner = entry.m1_owner if entry.m1_owner is not None else owner_bits
    if not 0 <= owner < (1 << PID_BITS):
        raise EncodingError(f"program id {owner} exceeds {PID_BITS} bits")
    word |= owner << _PID_SHIFT
    return word


def decode_st_entry(word: int) -> STEntry:
    """Unpack a 64-bit word produced by :func:`encode_st_entry`.

    The translation permutation is rebuilt and verified (a corrupted
    word with duplicate locations raises :class:`EncodingError`).
    """
    if not 0 <= word < (1 << 64):
        raise EncodingError("entry word must fit 64 bits")
    entry = STEntry(GROUP_SIZE)
    locations = [
        (word >> (_ATB_SHIFT + slot * ATB_BITS)) & ((1 << ATB_BITS) - 1)
        for slot in range(GROUP_SIZE)
    ]
    if sorted(locations) != list(range(GROUP_SIZE)):
        raise EncodingError(f"ATB field is not a permutation: {locations}")
    entry.loc_of_slot = locations
    entry.slot_of_loc = [0] * GROUP_SIZE
    for slot, location in enumerate(locations):
        entry.slot_of_loc[location] = slot
    entry.qac = [
        (word >> (_QAC_SHIFT + slot * QAC_BITS)) & ((1 << QAC_BITS) - 1)
        for slot in range(GROUP_SIZE)
    ]
    entry.m1_owner = (word >> _PID_SHIFT) & ((1 << PID_BITS) - 1)
    return entry


def entry_to_bytes(entry: STEntry, owner_bits: int = 0) -> bytes:
    """The 8-byte little-endian on-DRAM form of an entry."""
    return encode_st_entry(entry, owner_bits).to_bytes(ENTRY_BYTES, "little")


def entry_from_bytes(data: bytes) -> STEntry:
    """Inverse of :func:`entry_to_bytes`."""
    if len(data) != ENTRY_BYTES:
        raise EncodingError(f"ST entries are {ENTRY_BYTES} bytes")
    return decode_st_entry(int.from_bytes(data, "little"))


def storage_overhead_bits() -> dict[str, int]:
    """The Section 4.1 storage accounting, from the layout constants."""
    return {
        "atb_bits": GROUP_SIZE * ATB_BITS,
        "qac_bits": GROUP_SIZE * QAC_BITS,
        "pid_bits": PID_BITS,
        "used_bits": _USED_BITS,
        "entry_bits": ENTRY_BYTES * 8,
        "reserved_bits": ENTRY_BYTES * 8 - _USED_BITS,
    }
