"""The hardware memory controller of the flat migrating hybrid memory.

Per request (Figure 1): look up the swap group's ST entry in the STC
(fetching it from M1 on a miss — real channel traffic), translate the
original block address to its actual location, account RSM and per-block
access counters, issue the 64-B data request to the channel, and consult
the migration policy.  A decided promotion commits when the triggering
request completes (fast-swap semantics: the demand access is served from
M2 first, then the blocks exchange while the channel is blocked).

The controller is policy-agnostic: every scheme from
:mod:`repro.policies` and :mod:`repro.core` runs on this identical
organization, which is the paper's comparison methodology (Section 2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from heapq import heappush as _heappush
from typing import Callable, Optional

import numpy as np

from repro.cache.stc import STC, STCEntry
from repro.common.config import SystemConfig
from repro.common.errors import ConfigError
from repro.common.events import EventQueue
from repro.common.rng import make_rng
from repro.common.units import cpu_cycles_from_ns
from repro.core.rsm import RSM
from repro.hybrid.address import AddressMap
from repro.hybrid.regions import OSAllocator, RegionMap
from repro.hybrid.st import SwapGroupTable
from repro.mem.channel import Channel
from repro.mem.power import EnergyMeter
from repro.policies.base import AccessContext, MigrationPolicy

CompletionCallback = Callable[[int], None]

# Integer request kinds as the columnar channel path spells them
# (== RequestKind.DATA/ST_READ/ST_WRITE, kept as plain ints so the
# per-request path pushes literals instead of enum attributes).
_KIND_DATA = 0
_KIND_ST_READ = 1
_KIND_ST_WRITE = 2


@dataclass(slots=True)
class CoreMemStats:
    """Per-core demand-traffic statistics (Figures 6, 16)."""

    requests: int = 0
    served_from_m1: int = 0
    reads: int = 0
    writes: int = 0
    swaps_involving: int = 0

    @property
    def m1_fraction(self) -> float:
        """Fraction of this core's requests served from M1 (Figure 6)."""
        return self.served_from_m1 / self.requests if self.requests else 0.0


@dataclass(slots=True)
class _PendingFetch:
    """An in-flight ST-entry fetch with the accesses waiting on it."""

    continuations: list[Callable[[int], None]] = field(default_factory=list)


class HybridMemoryController:
    """Ties channels, ST/STC, regions, RSM, and a migration policy together."""

    __slots__ = (
        "config",
        "events",
        "policy",
        "program_of_core",
        "num_programs",
        "address_map",
        "energy",
        "channels",
        "st",
        "stc",
        "region_map",
        "allocator",
        "rsm",
        "core_stats",
        "total_swaps",
        "_pending_fetches",
        "_swap_pending",
        "_swap_style",
        "_swaps_enabled",
        "_bypass_rate",
        "_bypass_rng",
        "_stc_latency",
        "_access_weights",
        "_counter_max",
        "_total_groups",
        "_stc_lookup",
        "_stc_peek",
        "_group_and_slot_of_line",
        "_fast_addr",
        "_lines_shift",
        "_groups_mask",
        "_groups_shift",
        "_region_of_v",
        "_data_location",
        "_data_loc_cache",
        "_group_size",
        "_enqueue_soa",
        "_frame_owners",
        "_private_region",
        "_private_of",
        "_rsm_on_request",
        "_policy_on_access",
        "_ctx",
    )

    def __init__(
        self,
        config: SystemConfig,
        events: EventQueue,
        policy: MigrationPolicy,
        seed: int = 0,
        track_rsm_regions: bool = False,
        rng: Optional[np.random.Generator] = None,
        program_of_core: Optional[list[int]] = None,
        mem_backend: Optional[str] = None,
    ) -> None:
        self.config = config
        self.events = events
        self.policy = policy
        # Section 3.1.1: all threads of a multi-threaded program appear to
        # RSM and MDM as a single program; the mapping below is the
        # hardware lookup table that routes a core's requests to its
        # program's counter sets.  Default: one single-threaded program
        # per core.
        if program_of_core is None:
            program_of_core = list(range(config.num_cores))
        if len(program_of_core) != config.num_cores:
            raise ConfigError("program_of_core must name every core")
        self.program_of_core = list(program_of_core)
        self.num_programs = max(self.program_of_core) + 1
        if set(self.program_of_core) != set(range(self.num_programs)):
            raise ConfigError("program ids must be dense starting at 0")
        self.address_map = AddressMap(config)
        self.energy = EnergyMeter(config.energy, config.num_channels)
        swap_latency = config.swap_latency_cycles()
        self.channels = [
            Channel(
                events=events,
                m1_timings=config.m1_timings,
                m2_timings=config.m2_timings,
                banks_per_rank=config.hybrid.banks_per_rank,
                frfcfs_cap=config.frfcfs_cap,
                energy=self.energy,
                swap_latency=swap_latency,
                lines_per_block=config.hybrid.lines_per_block,
                row_idle_close=cpu_cycles_from_ns(config.row_idle_close_ns),
                backend=mem_backend if mem_backend is not None else config.mem_backend,
            )
            for _ in range(config.num_channels)
        ]
        # Bound columnar-enqueue methods, one per channel: the request
        # path indexes this list instead of re-binding ``enqueue_soa``
        # per request.
        self._enqueue_soa = [channel.enqueue_soa for channel in self.channels]
        self.st = SwapGroupTable(config.total_groups, config.hybrid.group_size)
        # Composable policy axes (repro.policies.registry): the policy
        # instance carries its resolved swap style / bypass rate / STC
        # replacement; class defaults cover directly constructed policies.
        self._swap_style = policy.swap_style
        self._swaps_enabled = policy.swap_style != "noswap"
        self._bypass_rate = policy.bypass_rate
        # The bypass substream exists only when the axis is active, so
        # default-axes runs draw nothing and stay byte-identical to the
        # pre-axis golden blobs.
        self._bypass_rng: Optional[np.random.Generator] = (
            make_rng(seed, "migration-bypass")
            if policy.bypass_rate > 0.0
            else None
        )
        self.stc = STC(
            num_sets=config.stc.num_sets,
            associativity=config.stc.associativity,
            group_size=config.hybrid.group_size,
            counter_max=config.mdm.access_counter_max,
            replacement=policy.stc_replacement,
            seed=seed,
        )
        self.stc.on_eviction(self._on_stc_eviction)
        self.region_map = RegionMap(self.address_map, self.num_programs)
        self.allocator = OSAllocator(
            self.address_map,
            self.region_map,
            rng if rng is not None else make_rng(seed, "os-allocator"),
        )
        self.rsm = RSM(
            config.rsm,
            num_programs=self.num_programs,
            num_regions=config.hybrid.num_regions,
            track_regions=track_rsm_regions,
        )
        self.core_stats = [CoreMemStats() for _ in range(config.num_cores)]
        self.total_swaps = 0
        self._pending_fetches: dict[int, _PendingFetch] = {}
        self._swap_pending: set[int] = set()
        policy.bind(self)
        # Hot-path constants, resolved once.  ``access_weight`` depends
        # only on the request direction (the policy's write weight is
        # fixed at construction), so both values are precomputed.
        self._stc_latency = config.stc.latency_cycles
        self._access_weights = (
            policy.access_weight(False),
            policy.access_weight(True),
        )
        self._counter_max = config.mdm.access_counter_max
        self._total_groups = self.address_map.total_groups
        # Bound methods and stable collaborator references, resolved once
        # so ``access``/``_serve`` pay no repeated attribute chains on the
        # per-request path.
        self._stc_lookup = self.stc.lookup
        self._stc_peek = self.stc.peek
        self._group_and_slot_of_line = self.address_map.group_and_slot_of_line
        # Power-of-two address split, inlined into ``access`` (always
        # taken for the paper geometry); non-power-of-two configurations
        # fall back to the fused AddressMap method.
        lines_ms = self.address_map._lines_ms
        groups_ms = self.address_map._groups_ms
        self._fast_addr = lines_ms is not None and groups_ms is not None
        if self._fast_addr:
            self._lines_shift = lines_ms[1]
            self._groups_mask, self._groups_shift = groups_ms
        else:
            self._lines_shift = self._groups_mask = self._groups_shift = 0
        # Region of every group, tabulated once: ``_serve`` replaces the
        # per-request arithmetic call with one buffer index.
        self._region_of_v = memoryview(
            np.fromiter(
                (
                    self.address_map.region_of_group(group)
                    for group in range(config.total_groups)
                ),
                dtype=np.int64,
                count=config.total_groups,
            )
        )
        self._data_location = self.address_map.data_location
        # The translation memo itself, so the hit path (every request
        # after the first touch of a location) is a dict probe here
        # instead of a method call; misses fall back to the method.
        self._data_loc_cache = self.address_map._data_locations
        self._group_size = config.hybrid.group_size
        self._frame_owners = self.allocator.frame_owners
        self._private_region = self.region_map.private_region
        # Per-program private-region ids as a list: the region map never
        # reassigns private regions after construction, and the request
        # path compares one per served request.
        self._private_of = [
            self._private_region.get(program, -1)
            for program in range(self.num_programs)
        ]
        self._rsm_on_request = self.rsm.on_request
        self._policy_on_access = policy.on_access
        # One reusable AccessContext, mutated per request.  Safe because
        # the policy contract (see AccessContext) forbids retaining the
        # context beyond ``on_access``; reusing the instance removes the
        # second-largest allocation on the request path.
        self._ctx = AccessContext(
            core_id=0,
            group=0,
            slot=0,
            location=0,
            is_write=False,
            owner=None,
            m1_owner=None,
            st_entry=None,  # type: ignore[arg-type]
            stc_entry=None,  # type: ignore[arg-type]
            now=0,
        )

    # ------------------------------------------------------------------
    # Public helpers used by policies and monitors
    # ------------------------------------------------------------------
    def owner_of_slot(self, group: int, slot: int) -> Optional[int]:
        """Program owning the block with original home (group, slot).

        Inlines ``allocator.owner_of_block(address_map.block_of(...))``:
        the MDM eviction sweep asks this for every touched slot.
        """
        return self._frame_owners.get((slot * self._total_groups + group) >> 1)

    @property
    def lines_per_block(self) -> int:
        """64-B lines per 2-KB swap block."""
        return self.address_map.lines_per_block

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def access(
        self,
        core_id: int,
        line: int,
        is_write: bool,
        on_complete: Optional[CompletionCallback] = None,
    ) -> None:
        """Serve one 64-B demand request at an original physical ``line``."""
        if self._fast_addr:
            block = line >> self._lines_shift
            group = block & self._groups_mask
            slot = block >> self._groups_shift
        else:
            _block, group, slot = self._group_and_slot_of_line(line)
        events = self.events
        # One reusable bound method under a partial instead of a fresh
        # closure per request: same callback shape, far less allocation.
        proceed = partial(self._serve, core_id, group, slot, is_write, on_complete)
        if self._stc_lookup(group) is not None:
            # Inline-push contract (events.py): the STC hit lands a
            # strictly-future cycle (latency_cycles > 0), so it goes
            # straight onto the heap.  ``events._now`` directly: the
            # ``now`` property costs a descriptor call per request here.
            latency = self._stc_latency
            if latency:
                seq = events._seq
                _heappush(events._heap, (events._now + latency, seq, proceed))
                events._seq = seq + 1
            else:
                events._fifo.append(proceed)
        else:
            self._fetch_st_entry(core_id, group, proceed)

    def _fetch_st_entry(
        self, core_id: int, group: int, continuation: Callable[[int], None]
    ) -> None:
        """Fetch a missing ST entry from M1; coalesce concurrent misses."""
        pending = self._pending_fetches.get(group)
        if pending is not None:
            pending.continuations.append(continuation)
            return
        pending = _PendingFetch(continuations=[continuation])
        self._pending_fetches[group] = pending
        location = self.address_map.st_location(group)
        self._enqueue_soa[location.channel](
            location.bank_key,
            location.row,
            False,
            self.events.now,
            _KIND_ST_READ,
            partial(self._fill_st_entry, group),
        )

    def _fill_st_entry(self, group: int, cycle: int) -> None:
        """ST-entry fetch completion: fill the STC, release waiters."""
        st_entry = self.st.entry(group)
        self.stc.insert(group, tuple(st_entry.qac), st_entry=st_entry)
        fetch = self._pending_fetches.pop(group)
        for waiting in fetch.continuations:
            waiting(cycle)

    def _serve(
        self,
        core_id: int,
        group: int,
        slot: int,
        is_write: bool,
        on_complete: Optional[CompletionCallback],
        now: int,
    ) -> None:
        stc_entry = self._stc_peek(group)
        if stc_entry is None:
            # Evicted between fill and serve by a competing access burst;
            # re-fetch (rare, only under extreme STC pressure).
            self._fetch_st_entry(
                core_id,
                group,
                partial(self._serve, core_id, group, slot, is_write, on_complete),
            )
            return
        # The resident entry's back-reference is the group's (unique,
        # lazily created once) ST entry: one probe resolves both.
        st_entry = stc_entry.st_entry
        location = st_entry.loc_of_slot[slot]
        served_from_m1 = location == 0

        # Per-block access counter (Figure 4), weighted per Section 4.1
        # (STCEntry.bump, inlined: saturating add on a resident counter).
        counters = stc_entry.counters
        counter_max = self._counter_max
        bumped = counters[slot] + self._access_weights[is_write]
        counters[slot] = bumped if bumped < counter_max else counter_max

        # RSM request counters (Table 3): one count per request, routed
        # to the requesting core's *program* (Section 3.1.1).
        program = self.program_of_core[core_id]
        region = self._region_of_v[group]
        self._rsm_on_request(
            program,
            region,
            self._private_of[program] == region,
            served_from_m1,
        )

        stats = self.core_stats[core_id]
        stats.requests += 1
        if served_from_m1:
            stats.served_from_m1 += 1
        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1

        # Migration decision (off the critical path, Section 3.2.3).
        # ``owner`` inlines owner_of_slot: frame = block_of(...) // 2.
        owner = self._frame_owners.get((slot * self._total_groups + group) >> 1)
        ctx = self._ctx
        ctx.core_id = core_id
        ctx.group = group
        ctx.slot = slot
        ctx.location = location
        ctx.is_write = is_write
        ctx.owner = owner
        ctx.m1_owner = st_entry.m1_owner
        ctx.st_entry = st_entry
        ctx.stc_entry = stc_entry
        ctx.now = now
        promote_slot = self._policy_on_access(ctx)

        block_location = self._data_loc_cache.get(
            group * self._group_size + location
        )
        if block_location is None:
            block_location = self._data_location(group, location)

        if (
            promote_slot is None
            or not self._swaps_enabled
            or (
                self._bypass_rng is not None
                and self._bypass_rng.random() < self._bypass_rate
            )
        ):
            # Common case: nothing to do at completion beyond notifying
            # the issuer, so its callback is passed through unwrapped.
            # (The noswap and probabilistic-bypass axes drop the decided
            # promotion here, before any completion hook is wrapped.)
            on_data_complete = on_complete
        else:
            on_data_complete = partial(
                self._complete_and_promote, group, promote_slot, on_complete
            )

        self._enqueue_soa[block_location.channel](
            block_location.bank_key,
            block_location.row,
            is_write,
            now,
            _KIND_DATA,
            on_data_complete,
        )

    def _complete_and_promote(
        self,
        group: int,
        promote_slot: int,
        on_complete: Optional[CompletionCallback],
        cycle: int,
    ) -> None:
        """Completion hook for accesses whose policy decided a promotion."""
        self.request_promotion(group, promote_slot)
        if on_complete is not None:
            on_complete(cycle)

    # ------------------------------------------------------------------
    # Swaps
    # ------------------------------------------------------------------
    def request_promotion(self, group: int, slot: int) -> bool:
        """Promote ``slot``'s block into its group's M1 location.

        Returns False when the promotion is moot (block already in M1) or
        a swap for this group is still in flight.
        """
        if not self._swaps_enabled or group in self._swap_pending:
            return False
        st_entry = self.st.entry(group)
        if st_entry.location_of(slot) == 0:
            return False
        self._swap_pending.add(group)
        demote_slot = st_entry.m1_slot
        m2_location = st_entry.location_of(slot)
        m1_address = self.address_map.data_location(group, 0)
        m2_address = self.address_map.data_location(group, m2_location)

        owner_promoted = self.owner_of_slot(group, slot)
        owner_demoted = st_entry.m1_owner
        was_identity = st_entry.is_identity()
        st_entry.swap(slot, demote_slot)
        st_entry.m1_owner = owner_promoted

        region = self.address_map.region_of_group(group)
        if not self.region_map.is_private(region):
            # Swaps in private regions are not counted (Section 3.1.2).
            self.rsm.on_swap(owner_promoted, owner_demoted)
        # Explicit pair instead of iterating a {a, b} set literal: with a
        # None member, set order is address-dependent (D104), and dedup
        # must not rely on hashing.
        if owner_promoted is not None:
            self.core_stats[owner_promoted].swaps_involving += 1
        if owner_demoted is not None and owner_demoted != owner_promoted:
            self.core_stats[owner_demoted].swaps_involving += 1
        self.total_swaps += 1

        on_swap_done = partial(self._finish_swap, group)

        channel = self.channels[m1_address.channel]
        style = self._swap_style
        if (
            style == "slow"
            or (style == "smart" and m2_location != demote_slot)
        ) and not was_identity:
            # Slow swap type (Table 1): the group's original mapping must
            # be restored before the new blocks exchange, costing an
            # extra block-move pass on the channel.  The smart style pays
            # the restore only when the exchange does not already re-home
            # the demoted block (i.e. the demoted block's new M2 location
            # is not its original slot).
            channel.schedule_swap(
                m1_bank=m1_address.address.bank,
                m1_row=m1_address.address.row,
                m2_bank=m2_address.address.bank,
                m2_row=m2_address.address.row,
            )
        channel.schedule_swap(
            m1_bank=m1_address.address.bank,
            m1_row=m1_address.address.row,
            m2_bank=m2_address.address.bank,
            m2_row=m2_address.address.row,
            on_complete=on_swap_done,
        )
        self.policy.on_swap(group, slot, demote_slot)
        return True

    def _finish_swap(self, group: int, cycle: int) -> None:
        self._swap_pending.discard(group)

    # ------------------------------------------------------------------
    # STC eviction handling
    # ------------------------------------------------------------------
    def _on_stc_eviction(self, stc_entry: STCEntry) -> None:
        st_entry = stc_entry.st_entry or self.st.entry(stc_entry.group)
        self.policy.on_st_eviction(stc_entry, st_entry)
        # max() over the 9 resident counters instead of a generator-any:
        # counters are non-negative, and evictions are frequent enough
        # under STC pressure for the generator frame to show up.
        if max(stc_entry.counters) > 0:
            # QAC values changed: write the ST entry back to M1 (the paper
            # notes this read-modify-write is typical regardless, Sec. 3.2.1).
            location = self.address_map.st_location(stc_entry.group)
            self._enqueue_soa[location.channel](
                location.bank_key,
                location.row,
                True,
                self.events.now,
                _KIND_ST_WRITE,
            )

    # ------------------------------------------------------------------
    # End-of-run bookkeeping and aggregate statistics
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Flush the STC so final MDM statistics and QAC values land."""
        self.stc.flush()
        # The requests/J numerator equals the per-core served counts, so
        # it is settled once here instead of incremented per request.
        self.energy.requests_served = self.total_requests()

    def total_requests(self) -> int:
        """Demand requests served across all cores."""
        return sum(stats.requests for stats in self.core_stats)

    def swap_fraction(self) -> float:
        """Swaps among all served requests (Section 5.4 reports this)."""
        total = self.total_requests()
        return self.total_swaps / total if total else 0.0

    def average_read_latency(self) -> float:
        """Mean demand-read latency in CPU cycles across channels."""
        latency_sum = sum(c.stats.read_latency_sum for c in self.channels)
        count = sum(c.stats.read_count for c in self.channels)
        return latency_sum / count if count else 0.0

    def stc_hit_rate(self) -> float:
        """STC hit rate (Figure 7)."""
        return self.stc.hit_rate

    def m1_utilization(self) -> float:
        """Fraction of M1 locations holding an allocated program's block.

        Section 4.2 observes M1 reaching 80% utilization within the first
        2% of execution; this is the corresponding measurement.
        """
        total = self.config.total_groups
        occupied = 0
        touched = set(self.st.touched_groups())
        for group in range(total):
            if group in touched:
                m1_slot = self.st.entry(group).m1_slot
            else:
                m1_slot = 0  # identity mapping
            if self.owner_of_slot(group, m1_slot) is not None:
                occupied += 1
        return occupied / total if total else 0.0
