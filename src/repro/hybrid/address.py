"""Address arithmetic of the flat migrating organization.

Original (OS-visible) physical addresses are numbered in 2-KB blocks over
the full M1+M2 capacity.  With G total swap groups and group size S = 9:

* ``group(b) = b mod G`` — consecutive blocks land in consecutive groups,
  so a 4-KB page (two blocks) maps to two consecutive swap groups, matching
  Figure 3.
* ``slot(b) = b div G`` — the block's home location inside its group
  (slot 0's home is the M1 location; slots 1..8 are M2 locations).

Channels interleave at swap-group granularity (``channel = g mod C``), and
regions follow Figure 3's pattern: group pair (2k, 2k+1) belongs to region
``k mod num_regions``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import SystemConfig
from repro.common.errors import ConfigError
from repro.mem.request import DeviceAddress, Module


@dataclass(frozen=True)
class BlockLocation:
    """Where a block currently lives: channel + device address."""

    channel: int
    address: DeviceAddress


class AddressMap:
    """Pure-arithmetic mapping between blocks, groups, pages, and devices."""

    def __init__(self, config: SystemConfig) -> None:
        hybrid = config.hybrid
        self.num_channels = config.num_channels
        self.group_size = hybrid.group_size
        self.groups_per_channel = hybrid.groups_per_channel
        self.total_groups = config.total_groups
        self.total_blocks = config.total_blocks
        self.total_pages = config.total_pages
        self.num_regions = hybrid.num_regions
        self.blocks_per_row = hybrid.blocks_per_row
        self.banks = hybrid.banks_per_rank
        self.lines_per_block = hybrid.lines_per_block
        #: 8-B ST entries per 64-B line, and 64-B lines per 8-KB row.
        self.st_entries_per_line = 64 // 8
        self.st_lines_per_row = hybrid.row_buffer_size // hybrid.line_size
        if self.total_groups % self.num_channels:
            raise ConfigError("total groups must divide evenly over channels")

    # -- block/group arithmetic -----------------------------------------
    def group_of_block(self, block: int) -> int:
        """Swap group of an original block address."""
        return block % self.total_groups

    def slot_of_block(self, block: int) -> int:
        """Home slot (0..group_size-1) of an original block address."""
        return block // self.total_groups

    def block_of(self, group: int, slot: int) -> int:
        """Original block address for (group, slot)."""
        return slot * self.total_groups + group

    def channel_of_group(self, group: int) -> int:
        """Channel serving a swap group."""
        return group % self.num_channels

    def channel_group_index(self, group: int) -> int:
        """Group index local to its channel."""
        return group // self.num_channels

    # -- regions and pages (Figure 3) ------------------------------------
    def region_of_group(self, group: int) -> int:
        """Interleaved region of a swap group: pair (2k, 2k+1) -> k mod R."""
        return (group >> 1) % self.num_regions

    def page_of_block(self, block: int) -> int:
        """4-KB OS page frame containing an original block."""
        return block // 2

    def blocks_of_page(self, page: int) -> tuple[int, int]:
        """The two 2-KB blocks of a page frame."""
        return 2 * page, 2 * page + 1

    def region_of_page(self, page: int) -> int:
        """Region of a page frame; both of its blocks share this region."""
        return self.region_of_group(self.group_of_block(2 * page))

    def segment_of_page(self, page: int) -> int:
        """Home slot shared by both blocks of the page (0 = M1-home)."""
        return self.slot_of_block(2 * page)

    # -- device addresses --------------------------------------------------
    def data_location(self, group: int, location: int) -> BlockLocation:
        """Device address of a swap-group location's 2-KB block.

        ``location`` 0 is the group's M1 block; 1..group_size-1 are its M2
        blocks.  Consecutive blocks within a module share rows
        (``blocks_per_row`` per row) and rows interleave across banks.
        """
        channel = self.channel_of_group(group)
        local = self.channel_group_index(group)
        if location == 0:
            module = Module.M1
            block_index = local
        else:
            module = Module.M2
            block_index = local * (self.group_size - 1) + (location - 1)
        row_global = block_index // self.blocks_per_row
        bank = row_global % self.banks
        row = row_global // self.banks
        return BlockLocation(channel, DeviceAddress(module, bank, row))

    def st_location(self, group: int) -> BlockLocation:
        """Device address of a group's ST entry (stored in M1, Sec. 2.2).

        ST rows use a disjoint negative row namespace so table traffic
        contends for M1 banks without aliasing data rows.
        """
        channel = self.channel_of_group(group)
        local = self.channel_group_index(group)
        line = local // self.st_entries_per_line
        row_global = line // self.st_lines_per_row
        bank = row_global % self.banks
        row = -1 - (row_global // self.banks)
        return BlockLocation(channel, DeviceAddress(Module.M1, bank, row))
