"""Address arithmetic of the flat migrating organization.

Original (OS-visible) physical addresses are numbered in 2-KB blocks over
the full M1+M2 capacity.  With G total swap groups and group size S = 9:

* ``group(b) = b mod G`` — consecutive blocks land in consecutive groups,
  so a 4-KB page (two blocks) maps to two consecutive swap groups, matching
  Figure 3.
* ``slot(b) = b div G`` — the block's home location inside its group
  (slot 0's home is the M1 location; slots 1..8 are M2 locations).

Channels interleave at swap-group granularity (``channel = g mod C``), and
regions follow Figure 3's pattern: group pair (2k, 2k+1) belongs to region
``k mod num_regions``.

Every quantity here is a pure function of the configuration, so the
per-request work is precomputed where it pays: power-of-two divisors
become masks and shifts at construction time, and the two device-address
translations (data blocks and ST entries) are memoized — the simulator
asks for the same handful of ``BlockLocation`` objects millions of times,
and rebuilding two frozen dataclasses per request was one of the kernel's
largest allocation sinks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import SystemConfig
from repro.common.errors import ConfigError
from repro.mem.request import DeviceAddress, Module


@dataclass(frozen=True)
class BlockLocation:
    """Where a block currently lives: channel + device address.

    ``bank_key`` and ``row`` are the columnar spellings the channel's
    SoA enqueue path consumes directly (``bank_key = module *
    banks_per_rank + bank``); they are precomputed once per memoized
    location so the per-request path reads two plain ints instead of
    re-deriving them from ``address``.
    """

    channel: int
    address: DeviceAddress
    #: Global bank key within the channel (module * banks_per_rank + bank).
    bank_key: int = 0
    #: Device row (negative namespace for ST entries), duplicated from
    #: ``address.row`` for flat access.
    row: int = 0


def _mask_and_shift(value: int) -> tuple[int, int] | None:
    """(mask, shift) when ``value`` is a power of two, else None."""
    if value >= 1 and value & (value - 1) == 0:
        return value - 1, value.bit_length() - 1
    return None


class AddressMap:
    """Pure-arithmetic mapping between blocks, groups, pages, and devices."""

    def __init__(self, config: SystemConfig) -> None:
        hybrid = config.hybrid
        self.num_channels = config.num_channels
        self.group_size = hybrid.group_size
        self.groups_per_channel = hybrid.groups_per_channel
        self.total_groups = config.total_groups
        self.total_blocks = config.total_blocks
        self.total_pages = config.total_pages
        self.num_regions = hybrid.num_regions
        self.blocks_per_row = hybrid.blocks_per_row
        self.banks = hybrid.banks_per_rank
        self.lines_per_block = hybrid.lines_per_block
        #: 8-B ST entries per 64-B line, and 64-B lines per 8-KB row.
        self.st_entries_per_line = 64 // 8
        self.st_lines_per_row = hybrid.row_buffer_size // hybrid.line_size
        if self.total_groups % self.num_channels:
            raise ConfigError("total groups must divide evenly over channels")
        # Power-of-two fast paths (always taken for the paper geometry:
        # every divisor below is a power of two there).
        self._groups_ms = _mask_and_shift(self.total_groups)
        self._lines_ms = _mask_and_shift(self.lines_per_block)
        self._regions_mask = (
            self.num_regions - 1
            if _mask_and_shift(self.num_regions) is not None
            else None
        )
        # Memoized device-address translations, keyed by
        # group * group_size + location (data) and group (ST).
        self._data_locations: dict[int, BlockLocation] = {}
        self._st_locations: dict[int, BlockLocation] = {}

    # -- block/group arithmetic -----------------------------------------
    def group_of_block(self, block: int) -> int:
        """Swap group of an original block address."""
        ms = self._groups_ms
        if ms is not None:
            return block & ms[0]
        return block % self.total_groups

    def slot_of_block(self, block: int) -> int:
        """Home slot (0..group_size-1) of an original block address."""
        ms = self._groups_ms
        if ms is not None:
            return block >> ms[1]
        return block // self.total_groups

    def group_and_slot_of_line(self, line: int) -> tuple[int, int, int]:
        """(block, group, slot) of an original 64-B line address.

        The controller's per-request translation, fused into one call so
        the hot path performs two shifts and a mask instead of three
        method calls with a division each.
        """
        lines_ms = self._lines_ms
        if lines_ms is not None:
            block = line >> lines_ms[1]
        else:
            block = line // self.lines_per_block
        groups_ms = self._groups_ms
        if groups_ms is not None:
            return block, block & groups_ms[0], block >> groups_ms[1]
        return (
            block,
            block % self.total_groups,
            block // self.total_groups,
        )

    def block_of(self, group: int, slot: int) -> int:
        """Original block address for (group, slot)."""
        return slot * self.total_groups + group

    def channel_of_group(self, group: int) -> int:
        """Channel serving a swap group."""
        return group % self.num_channels

    def channel_group_index(self, group: int) -> int:
        """Group index local to its channel."""
        return group // self.num_channels

    # -- regions and pages (Figure 3) ------------------------------------
    def region_of_group(self, group: int) -> int:
        """Interleaved region of a swap group: pair (2k, 2k+1) -> k mod R."""
        mask = self._regions_mask
        if mask is not None:
            return (group >> 1) & mask
        return (group >> 1) % self.num_regions

    def page_of_block(self, block: int) -> int:
        """4-KB OS page frame containing an original block."""
        return block // 2

    def blocks_of_page(self, page: int) -> tuple[int, int]:
        """The two 2-KB blocks of a page frame."""
        return 2 * page, 2 * page + 1

    def region_of_page(self, page: int) -> int:
        """Region of a page frame; both of its blocks share this region."""
        return self.region_of_group(self.group_of_block(2 * page))

    def segment_of_page(self, page: int) -> int:
        """Home slot shared by both blocks of the page (0 = M1-home)."""
        return self.slot_of_block(2 * page)

    # -- device addresses --------------------------------------------------
    def data_location(self, group: int, location: int) -> BlockLocation:
        """Device address of a swap-group location's 2-KB block.

        ``location`` 0 is the group's M1 block; 1..group_size-1 are its M2
        blocks.  Consecutive blocks within a module share rows
        (``blocks_per_row`` per row) and rows interleave across banks.
        """
        key = group * self.group_size + location
        cached = self._data_locations.get(key)
        if cached is not None:
            return cached
        channel = self.channel_of_group(group)
        local = self.channel_group_index(group)
        if location == 0:
            module = Module.M1
            block_index = local
        else:
            module = Module.M2
            block_index = local * (self.group_size - 1) + (location - 1)
        row_global = block_index // self.blocks_per_row
        bank = row_global % self.banks
        row = row_global // self.banks
        result = BlockLocation(
            channel,
            DeviceAddress(module, bank, row),
            module * self.banks + bank,
            row,
        )
        self._data_locations[key] = result
        return result

    def st_location(self, group: int) -> BlockLocation:
        """Device address of a group's ST entry (stored in M1, Sec. 2.2).

        ST rows use a disjoint negative row namespace so table traffic
        contends for M1 banks without aliasing data rows.
        """
        cached = self._st_locations.get(group)
        if cached is not None:
            return cached
        channel = self.channel_of_group(group)
        local = self.channel_group_index(group)
        line = local // self.st_entries_per_line
        row_global = line // self.st_lines_per_row
        bank = row_global % self.banks
        row = -1 - (row_global // self.banks)
        result = BlockLocation(
            channel, DeviceAddress(Module.M1, bank, row), bank, row
        )
        self._st_locations[group] = result
        return result
