"""Flat migrating hybrid-memory organization (the PoM baseline, Sec. 2.3).

Swap groups of nine 2-KB locations (one in M1, eight in M2), a Swap-group
Table (ST) stored in M1 with an on-chip cache (STC), OS page-frame
allocation over 128 interleaved regions with per-program private regions,
and the memory-controller facade that ties translation, timing, policies,
and monitoring together.
"""

from repro.hybrid.address import AddressMap
from repro.hybrid.st_entry import STEntry
from repro.hybrid.st import SwapGroupTable
from repro.hybrid.regions import OSAllocator, RegionMap
from repro.hybrid.memory import HybridMemoryController

__all__ = [
    "AddressMap",
    "HybridMemoryController",
    "OSAllocator",
    "RegionMap",
    "STEntry",
    "SwapGroupTable",
]
