"""repro — a reproduction of *ProFess: A Probabilistic Hybrid Main Memory
Management Framework for High Performance and Fairness* (HPCA 2018).

The package implements the paper's full system in Python: a flat
migrating DRAM+NVM hybrid memory with the PoM organization, the baseline
migration policies of Table 2 (CAMEO, PoM, SILC-FM, MemPod), and the
paper's contribution — the probabilistic Migration-Decision Mechanism
(MDM), the Relative-Slowdown Monitor (RSM), and their integration,
ProFess — together with a trace-driven multicore simulator, synthetic
SPEC CPU2006 workloads, and experiment drivers regenerating every table
and figure of the evaluation.

Quick start::

    from repro import ExperimentRunner

    runner = ExperimentRunner(scale=128, multi_requests=20_000)
    metrics = runner.workload_metrics("w09", "profess")
    print(metrics.unfairness, metrics.weighted_speedup)
"""

from repro.common.config import (
    SystemConfig,
    paper_quad_core,
    paper_single_core,
)
from repro.core.mdm import MDMPolicy
from repro.core.profess import ProFessPolicy
from repro.core.rsm import RSM
from repro.cpu.trace import Trace
from repro.exec import Executor, ResultCache, RunSpec
from repro.experiments.runner import ExperimentRunner
from repro.policies import make_policy
from repro.policies.registry import (
    PolicySpec,
    build_policy,
    canonical_policy,
)
from repro.sim.engine import SimulationDriver
from repro.sim.metrics import (
    WorkloadMetrics,
    slowdown,
    unfairness,
    weighted_speedup,
)
from repro.traces.generator import synthesize_trace
from repro.workloads import PROGRAMS, WORKLOADS

__version__ = "1.0.0"

__all__ = [
    "ExperimentRunner",
    "Executor",
    "MDMPolicy",
    "PROGRAMS",
    "PolicySpec",
    "ProFessPolicy",
    "RSM",
    "ResultCache",
    "RunSpec",
    "SimulationDriver",
    "SystemConfig",
    "Trace",
    "WORKLOADS",
    "WorkloadMetrics",
    "build_policy",
    "canonical_policy",
    "make_policy",
    "paper_quad_core",
    "paper_single_core",
    "slowdown",
    "synthesize_trace",
    "unfairness",
    "weighted_speedup",
    "__version__",
]
