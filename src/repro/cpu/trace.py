"""Main-memory trace format and helpers.

A trace is three parallel arrays: ``gaps`` (instructions executed since
the previous memory request), ``lines`` (virtual 64-B line numbers), and
``writes`` (booleans).  This is exactly the information the paper's
Pin-based simulator feeds its memory system per L3 miss, and all of what
the evaluated policies can observe.

Traces can be synthesized (:mod:`repro.traces`), loaded/saved as ``.npz``
files, or derived from a raw address stream by filtering through the
:class:`~repro.cache.hierarchy.CacheHierarchy` substrate with
:func:`filter_through_caches`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Tuple

import numpy as np

from repro.common.errors import TraceError
from repro.cache.hierarchy import CacheHierarchy

TraceRecord = Tuple[int, int, bool]


@dataclass(frozen=True)
class Trace:
    """An immutable main-memory access trace for one program."""

    gaps: np.ndarray
    lines: np.ndarray
    writes: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.gaps) == len(self.lines) == len(self.writes)):
            raise TraceError("trace arrays must have equal length")
        if len(self.gaps) == 0:
            raise TraceError("empty trace")
        if (np.asarray(self.gaps) < 0).any():
            raise TraceError("negative instruction gap")
        if (np.asarray(self.lines) < 0).any():
            raise TraceError("negative line address")

    def __len__(self) -> int:
        return len(self.gaps)

    def __iter__(self) -> Iterator[TraceRecord]:
        for gap, line, write in zip(self.gaps, self.lines, self.writes):
            yield int(gap), int(line), bool(write)

    @property
    def instructions(self) -> int:
        """Total instructions represented (gaps + one per memory op)."""
        return int(np.sum(self.gaps)) + len(self)

    @property
    def mpki(self) -> float:
        """Memory requests per kilo-instruction of this trace."""
        return 1000.0 * len(self) / self.instructions

    @property
    def write_fraction(self) -> float:
        """Fraction of requests that are writes."""
        return float(np.mean(self.writes))

    @property
    def footprint_lines(self) -> int:
        """Distinct 64-B lines touched."""
        return int(len(np.unique(self.lines)))

    def max_line(self) -> int:
        """Largest virtual line number (for sizing page tables)."""
        return int(np.max(self.lines))

    @staticmethod
    def from_records(records: Iterable[TraceRecord]) -> "Trace":
        """Build a trace from (gap, line, is_write) tuples."""
        materialized = list(records)
        if not materialized:
            raise TraceError("empty trace")
        gaps = np.array([r[0] for r in materialized], dtype=np.int64)
        lines = np.array([r[1] for r in materialized], dtype=np.int64)
        writes = np.array([r[2] for r in materialized], dtype=bool)
        return Trace(gaps=gaps, lines=lines, writes=writes)

    def save(self, path: str | Path) -> None:
        """Persist as a compressed ``.npz`` file."""
        np.savez_compressed(
            Path(path), gaps=self.gaps, lines=self.lines, writes=self.writes
        )

    @staticmethod
    def load(path: str | Path) -> "Trace":
        """Load a trace written by :meth:`save`."""
        try:
            data = np.load(Path(path))
            return Trace(
                gaps=data["gaps"], lines=data["lines"], writes=data["writes"]
            )
        except (KeyError, OSError, ValueError) as exc:
            raise TraceError(f"cannot load trace from {path}: {exc}") from exc

    def truncated(self, max_requests: int) -> "Trace":
        """A prefix of this trace with at most ``max_requests`` requests."""
        if max_requests < 1:
            raise TraceError("max_requests must be >= 1")
        if max_requests >= len(self):
            return self
        return Trace(
            gaps=self.gaps[:max_requests],
            lines=self.lines[:max_requests],
            writes=self.writes[:max_requests],
        )


def filter_through_caches(
    instruction_stream: Iterable[TraceRecord],
    hierarchy: CacheHierarchy,
) -> Trace:
    """Derive a main-memory trace from a raw (pre-L1) access stream.

    Each record of ``instruction_stream`` is (gap, line, is_write) at the
    L1 boundary.  Accesses that hit any cache level contribute only to the
    instruction gap of the next miss; misses and last-level dirty
    writebacks become trace records.  This is the substrate path mirroring
    the paper's Pin + cache-model front end.
    """
    gaps: list[int] = []
    lines: list[int] = []
    writes: list[bool] = []
    pending_gap = 0
    for gap, line, is_write in instruction_stream:
        pending_gap += gap
        result = hierarchy.access(line, is_write)
        if result.is_memory_access:
            gaps.append(pending_gap)
            lines.append(line)
            writes.append(False)  # demand fill is a read
            pending_gap = 0
        else:
            pending_gap += 1
        for victim in result.writebacks:
            gaps.append(0)
            lines.append(victim)
            writes.append(True)
    if not gaps:
        raise TraceError("instruction stream produced no memory accesses")
    return Trace(
        gaps=np.array(gaps, dtype=np.int64),
        lines=np.array(lines, dtype=np.int64),
        writes=np.array(writes, dtype=bool),
    )
