"""Trace-driven CPU substrate.

:mod:`repro.cpu.trace` defines the main-memory trace format (instruction
gap, 64-B virtual line, read/write) plus file I/O and a raw-address-stream
filter through the cache hierarchy; :mod:`repro.cpu.core_model` is the
timing model that replays a trace against the hybrid memory controller.
"""

from repro.cpu.trace import Trace, filter_through_caches
from repro.cpu.core_model import TraceCore

__all__ = ["Trace", "TraceCore", "filter_through_caches"]
