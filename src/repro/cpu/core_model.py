"""Trace-driven core timing model.

Substitute for the paper's 4-wide out-of-order core (Table 8): the core
retires non-memory instructions at ``issue_ipc`` and tolerates up to
``mlp`` outstanding main-memory reads before stalling — a first-order
model of ROB-limited memory-level parallelism.  Writes retire through a
bounded write buffer and stall the core only when the buffer is full.

This captures what migration policies are actually sensitive to: how much
main-memory latency each program can hide, and how stalls couple cores
through channel contention.  Absolute IPC is not calibrated to any real
machine; all paper figures are normalized comparisons.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.common.config import CoreConfig
from repro.common.events import EventQueue
from repro.cpu.trace import Trace


class TraceCore:
    """Replays one program's trace against a memory access function.

    ``access`` is called as ``access(core_id, virtual_line, is_write,
    on_complete)``; address translation to original physical lines is the
    caller's concern (see :class:`repro.sim.engine.ProgramRunner`).
    ``on_pass_complete`` fires each time the trace finishes one pass; it
    returns True to replay the trace again (workload repetition,
    Section 4.2) or False to stop the core.
    """

    __slots__ = (
        "core_id",
        "config",
        "trace",
        "events",
        "access",
        "on_pass_complete",
        "index",
        "passes_completed",
        "instructions_retired",
        "outstanding_reads",
        "writes_in_flight",
        "stopped",
        "finished_at",
        "_waiting_for_read",
        "_waiting_for_write",
        "_gaps",
        "_lines",
        "_writes",
        "_length",
        "_compute_cycles",
        "_mlp",
        "_write_buffer",
        "_schedule",
        "_issue_next_cb",
        "_dispatch_cb",
        "_on_read_complete_cb",
        "_on_write_complete_cb",
    )

    def __init__(
        self,
        core_id: int,
        config: CoreConfig,
        trace: Trace,
        events: EventQueue,
        access: Callable[[int, int, bool, Callable[[int], None]], None],
        on_pass_complete: Optional[Callable[[int, int], bool]] = None,
    ) -> None:
        self.core_id = core_id
        self.config = config
        self.trace = trace
        self.events = events
        self.access = access
        self.on_pass_complete = on_pass_complete
        self.index = 0
        self.passes_completed = 0
        self.instructions_retired = 0
        self.outstanding_reads = 0
        self.writes_in_flight = 0
        self.stopped = False
        self.finished_at: Optional[int] = None
        self._waiting_for_read = False
        self._waiting_for_write = False
        # Plain Python lists: per-element numpy scalar extraction is an
        # order of magnitude slower than list indexing on this path.
        self._gaps = [int(gap) for gap in trace.gaps]
        self._lines = [int(line) for line in trace.lines]
        self._writes = [bool(write) for write in trace.writes]
        self._length = len(self._gaps)
        # Gap -> compute-cycle conversion hoisted out of the issue loop:
        # the trace and issue_ipc are fixed, so the ceil-divide per
        # instruction gap is a table lookup at run time.
        ipc = config.issue_ipc
        self._compute_cycles = [
            math.ceil(gap / ipc) if gap > 0 else 0 for gap in self._gaps
        ]
        self._mlp = config.mlp
        self._write_buffer = config.write_buffer
        self._schedule = events.schedule
        # Pre-bound callbacks: one bound-method object reused for every
        # event instead of a fresh binding per schedule call.
        self._issue_next_cb = self._issue_next
        self._dispatch_cb = self._dispatch
        self._on_read_complete_cb = self._on_read_complete
        self._on_write_complete_cb = self._on_write_complete

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the first instruction at cycle 0."""
        self.events.schedule(self.events.now, self._issue_next_cb)

    def stop(self) -> None:
        """Cease issuing after in-flight work completes."""
        self.stopped = True

    @property
    def ipc(self) -> float:
        """Instructions per cycle up to now (or up to finish)."""
        end = self.finished_at if self.finished_at is not None else self.events.now
        return self.instructions_retired / end if end > 0 else 0.0

    # ------------------------------------------------------------------
    def _issue_next(self, now: int) -> None:
        if self.stopped:
            self._finish(now)
            return
        if self.index >= self._length:
            self.passes_completed += 1
            replay = False
            if self.on_pass_complete is not None:
                replay = self.on_pass_complete(self.core_id, now)
            if not replay:
                self._finish(now)
                return
            self.index = 0
        compute_cycles = self._compute_cycles[self.index]
        if compute_cycles > 0:
            self._schedule(now + compute_cycles, self._dispatch_cb)
            return
        self._dispatch(now)

    def _dispatch(self, now: int) -> None:
        if self.stopped:
            self._finish(now)
            return
        index = self.index
        is_write = self._writes[index]
        if is_write:
            if self.writes_in_flight >= self._write_buffer:
                self._waiting_for_write = True
                return  # resumed by _on_write_complete
            self.writes_in_flight += 1
            callback = self._on_write_complete_cb
        else:
            if self.outstanding_reads >= self._mlp:
                self._waiting_for_read = True
                return  # resumed by _on_read_complete
            self.outstanding_reads += 1
            callback = self._on_read_complete_cb
        self.instructions_retired += self._gaps[index] + 1
        self.index = index + 1
        self.access(self.core_id, self._lines[index], is_write, callback)
        self._issue_next(now)

    def _on_read_complete(self, now: int) -> None:
        self.outstanding_reads -= 1
        if self._waiting_for_read:
            self._waiting_for_read = False
            self._dispatch(now)

    def _on_write_complete(self, now: int) -> None:
        self.writes_in_flight -= 1
        if self._waiting_for_write:
            self._waiting_for_write = False
            self._dispatch(now)

    def _finish(self, now: int) -> None:
        if self.finished_at is None:
            self.finished_at = now
