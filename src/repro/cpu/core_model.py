"""Trace-driven core timing model.

Substitute for the paper's 4-wide out-of-order core (Table 8): the core
retires non-memory instructions at ``issue_ipc`` and tolerates up to
``mlp`` outstanding main-memory reads before stalling — a first-order
model of ROB-limited memory-level parallelism.  Writes retire through a
bounded write buffer and stall the core only when the buffer is full.

This captures what migration policies are actually sensitive to: how much
main-memory latency each program can hide, and how stalls couple cores
through channel contention.  Absolute IPC is not calibrated to any real
machine; all paper figures are normalized comparisons.

The per-request front end is batched (DESIGN.md §12): the trace's gap /
address / op streams are decoded into preformed tables by
:class:`~repro.traces.decode.TraceDecoder`, and the issue loop walks a
cursor over one decoded chunk at a time.  Instructions retired are a
prefix-sum lookup rather than per-request accumulation, so the dispatch
path touches exactly three list elements per request.
"""

from __future__ import annotations

from heapq import heappush as _heappush
from typing import Callable, Optional

from repro.common.config import CoreConfig
from repro.common.events import EventQueue
from repro.cpu.trace import Trace
from repro.traces.decode import DEFAULT_CHUNK_REQUESTS, TraceDecoder


class TraceCore:
    """Replays one program's trace against a memory access function.

    ``access`` is called as ``access(core_id, virtual_line, is_write,
    on_complete)``; address translation to original physical lines is the
    caller's concern (see :class:`repro.sim.engine.ProgramRunner`).
    ``on_pass_complete`` fires each time the trace finishes one pass; it
    returns True to replay the trace again (workload repetition,
    Section 4.2) or False to stop the core.

    ``chunk_requests`` bounds how many decoded requests are resident as
    Python objects at once; the default keeps typical traces in a single
    chunk (see :mod:`repro.traces.decode`).
    """

    __slots__ = (
        "core_id",
        "config",
        "trace",
        "events",
        "access",
        "on_pass_complete",
        "passes_completed",
        "outstanding_reads",
        "writes_in_flight",
        "stopped",
        "finished_at",
        "_waiting_for_read",
        "_waiting_for_write",
        "_decoder",
        "_chunk_index",
        "_chunk_start",
        "_cursor",
        "_limit",
        "_cycles",
        "_lines",
        "_writes",
        "_retired_prefix",
        "_retired_base",
        "_mlp",
        "_write_buffer",
        "_issue_next_cb",
        "_dispatch_cb",
        "_on_read_complete_cb",
        "_on_write_complete_cb",
    )

    def __init__(
        self,
        core_id: int,
        config: CoreConfig,
        trace: Trace,
        events: EventQueue,
        access: Callable[[int, int, bool, Callable[[int], None]], None],
        on_pass_complete: Optional[Callable[[int, int], bool]] = None,
        chunk_requests: int = DEFAULT_CHUNK_REQUESTS,
    ) -> None:
        self.core_id = core_id
        self.config = config
        self.trace = trace
        self.events = events
        self.access = access
        self.on_pass_complete = on_pass_complete
        self.passes_completed = 0
        self.outstanding_reads = 0
        self.writes_in_flight = 0
        self.stopped = False
        self.finished_at: Optional[int] = None
        self._waiting_for_read = False
        self._waiting_for_write = False
        # Batched front end: the decoder holds the vectorized numpy
        # tables; the core walks plain-list views one chunk at a time.
        self._decoder = TraceDecoder(trace, config.issue_ipc, chunk_requests)
        self._retired_base = 0
        self._load_chunk(0)
        self._mlp = config.mlp
        self._write_buffer = config.write_buffer
        # Pre-bound callbacks: one bound-method object reused for every
        # event instead of a fresh binding per schedule call.
        self._issue_next_cb = self._issue_next
        self._dispatch_cb = self._dispatch
        self._on_read_complete_cb = self._on_read_complete
        self._on_write_complete_cb = self._on_write_complete

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the first instruction at cycle 0."""
        self.events.schedule(self.events.now, self._issue_next_cb)

    def stop(self) -> None:
        """Cease issuing after in-flight work completes."""
        self.stopped = True

    @property
    def ipc(self) -> float:
        """Instructions per cycle up to now (or up to finish)."""
        end = self.finished_at if self.finished_at is not None else self.events.now
        return self.instructions_retired / end if end > 0 else 0.0

    @property
    def instructions_retired(self) -> int:
        """Instructions retired so far (prefix-sum lookup, not a counter)."""
        return self._retired_base + self._retired_prefix[self._cursor]

    @property
    def index(self) -> int:
        """Position of the next request within the current pass."""
        return self._chunk_start + self._cursor

    # ------------------------------------------------------------------
    def _load_chunk(self, index: int) -> None:
        chunk = self._decoder.chunk(index)
        self._chunk_index = index
        self._chunk_start = chunk.start
        self._cursor = 0
        self._limit = chunk.length
        self._cycles = chunk.cycles
        self._lines = chunk.lines
        self._writes = chunk.writes
        self._retired_prefix = chunk.retired_prefix

    def _refill(self, now: int) -> bool:
        """Advance past an exhausted chunk.

        Loads the next chunk (or, at end of trace, consults
        ``on_pass_complete`` and restarts at chunk 0).  Returns False
        when the core finished instead.  The retired base is folded
        forward — and the cursor zeroed — *before* ``on_pass_complete``
        runs, so ``instructions_retired`` stays exact for the driver's
        end-of-run snapshot.
        """
        self._retired_base += self._retired_prefix[self._limit]
        self._cursor = 0
        next_index = self._chunk_index + 1
        if next_index < self._decoder.num_chunks:
            self._load_chunk(next_index)
            return True
        self.passes_completed += 1
        replay = False
        if self.on_pass_complete is not None:
            replay = self.on_pass_complete(self.core_id, now)
        if not replay:
            self._finish(now)
            return False
        self._load_chunk(0)
        return True

    # ------------------------------------------------------------------
    def _issue_next(self, now: int) -> None:
        if self.stopped:
            self._finish(now)
            return
        cursor = self._cursor
        if cursor == self._limit:
            if not self._refill(now):
                return
            cursor = 0
        compute_cycles = self._cycles[cursor]
        if compute_cycles > 0:
            # Inline-push contract (events.py): compute_cycles > 0, so
            # the dispatch lands a strictly-future cycle.
            events = self.events
            seq = events._seq
            _heappush(
                events._heap, (now + compute_cycles, seq, self._dispatch_cb)
            )
            events._seq = seq + 1
            return
        self._dispatch(now)

    def _dispatch(self, now: int) -> None:
        if self.stopped:
            self._finish(now)
            return
        cursor = self._cursor
        cycles = self._cycles
        lines = self._lines
        writes = self._writes
        access = self.access
        core_id = self.core_id
        while True:
            is_write = writes[cursor]
            if is_write:
                if self.writes_in_flight >= self._write_buffer:
                    self._waiting_for_write = True
                    return  # resumed by _on_write_complete
                self.writes_in_flight += 1
                callback = self._on_write_complete_cb
            else:
                if self.outstanding_reads >= self._mlp:
                    self._waiting_for_read = True
                    return  # resumed by _on_read_complete
                self.outstanding_reads += 1
                callback = self._on_read_complete_cb
            self._cursor = cursor + 1
            access(core_id, lines[cursor], is_write, callback)
            # Inlined issue-next: schedule the next request's dispatch,
            # or keep looping when it is due this same cycle.
            if self.stopped:
                self._finish(now)
                return
            cursor += 1
            if cursor == self._limit:
                if not self._refill(now):
                    return
                cursor = 0
                cycles = self._cycles
                lines = self._lines
                writes = self._writes
            compute_cycles = cycles[cursor]
            if compute_cycles > 0:
                # Inline-push contract (events.py): strictly future.
                events = self.events
                seq = events._seq
                _heappush(
                    events._heap,
                    (now + compute_cycles, seq, self._dispatch_cb),
                )
                events._seq = seq + 1
                return

    def _on_read_complete(self, now: int) -> None:
        self.outstanding_reads -= 1
        if self._waiting_for_read:
            self._waiting_for_read = False
            self._dispatch(now)

    def _on_write_complete(self, now: int) -> None:
        self.writes_in_flight -= 1
        if self._waiting_for_write:
            self._waiting_for_write = False
            self._dispatch(now)

    def _finish(self, now: int) -> None:
        if self.finished_at is None:
            self.finished_at = now
