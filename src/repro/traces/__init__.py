"""Synthetic trace generation.

The paper drives its simulator with SPEC CPU2006 SimPoint traces; those
are proprietary, so this package synthesizes main-memory access streams
whose first-order properties — MPKI, footprint, write fraction, block
reuse structure, and spatial/temporal locality class — match each
program's published characterization (Table 9 and Section 4.2).  See
DESIGN.md for the substitution argument.
"""

from repro.traces.patterns import (
    ChaseComponent,
    HotSetComponent,
    PatternComponent,
    StreamComponent,
)
from repro.traces.spec import PROGRAM_PROFILES, ProgramProfile
from repro.traces.generator import synthesize_trace
from repro.traces.decode import (
    DEFAULT_CHUNK_REQUESTS,
    DecodedChunk,
    TraceDecoder,
)

__all__ = [
    "ChaseComponent",
    "DEFAULT_CHUNK_REQUESTS",
    "DecodedChunk",
    "HotSetComponent",
    "PROGRAM_PROFILES",
    "PatternComponent",
    "ProgramProfile",
    "StreamComponent",
    "TraceDecoder",
    "synthesize_trace",
]
