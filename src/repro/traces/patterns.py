"""Access-pattern primitives for trace synthesis.

Each component owns a contiguous virtual-address range and produces one
(line, is_write) pair per step.  A program is a weighted mixture of
components (:mod:`repro.traces.generator` interleaves them), mirroring
how real programs interleave accesses to differently-behaved data
structures (Section 4.2 characterizes mcf/omnetpp/libquantum as irregular
and pointer-based, soplex as mixed, and so on).

All components speak 64-B lines but think in 2-KB blocks (32 lines), the
migration granularity, because the properties that matter to the policies
under study are per-block reuse counts and residency patterns.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.common.errors import TraceError

LINES_PER_BLOCK = 32


class PatternComponent(ABC):
    """One data structure's access behaviour within a virtual range."""

    def __init__(
        self, start_line: int, num_lines: int, write_fraction: float
    ) -> None:
        if num_lines < LINES_PER_BLOCK:
            raise TraceError("component needs at least one 2-KB block")
        if not 0.0 <= write_fraction <= 1.0:
            raise TraceError("write_fraction must be in [0, 1]")
        self.start_line = start_line
        self.num_lines = num_lines
        self.write_fraction = write_fraction

    @property
    def num_blocks(self) -> int:
        """2-KB blocks in this component's range."""
        return self.num_lines // LINES_PER_BLOCK

    def _line(self, block: int, offset: int) -> int:
        return self.start_line + block * LINES_PER_BLOCK + offset

    def _is_write(self, rng: np.random.Generator) -> bool:
        return bool(rng.random() < self.write_fraction)

    @abstractmethod
    def next_access(self, rng: np.random.Generator) -> tuple[int, bool]:
        """Produce the next (virtual line, is_write)."""


class StreamComponent(PatternComponent):
    """Interleaved sequential scans over the range, wrapping indefinitely.

    Scientific kernels (lbm's lattice sweep, bwaves, GemsFDTD) stream
    through several arrays at once: the component splits its range into
    ``num_streams`` stripes with one cursor each and rotates among them,
    so concurrent streams collide in the row buffers like real multi-array
    stencils do.  Every line receives ``touches_per_line`` consecutive
    accesses per pass; a block's per-residency access count is large but
    the block never returns once the scan moves on.
    """

    def __init__(
        self,
        start_line: int,
        num_lines: int,
        write_fraction: float,
        touches_per_line: int = 1,
        num_streams: int = 1,
    ) -> None:
        super().__init__(start_line, num_lines, write_fraction)
        if touches_per_line < 1:
            raise TraceError("touches_per_line must be >= 1")
        if num_streams < 1:
            raise TraceError("num_streams must be >= 1")
        self.touches_per_line = touches_per_line
        self.num_streams = min(num_streams, self.num_blocks)
        stripe_blocks = self.num_blocks // self.num_streams
        self._stripe_lines = max(stripe_blocks * LINES_PER_BLOCK, 1)
        self._positions = [0] * self.num_streams
        self._touches = [0] * self.num_streams
        self._turn = 0

    def next_access(self, rng: np.random.Generator) -> tuple[int, bool]:
        stream = self._turn
        self._turn = (self._turn + 1) % self.num_streams
        base = stream * self._stripe_lines
        line = self.start_line + base + self._positions[stream]
        self._touches[stream] += 1
        if self._touches[stream] >= self.touches_per_line:
            self._touches[stream] = 0
            self._positions[stream] = (
                self._positions[stream] + 1
            ) % self._stripe_lines
        return line, self._is_write(rng)


class HotSetComponent(PatternComponent):
    """Zipf-distributed block reuse: few hot blocks, long cold tail.

    Episodes model temporal locality: a block drawn from a Zipf
    distribution receives a burst of ``episode_length`` (geometric mean)
    sequential-with-jitter accesses, then the next block is drawn.  Hot
    blocks accumulate large per-residency counts, cold ones small —
    exactly the structure MDM's QAC attribute is built to distinguish.
    """

    def __init__(
        self,
        start_line: int,
        num_lines: int,
        write_fraction: float,
        zipf_s: float = 0.9,
        episode_length: int = 8,
    ) -> None:
        super().__init__(start_line, num_lines, write_fraction)
        if episode_length < 1:
            raise TraceError("episode_length must be >= 1")
        self.episode_length = episode_length
        ranks = np.arange(1, self.num_blocks + 1, dtype=np.float64)
        weights = ranks ** (-zipf_s)
        self._cdf = np.cumsum(weights / weights.sum())
        self._block = 0
        self._remaining = 0
        self._offset = 0

    def _draw_block(self, rng: np.random.Generator) -> int:
        return int(np.searchsorted(self._cdf, rng.random()))

    def next_access(self, rng: np.random.Generator) -> tuple[int, bool]:
        if self._remaining <= 0:
            self._block = self._draw_block(rng)
            self._remaining = int(rng.geometric(1.0 / self.episode_length))
            self._offset = int(rng.integers(0, LINES_PER_BLOCK))
        self._remaining -= 1
        line = self._line(self._block, self._offset)
        self._offset = (self._offset + 1) % LINES_PER_BLOCK
        return line, self._is_write(rng)


class ChaseComponent(PatternComponent):
    """Pointer chasing: short episodes over a drifting locality window.

    Models mcf/omnetpp-style irregular traversals: the next block is
    drawn uniformly from a window around the current position (the window
    drifts), with occasional global jumps; each visit touches only
    ``episode_length`` lines.  Per-residency counts stay tiny, so
    promoting such blocks is rarely worthwhile — the behaviour that
    separates good migration decisions from bad ones (Section 5.1).
    """

    def __init__(
        self,
        start_line: int,
        num_lines: int,
        write_fraction: float,
        window_blocks: int = 64,
        jump_probability: float = 0.05,
        episode_length: int = 2,
    ) -> None:
        super().__init__(start_line, num_lines, write_fraction)
        if window_blocks < 1:
            raise TraceError("window_blocks must be >= 1")
        self.window_blocks = min(window_blocks, self.num_blocks)
        self.jump_probability = jump_probability
        self.episode_length = episode_length
        self._position = 0
        self._block = 0
        self._remaining = 0

    def next_access(self, rng: np.random.Generator) -> tuple[int, bool]:
        if self._remaining <= 0:
            if rng.random() < self.jump_probability:
                self._position = int(rng.integers(0, self.num_blocks))
            half = self.window_blocks // 2
            low = max(0, self._position - half)
            high = min(self.num_blocks, self._position + half + 1)
            self._block = int(rng.integers(low, high))
            self._position = self._block
            self._remaining = max(
                1, int(rng.geometric(1.0 / self.episode_length))
            )
        self._remaining -= 1
        offset = int(rng.integers(0, LINES_PER_BLOCK))
        return self._line(self._block, offset), self._is_write(rng)
