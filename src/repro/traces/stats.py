"""Trace characterization: the quantities the profiles must reproduce.

Validates synthetic traces against their Table 9 targets and gives users
tools to characterize their own traces before simulation: MPKI, write
fraction, footprint, per-block access-count distributions (the structure
MDM's QAC attribute quantizes), block-level reuse distance, and spatial
locality of consecutive requests.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.cpu.trace import Trace
from repro.traces.patterns import LINES_PER_BLOCK


@dataclass(frozen=True)
class TraceCharacterization:
    """Summary statistics of one trace."""

    requests: int
    instructions: int
    mpki: float
    write_fraction: float
    footprint_bytes: int
    distinct_blocks: int
    #: Mean accesses per touched 2-KB block over the whole trace.
    mean_accesses_per_block: float
    #: Gini-style concentration: fraction of accesses to the hottest
    #: 10% of touched blocks (hot-set skew; ~0.1 means uniform).
    top_decile_access_share: float
    #: Fraction of consecutive request pairs within the same 2-KB block
    #: (spatial locality the STC's temporal filtering relies on).
    same_block_fraction: float
    #: Median block-level reuse distance (distinct intervening blocks),
    #: or None when fewer than 2% of accesses are reuses.
    median_block_reuse_distance: float | None


def characterize(trace: Trace, reuse_sample_stride: int = 1) -> TraceCharacterization:
    """Compute a :class:`TraceCharacterization` for ``trace``."""
    lines = np.asarray(trace.lines)
    blocks = lines // LINES_PER_BLOCK
    counts = Counter(blocks.tolist())
    distinct = len(counts)
    ordered = sorted(counts.values(), reverse=True)
    top = max(1, distinct // 10)
    top_share = sum(ordered[:top]) / len(trace)
    same_block = (
        float(np.mean(blocks[1:] == blocks[:-1])) if len(trace) > 1 else 0.0
    )
    return TraceCharacterization(
        requests=len(trace),
        instructions=trace.instructions,
        mpki=trace.mpki,
        write_fraction=trace.write_fraction,
        footprint_bytes=trace.footprint_lines * 64,
        distinct_blocks=distinct,
        mean_accesses_per_block=len(trace) / distinct,
        top_decile_access_share=top_share,
        same_block_fraction=same_block,
        median_block_reuse_distance=_median_reuse_distance(
            blocks, reuse_sample_stride
        ),
    )


def _median_reuse_distance(
    blocks: np.ndarray, stride: int = 1
) -> float | None:
    """Median number of distinct blocks between consecutive uses of one.

    O(n log n)-ish stack-distance computation over block ids, sampled by
    ``stride`` for long traces.
    """
    last_position: dict[int, int] = {}
    distances: list[int] = []
    recent: list[int] = []  # access order of blocks
    for position, block in enumerate(blocks.tolist()):
        if block in last_position and position % stride == 0:
            # Distinct *other* blocks since the previous use.
            window = recent[last_position[block] + 1 :]
            distances.append(len(set(window)))
        last_position[block] = len(recent)
        recent.append(block)
    if len(distances) < max(2, len(blocks) // 50):
        return None
    return float(np.median(distances))


def access_count_histogram(
    trace: Trace, boundaries: tuple[int, ...] = (1, 8, 32)
) -> dict[int, int]:
    """Blocks per QAC-style bucket of whole-trace access counts.

    Bucket 0 is unused here (every counted block has >= 1 access); the
    shape of this histogram is what separates streaming programs (all
    mass in one bucket) from hot-set programs (heavy top bucket) — the
    signal MDM's predictor learns per program.
    """
    blocks = np.asarray(trace.lines) // LINES_PER_BLOCK
    counts = Counter(blocks.tolist())
    histogram = {value: 0 for value in range(1, len(boundaries) + 1)}
    for count in counts.values():
        bucket = 0
        for index, lower in enumerate(boundaries):
            if count >= lower:
                bucket = index + 1
        histogram[bucket] = histogram.get(bucket, 0) + 1
    return histogram
