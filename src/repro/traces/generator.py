"""Trace assembly: profile + scale + length -> :class:`repro.cpu.trace.Trace`.

Footprints scale by the same divisor as M1 capacity (``SystemConfig.scale``)
so footprint-to-M1 pressure matches the paper; instruction gaps are drawn
geometrically with mean 1000/MPKI.  Generation is deterministic in
(profile, requests, scale, seed) and memoized, so every policy comparison
replays byte-identical traces.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.common.errors import TraceError
from repro.common.rng import make_rng
from repro.common.units import MB
from repro.cpu.trace import Trace
from repro.traces.patterns import (
    ChaseComponent,
    HotSetComponent,
    PatternComponent,
    StreamComponent,
    LINES_PER_BLOCK,
)
from repro.traces.spec import ProgramProfile, profile as lookup_profile

#: Lines per 4-KB page.
LINES_PER_PAGE = 64

_COMPONENT_KINDS = {
    "stream": StreamComponent,
    "hot": HotSetComponent,
    "chase": ChaseComponent,
}


def footprint_pages(profile: ProgramProfile, scale: int) -> int:
    """Scaled footprint in 4-KB pages (>= 4 pages so traces stay valid)."""
    pages = int(round(profile.footprint_mb * MB / scale / 4096))
    return max(pages, 4)


def _build_components(
    profile: ProgramProfile, total_lines: int
) -> list[PatternComponent]:
    components: list[PatternComponent] = []
    cursor = 0
    shares = [spec.share for spec in profile.components]
    normalizer = sum(shares)
    for spec, share in zip(profile.components, shares):
        num_lines = int(total_lines * share / normalizer)
        num_lines -= num_lines % LINES_PER_BLOCK
        num_lines = max(num_lines, LINES_PER_BLOCK)
        if cursor + num_lines > total_lines:
            num_lines = total_lines - cursor
            num_lines -= num_lines % LINES_PER_BLOCK
        if num_lines < LINES_PER_BLOCK:
            raise TraceError(
                f"{profile.name}: footprint too small for its components; "
                "reduce scale"
            )
        factory = _COMPONENT_KINDS[spec.kind]
        components.append(
            factory(
                start_line=cursor,
                num_lines=num_lines,
                write_fraction=spec.write_fraction,
                **spec.params,
            )
        )
        cursor += num_lines
    return components


def synthesize_trace(
    program: str | ProgramProfile,
    num_requests: int,
    scale: int = 1,
    seed: int = 0,
) -> Trace:
    """Generate one program's main-memory trace.

    ``program`` may be a Table 9 name or a custom profile.  The result is
    memoized for name-based lookups (see :func:`cached_trace`).
    """
    if isinstance(program, str):
        return cached_trace(program, num_requests, scale, seed)
    return _synthesize(program, num_requests, scale, seed)


@lru_cache(maxsize=128)
def cached_trace(
    name: str, num_requests: int, scale: int, seed: int
) -> Trace:
    """Memoized trace synthesis for Table 9 programs."""
    return _synthesize(lookup_profile(name), num_requests, scale, seed)


def _synthesize(
    profile: ProgramProfile, num_requests: int, scale: int, seed: int
) -> Trace:
    if num_requests < 1:
        raise TraceError("num_requests must be >= 1")
    rng = make_rng(seed, "trace", profile.name, scale, num_requests)
    total_lines = footprint_pages(profile, scale) * LINES_PER_PAGE
    components = _build_components(profile, total_lines)
    weights = np.array([spec.weight for spec in profile.components])
    weights = weights / weights.sum()

    # Pick the component of every request up front (cheap, vectorized),
    # then let each component's state machine produce its accesses in
    # stream order — this preserves each component's internal locality
    # while interleaving them like a real instruction stream would.
    choices = rng.choice(len(components), size=num_requests, p=weights)
    mean_gap = max(1000.0 / profile.mpki - 1.0, 0.0)
    if mean_gap > 0:
        gaps = rng.geometric(1.0 / (mean_gap + 1.0), size=num_requests) - 1
    else:
        gaps = np.zeros(num_requests, dtype=np.int64)

    lines = np.empty(num_requests, dtype=np.int64)
    writes = np.empty(num_requests, dtype=bool)
    for index, component_index in enumerate(choices):
        line, is_write = components[component_index].next_access(rng)
        lines[index] = line
        writes[index] = is_write
    return Trace(gaps=gaps.astype(np.int64), lines=lines, writes=writes)
