"""Synthetic profiles of the ten SPEC CPU2006 programs of Table 9.

Each profile records the published MPKI and footprint and a mixture of
pattern components chosen from the programs' well-known memory
characterizations (Section 4.2 and the prefetching literature the paper
cites): mcf, omnetpp and libquantum are irregular/pointer-based (though
libquantum's actual stream is famously sequential over a tiny footprint),
soplex mixes regular and irregular accesses, lbm is a write-heavy stencil
stream, bwaves/GemsFDTD/leslie3d/milc/zeusmp are scientific codes with
varying stream/reuse blends.

``ComponentSpec`` weights are fractions of the program's accesses;
fractions of the footprint default to the same weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional
from repro.common.errors import InvalidValueError, UnknownNameError


@dataclass(frozen=True)
class ComponentSpec:
    """One mixture component of a program profile."""

    kind: str  # "stream" | "hot" | "chase"
    weight: float
    write_fraction: float
    #: Fraction of the footprint owned (defaults to ``weight``).
    footprint_share: Optional[float] = None
    #: Kind-specific tuning knobs (zipf_s, episode_length, window_blocks...).
    params: dict = field(default_factory=dict)

    @property
    def share(self) -> float:
        """Footprint share actually used."""
        return self.footprint_share if self.footprint_share is not None else self.weight


@dataclass(frozen=True)
class ProgramProfile:
    """Synthetic stand-in for one Table 9 program."""

    name: str
    mpki: float
    footprint_mb: float  # paper scale (Table 9)
    components: tuple[ComponentSpec, ...]

    def __post_init__(self) -> None:
        total_weight = sum(c.weight for c in self.components)
        if abs(total_weight - 1.0) > 1e-9:
            raise InvalidValueError(
                f"{self.name}: component weights sum to {total_weight}, not 1"
            )


def _stream(weight, wf, share=None, **params):
    return ComponentSpec("stream", weight, wf, share, params)


def _hot(weight, wf, share=None, **params):
    return ComponentSpec("hot", weight, wf, share, params)


def _chase(weight, wf, share=None, **params):
    return ComponentSpec("chase", weight, wf, share, params)


PROGRAM_PROFILES: dict[str, ProgramProfile] = {
    profile.name: profile
    for profile in (
        ProgramProfile(
            "bwaves",
            mpki=11,
            footprint_mb=265,
            components=(
                _stream(0.70, 0.30, num_streams=6),
                _hot(0.30, 0.20, zipf_s=0.8, episode_length=10),
            ),
        ),
        ProgramProfile(
            "GemsFDTD",
            mpki=16,
            footprint_mb=499,
            components=(
                _stream(0.65, 0.35, num_streams=8),
                _hot(0.35, 0.25, zipf_s=0.7, episode_length=8),
            ),
        ),
        ProgramProfile(
            "lbm",
            mpki=32,
            footprint_mb=402,
            components=(
                # Stencil sweep: read-modify-write over the whole lattice.
                _stream(0.85, 0.45, num_streams=10),
                _hot(0.15, 0.30, zipf_s=0.6, episode_length=6),
            ),
        ),
        ProgramProfile(
            "leslie3d",
            mpki=15,
            footprint_mb=76,
            components=(
                _stream(0.55, 0.35, num_streams=6),
                _hot(0.45, 0.25, zipf_s=0.9, episode_length=12),
            ),
        ),
        ProgramProfile(
            "libquantum",
            mpki=30,
            footprint_mb=32,
            components=(
                # One long vector swept over and over.
                _stream(1.00, 0.25, num_streams=2),
            ),
        ),
        ProgramProfile(
            "mcf",
            mpki=60,
            footprint_mb=525,
            components=(
                # Dominantly pointer chasing with a modest hot core.
                _chase(
                    0.75, 0.12, window_blocks=96, jump_probability=0.04,
                    episode_length=2,
                ),
                _hot(0.25, 0.20, share=0.10, zipf_s=1.1, episode_length=12),
            ),
        ),
        ProgramProfile(
            "milc",
            mpki=18,
            footprint_mb=547,
            components=(
                _stream(0.60, 0.30, num_streams=4),
                _chase(
                    0.40, 0.20, window_blocks=512, jump_probability=0.10,
                    episode_length=2,
                ),
            ),
        ),
        ProgramProfile(
            "omnetpp",
            mpki=19,
            footprint_mb=138,
            components=(
                # Very irregular event-queue walks: wide windows, frequent
                # jumps, single-touch visits (STC hit rate ~70%, Fig. 7).
                _chase(
                    0.85, 0.30, window_blocks=1024, jump_probability=0.20,
                    episode_length=1,
                ),
                _hot(0.15, 0.30, share=0.10, zipf_s=1.0, episode_length=8),
            ),
        ),
        ProgramProfile(
            "soplex",
            mpki=29,
            footprint_mb=241,
            components=(
                # Mixed regular/irregular (sparse LP matrices).
                _stream(0.45, 0.25, num_streams=4),
                _chase(
                    0.30, 0.20, window_blocks=256, jump_probability=0.08,
                    episode_length=2,
                ),
                _hot(0.25, 0.25, zipf_s=0.9, episode_length=10),
            ),
        ),
        ProgramProfile(
            "zeusmp",
            mpki=5,
            footprint_mb=112,
            components=(
                _hot(0.55, 0.25, zipf_s=0.9, episode_length=14),
                _stream(0.45, 0.30, num_streams=4),
            ),
        ),
    )
}


def profile(name: str) -> ProgramProfile:
    """Look up a Table 9 program profile by name."""
    try:
        return PROGRAM_PROFILES[name]
    except KeyError:
        raise UnknownNameError(
            f"unknown program {name!r}; choose from {sorted(PROGRAM_PROFILES)}"
        ) from None
