"""Batched trace decoding: numpy streams -> chunked Python-list views.

The core model consumes a trace one request at a time, millions of times
per simulation, so the *representation* it reads from decides the
interpreter cost per request.  Extracting numpy scalars element-wise is
an order of magnitude slower than list indexing, and the seed's fix —
materializing the whole trace as Python lists up front — paid a slow
per-element conversion loop at construction and held four full-length
lists of boxed objects alive for the entire run.

:class:`TraceDecoder` replaces both halves:

* **Vectorized decode.**  The gap stream is converted to a per-request
  *compute-cycle table* (``ceil(gap / issue_ipc)``) and a *retired
  prefix sum* (cumulative ``gap + 1``) with whole-array numpy
  arithmetic; lines and read/write flags are cast once.  No Python-level
  per-element work happens anywhere.
* **Chunked refill.**  Python-object views are materialized one chunk
  (default 64 Ki requests) at a time via C-level ``ndarray.tolist()``,
  so resident boxed objects stay bounded on arbitrarily long traces
  while the hot path keeps plain-list indexing speed.  Chunk 0 is cached
  because every workload-repetition pass (Section 4.2) restarts there.

Determinism: float64 division and ``ceil`` here are IEEE-identical to
the scalar ``math.ceil(gap / issue_ipc)`` the seed computed, and
``tolist()`` yields the same Python ints/bools as per-element ``int()``
/ ``bool()`` casts, so decoded simulations are byte-identical to the
golden blobs (DESIGN.md §12).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.common.errors import TraceError

if TYPE_CHECKING:
    from repro.cpu.trace import Trace

#: Default requests decoded per chunk.  64 Ki keeps every benchmark and
#: figure trace in a single chunk (refill never fires mid-pass) while
#: bounding resident boxed objects to a few MB on longer traces.
DEFAULT_CHUNK_REQUESTS = 65536


class DecodedChunk:
    """One contiguous slice of a trace, decoded to plain Python lists.

    ``cycles[i]``, ``lines[i]`` and ``writes[i]`` describe request
    ``start + i`` of the trace; ``retired_prefix`` has one extra leading
    element so ``retired_prefix[i]`` is the instructions retired by the
    first ``i`` requests of the chunk (``retired_prefix[length]`` is the
    whole chunk's total).
    """

    __slots__ = ("start", "length", "cycles", "lines", "writes", "retired_prefix")

    def __init__(
        self,
        start: int,
        cycles: list,
        lines: list,
        writes: list,
        retired_prefix: list,
    ) -> None:
        self.start = start
        self.length = len(cycles)
        self.cycles = cycles
        self.lines = lines
        self.writes = writes
        self.retired_prefix = retired_prefix


class TraceDecoder:
    """Decodes one trace into :class:`DecodedChunk` views for a core.

    The numpy tables (compute cycles, retired prefix, lines, writes) are
    formed once, vectorized; :meth:`chunk` materializes list views on
    demand.  A decoder is bound to one ``issue_ipc`` because the
    compute-cycle table depends on it.
    """

    __slots__ = (
        "issue_ipc",
        "chunk_requests",
        "num_requests",
        "num_chunks",
        "_cycles",
        "_lines",
        "_writes",
        "_retired_cum",
        "_first_chunk",
    )

    def __init__(
        self,
        trace: "Trace",
        issue_ipc: float,
        chunk_requests: int = DEFAULT_CHUNK_REQUESTS,
    ) -> None:
        if issue_ipc <= 0:
            raise TraceError("issue_ipc must be positive")
        if chunk_requests < 1:
            raise TraceError("chunk_requests must be >= 1")
        self.issue_ipc = issue_ipc
        self.chunk_requests = chunk_requests
        gaps = np.asarray(trace.gaps, dtype=np.int64)
        self._lines = np.asarray(trace.lines, dtype=np.int64)
        self._writes = np.asarray(trace.writes, dtype=bool)
        self.num_requests = len(gaps)
        if self.num_requests == 0:
            raise TraceError("cannot decode an empty trace")
        self.num_chunks = -(-self.num_requests // chunk_requests)
        # Compute-cycle table: identical to the scalar
        # ``math.ceil(gap / issue_ipc) if gap > 0 else 0`` — int64 ->
        # float64 conversion is exact for any realistic gap and the
        # float64 divide/ceil match Python's own bit for bit.
        self._cycles = np.ceil(gaps / issue_ipc).astype(np.int64)
        # Retired prefix: element i is the instructions retired once
        # requests 0..i have issued (each retires its gap + itself).
        self._retired_cum = np.cumsum(gaps + 1)
        self._first_chunk: Optional[DecodedChunk] = None

    def chunk(self, index: int) -> DecodedChunk:
        """Materialize (or return the cached) chunk ``index``."""
        if index == 0 and self._first_chunk is not None:
            return self._first_chunk
        if not 0 <= index < self.num_chunks:
            raise TraceError(
                f"chunk index {index} out of range 0..{self.num_chunks - 1}"
            )
        start = index * self.chunk_requests
        end = min(start + self.chunk_requests, self.num_requests)
        retired_base = int(self._retired_cum[start - 1]) if start else 0
        prefix = (self._retired_cum[start:end] - retired_base).tolist()
        prefix.insert(0, 0)
        chunk = DecodedChunk(
            start=start,
            cycles=self._cycles[start:end].tolist(),
            lines=self._lines[start:end].tolist(),
            writes=self._writes[start:end].tolist(),
            retired_prefix=prefix,
        )
        if index == 0:
            # Every replay pass restarts at chunk 0: keep it resident so
            # workload repetition never re-decodes.
            self._first_chunk = chunk
        return chunk

    @property
    def total_instructions(self) -> int:
        """Instructions retired by one full pass of the trace."""
        return int(self._retired_cum[-1])
