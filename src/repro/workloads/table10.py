"""The 19 multiprogrammed workloads of Table 10 (verbatim from the paper).

Duplicate entries (e.g. lbm twice in w03) are distinct program instances:
each runs on its own core, with its own private region, page frames, and
an independently seeded trace.
"""

from __future__ import annotations
from repro.common.errors import UnknownNameError

WORKLOADS: dict[str, tuple[str, str, str, str]] = {
    "w01": ("mcf", "libquantum", "leslie3d", "lbm"),
    "w02": ("soplex", "GemsFDTD", "omnetpp", "zeusmp"),
    "w03": ("milc", "bwaves", "lbm", "lbm"),
    "w04": ("libquantum", "bwaves", "leslie3d", "omnetpp"),
    "w05": ("mcf", "bwaves", "zeusmp", "GemsFDTD"),
    "w06": ("soplex", "libquantum", "lbm", "omnetpp"),
    "w07": ("milc", "GemsFDTD", "bwaves", "leslie3d"),
    "w08": ("soplex", "leslie3d", "lbm", "zeusmp"),
    "w09": ("mcf", "soplex", "lbm", "GemsFDTD"),
    "w10": ("libquantum", "leslie3d", "omnetpp", "zeusmp"),
    "w11": ("soplex", "bwaves", "lbm", "libquantum"),
    "w12": ("milc", "GemsFDTD", "soplex", "lbm"),
    "w13": ("mcf", "soplex", "bwaves", "zeusmp"),
    "w14": ("GemsFDTD", "soplex", "omnetpp", "libquantum"),
    "w15": ("leslie3d", "omnetpp", "lbm", "zeusmp"),
    "w16": ("libquantum", "libquantum", "bwaves", "zeusmp"),
    "w17": ("mcf", "mcf", "omnetpp", "leslie3d"),
    "w18": ("mcf", "milc", "milc", "GemsFDTD"),
    "w19": ("milc", "libquantum", "omnetpp", "leslie3d"),
}

#: Workload names in order.
WORKLOAD_NAMES: tuple[str, ...] = tuple(sorted(WORKLOADS))

#: The three workloads Figures 2 and 16 detail.
FAIRNESS_DETAIL_WORKLOADS: tuple[str, ...] = ("w09", "w16", "w19")


def workload(name: str) -> tuple[str, str, str, str]:
    """Look up a Table 10 workload by name (e.g. ``"w09"``)."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise UnknownNameError(
            f"unknown workload {name!r}; choose from {WORKLOAD_NAMES}"
        ) from None
