"""Workload definitions: the Table 9 program set and Table 10 mixes."""

from repro.workloads.table9 import PROGRAMS
from repro.workloads.table10 import WORKLOADS, workload
from repro.workloads.generator import random_mix, random_mixes

__all__ = ["PROGRAMS", "WORKLOADS", "random_mix", "random_mixes", "workload"]
