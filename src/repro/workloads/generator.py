"""Random multiprogrammed-workload generation.

Table 10's mixes were hand-composed "diverse multiprogrammed workloads";
this module generates further mixes with controlled diversity so the
robustness of a policy comparison can be checked beyond the paper's 19
(see the ``ext-random-mixes`` experiment).  Mixes are sampled by memory-
intensity class so each workload mixes heavy and light programs the way
Table 10 does, and generation is deterministic in the seed.
"""

from __future__ import annotations

from repro.common.rng import make_rng
from repro.traces.spec import PROGRAM_PROFILES
from repro.common.errors import InvalidValueError

#: Intensity classes by Table 9 MPKI: heavy (>= 25), medium, light (< 12).
HEAVY = tuple(
    sorted(n for n, p in PROGRAM_PROFILES.items() if p.mpki >= 25)
)
MEDIUM = tuple(
    sorted(n for n, p in PROGRAM_PROFILES.items() if 12 <= p.mpki < 25)
)
LIGHT = tuple(
    sorted(n for n, p in PROGRAM_PROFILES.items() if p.mpki < 12)
)


def random_mix(
    seed: int,
    index: int = 0,
    size: int = 4,
    allow_duplicates: bool = True,
) -> tuple[str, ...]:
    """One random mix of ``size`` programs.

    At least one heavy and one non-heavy program are included (so there
    is always competition for M1 and always asymmetry for RSM to see),
    mirroring Table 10's composition style.
    """
    if size < 2:
        raise InvalidValueError("a mix needs at least two programs")
    rng = make_rng(seed, "workload-mix", index, size)
    chosen = [
        str(rng.choice(HEAVY)),
        str(rng.choice(MEDIUM + LIGHT)),
    ]
    everyone = tuple(PROGRAM_PROFILES)
    while len(chosen) < size:
        candidate = str(rng.choice(everyone))
        if not allow_duplicates and candidate in chosen:
            continue
        chosen.append(candidate)
    order = rng.permutation(len(chosen))
    return tuple(chosen[i] for i in order)


def random_mixes(
    seed: int, count: int, size: int = 4
) -> dict[str, tuple[str, ...]]:
    """``count`` named random mixes (r01, r02, ...)."""
    return {
        f"r{index + 1:02d}": random_mix(seed, index, size)
        for index in range(count)
    }
