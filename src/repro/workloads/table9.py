"""The individual-program set of Table 9 (SPEC CPU2006 selections)."""

from __future__ import annotations

from repro.traces.spec import PROGRAM_PROFILES

#: Table 9 program names in the paper's order.
PROGRAMS: tuple[str, ...] = (
    "bwaves",
    "GemsFDTD",
    "lbm",
    "leslie3d",
    "libquantum",
    "mcf",
    "milc",
    "omnetpp",
    "soplex",
    "zeusmp",
)

#: Programs used in Figure 5 (libquantum is omitted there: its 32-MB
#: footprint fits entirely in M1, Section 5.1).
FIG5_PROGRAMS: tuple[str, ...] = tuple(
    name for name in PROGRAMS if name != "libquantum"
)

assert set(PROGRAMS) == set(PROGRAM_PROFILES), "profiles must cover Table 9"
