"""MemPod-style migration: interval-based Majority Element Algorithm.

Table 2 / Section 4.1: MemPod tracks hot M2 blocks with MEA counters
(Karp et al.) and migrates up to 64 tracked blocks at the end of every
50-microsecond interval — here one "pod" per channel-pair is collapsed
into a single tracker, with the counter budget and migration cap of the
paper's best-found configuration (128 counters, 64 migrations, writes
counted once).

Migrations are batched: at each interval boundary, tracked blocks are
promoted in descending counter order (skipping blocks that have already
reached M1), and the counters clear.  Interval boundaries are detected
lazily on the next access, which is exact enough at the paper's request
rates and keeps the policy free of timer plumbing.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import SystemConfig
from repro.common.units import cpu_cycles_from_ns
from repro.policies.base import AccessContext, MigrationPolicy
from repro.policies.registry import register_policy


class MEATracker:
    """Majority Element Algorithm over block numbers with a counter budget."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.counters: dict[int, int] = {}

    def observe(self, block: int, weight: int = 1) -> None:
        """Standard MEA update: insert, increment, or decrement-all."""
        counters = self.counters
        if block in counters:
            counters[block] += weight
        elif len(counters) < self.capacity:
            counters[block] = weight
        else:
            # Decrement all; evict the ones that reach zero.
            dead = []
            for key in counters:
                counters[key] -= weight
                if counters[key] <= 0:
                    dead.append(key)
            for key in dead:
                del counters[key]

    def hottest(self, limit: int) -> list[int]:
        """Up to ``limit`` tracked blocks, hottest first."""
        ranked = sorted(
            self.counters.items(), key=lambda item: item[1], reverse=True
        )
        return [block for block, _count in ranked[:limit]]

    def clear(self) -> None:
        """Reset for the next interval."""
        self.counters.clear()


@register_policy("mempod")
class MemPodPolicy(MigrationPolicy):
    """MEA-driven batched promotions every 50 microseconds."""

    name = "mempod"
    #: MemPod performs best counting each write as one access (Sec. 4.1).
    write_weight = 1

    def __init__(self, config: SystemConfig) -> None:
        super().__init__(config)
        self._mempod = config.mempod
        self._tracker = MEATracker(config.mempod.mea_counters)
        self._interval_cycles = cpu_cycles_from_ns(
            config.mempod.interval_us * 1000.0
        )
        self._next_interval = self._interval_cycles
        #: Promotions the controller should apply (drained by on_access).
        self.migrations_performed = 0
        self.intervals = 0
        self._pending: list[int] = []

    def on_access(self, ctx: AccessContext) -> Optional[int]:
        if ctx.now >= self._next_interval:
            self._roll_interval(ctx.now)
        if not ctx.in_m1:
            map_ = self._controller.address_map if self._controller else None
            block = (
                map_.block_of(ctx.group, ctx.slot)
                if map_ is not None
                else ctx.group * ctx.st_entry.group_size + ctx.slot
            )
            self._tracker.observe(block, self.access_weight(ctx.is_write))
        # Apply at most one queued batched promotion per access so channel
        # blocking interleaves with demand traffic, as pods do in hardware.
        if self._pending and self._controller is not None:
            block = self._pending.pop()
            slot, group = self._locate(block)
            if slot is not None:
                self.migrations_performed += 1
                self._controller.request_promotion(group, slot)
        return None

    def _locate(self, block: int) -> tuple[Optional[int], int]:
        """Return (slot, group) if the block is still in M2, else (None, g)."""
        map_ = self._controller.address_map
        group = map_.group_of_block(block)
        slot = map_.slot_of_block(block)
        st_entry = self._controller.st.entry(group)
        if st_entry.location_of(slot) == 0:
            return None, group
        return slot, group

    def _roll_interval(self, now: int) -> None:
        self.intervals += 1
        batch = self._tracker.hottest(
            self._mempod.max_migrations_per_interval
        )
        self._pending = list(reversed(batch))  # hottest popped first
        self._tracker.clear()
        while self._next_interval <= now:
            self._next_interval += self._interval_cycles
