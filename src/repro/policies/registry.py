"""The composable policy registry: specs, registration, and the factory.

The paper's Section 6 observes that RSM guidance composes with migration
algorithms other than MDM; this module makes every such composition axis
an explicit, sweepable coordinate instead of a hard-coded name:

* **base** — the migration algorithm (``pom``, ``mdm``, ``cameo``, ...).
* **guidance** — RSM fairness guidance on top of the base (Table 7).
* **swap_style** — ``fast`` / ``slow`` / ``smart`` / ``noswap``
  (Table 1 nomenclature plus extensions; see
  :data:`repro.common.config.SWAP_STYLES`).
* **bypass_rate** — probability of dropping a decided promotion, drawn
  from the seeded ``migration-bypass`` substream (a probabilistic
  hedge against pathological swap storms).
* **stc_replacement** — replacement policy of the Swap-group Table
  Cache (:data:`repro.common.config.STC_REPLACEMENTS`).

A :class:`PolicySpec` is the frozen, hashable value of those axes.  The
text form composes with ``+``::

    mdm+rsm+bypass:0.05+stc:lfu

Policy classes register themselves with :func:`register_policy`;
:func:`build_policy` replaces the old ``make_policy`` name-to-constructor
mapping and is the ONLY sanctioned way to construct a policy outside
``repro.policies`` / ``repro.core`` (lint rule C305 enforces this).

Canonicalization keeps cache keys stable and deduplicated: a spec whose
axes match a registered name exactly renders back to that name
(``mdm+rsm`` -> ``profess``), so pre-redesign :class:`~repro.exec.spec.
RunSpec` cache keys for plain policy names are untouched, and equivalent
spellings of one composition share a single cached result.
"""

from __future__ import annotations

import importlib
from dataclasses import asdict, dataclass, fields
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple, Union

from repro.common.config import (
    STC_REPLACEMENTS,
    SWAP_STYLES,
    SystemConfig,
)
from repro.common.errors import PolicySpecError, UnknownPolicyError
from repro.common.serialize import canonical_digest

if TYPE_CHECKING:
    from repro.policies.base import MigrationPolicy


@dataclass(frozen=True)
class PolicySpec:
    """One point in the policy composition space (frozen, hashable).

    Axis defaults mean "inherit": an empty ``swap_style`` /
    ``stc_replacement`` resolves through :class:`~repro.common.config.
    PolicyAxesConfig` to the policy class's own default, and a zero
    ``bypass_rate`` disables the probabilistic bypass.
    """

    #: Base migration algorithm (a non-guided registered name).
    base: str
    #: RSM fairness guidance on top of the base (Table 7 cases).
    guidance: bool = False
    #: "" = inherit; otherwise one of :data:`SWAP_STYLES`.
    swap_style: str = ""
    #: Probability of dropping a decided promotion (0 = off).
    bypass_rate: float = 0.0
    #: "" = inherit; otherwise one of :data:`STC_REPLACEMENTS`.
    stc_replacement: str = ""

    def __post_init__(self) -> None:
        if not self.base or self.base != self.base.lower():
            raise PolicySpecError(
                f"base must be a lowercase policy name, got {self.base!r}"
            )
        if self.swap_style and self.swap_style not in SWAP_STYLES:
            raise PolicySpecError(
                f"swap_style must be one of {SWAP_STYLES}, "
                f"got {self.swap_style!r}"
            )
        if not 0.0 <= self.bypass_rate < 1.0:
            raise PolicySpecError(
                f"bypass_rate must be in [0, 1), got {self.bypass_rate!r}"
            )
        if (
            self.stc_replacement
            and self.stc_replacement not in STC_REPLACEMENTS
        ):
            raise PolicySpecError(
                f"stc_replacement must be one of {STC_REPLACEMENTS}, "
                f"got {self.stc_replacement!r}"
            )

    # ------------------------------------------------------------------
    # Text form
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "PolicySpec":
        """Parse a ``base[+rsm][+swap:S][+bypass:R][+stc:X]`` string.

        The first token must be a registered policy name (a base
        algorithm, or a registered composition like ``profess``, which
        expands to its base + guidance).  Axis tokens may appear in any
        order; repeating an axis is an error.
        """
        tokens = [token.strip() for token in text.lower().split("+")]
        if not tokens or not tokens[0]:
            raise PolicySpecError(f"empty policy spec {text!r}")
        _ensure_loaded()
        head = _REGISTRY.get(tokens[0])
        if head is None:
            raise UnknownPolicyError(tokens[0], registry_names())
        base = head.base
        guidance = head.guidance
        seen: set[str] = set()
        swap_style = ""
        bypass_rate = 0.0
        stc_replacement = ""
        for token in tokens[1:]:
            axis, _, value = token.partition(":")
            if axis in seen:
                raise PolicySpecError(
                    f"duplicate axis {axis!r} in policy spec {text!r}"
                )
            seen.add(axis)
            if token == "rsm":
                guidance = True
            elif axis == "swap" and value:
                swap_style = value
            elif axis == "bypass" and value:
                try:
                    bypass_rate = float(value)
                except ValueError:
                    raise PolicySpecError(
                        f"bypass rate {value!r} is not a number "
                        f"(in policy spec {text!r})"
                    ) from None
            elif axis == "stc" and value:
                stc_replacement = value
            else:
                raise PolicySpecError(
                    f"unknown axis token {token!r} in policy spec {text!r}; "
                    "expected rsm, swap:STYLE, bypass:RATE, or stc:POLICY"
                )
        return cls(
            base=base,
            guidance=guidance,
            swap_style=swap_style,
            bypass_rate=bypass_rate,
            stc_replacement=stc_replacement,
        )

    def canonical(self) -> str:
        """The canonical text form (stable: feeds cache keys and labels).

        The (base, guidance) pair renders as its registered name when
        one exists (``mdm`` + guidance -> ``profess``), so a spec with
        default axes round-trips to exactly the legacy policy name and
        pre-redesign cache keys are preserved.
        """
        _ensure_loaded()
        registered = _BY_AXES.get((self.base, self.guidance))
        head = registered.name if registered is not None else self.base
        parts = [head]
        if registered is None and self.guidance:
            # No registered guided implementation: keep the axis visible
            # (build_policy rejects it with a better message).
            parts.append("rsm")
        if self.swap_style:
            parts.append(f"swap:{self.swap_style}")
        if self.bypass_rate > 0.0:
            parts.append(f"bypass:{self.bypass_rate:g}")
        if self.stc_replacement:
            parts.append(f"stc:{self.stc_replacement}")
        return "+".join(parts)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (JSON-ready)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "PolicySpec":
        """Inverse of :meth:`to_dict`; rejects unknown keys."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise PolicySpecError(
                f"unknown PolicySpec fields {unknown}; known: {sorted(known)}"
            )
        return cls(**payload)  # type: ignore[arg-type]

    def cache_token(self) -> str:
        """Stable content hash of the spec (axis values only)."""
        return canonical_digest(self)


@dataclass(frozen=True)
class RegisteredPolicy:
    """One registry entry: a name bound to a policy class and its axes."""

    name: str
    cls: type
    #: Base algorithm this class implements (== name for plain bases).
    base: str
    #: True when the class applies RSM guidance on top of the base.
    guidance: bool
    #: One-line description (defaults to the class docstring's first line).
    description: str


_REGISTRY: Dict[str, RegisteredPolicy] = {}
_BY_AXES: Dict[Tuple[str, bool], RegisteredPolicy] = {}
_LOADED = False

#: Modules whose import populates the registry, in registration order.
_POLICY_MODULES = (
    "repro.policies.static",
    "repro.policies.cameo",
    "repro.policies.pom",
    "repro.policies.silcfm",
    "repro.policies.mempod",
    "repro.core.mdm",
    "repro.core.profess",
    "repro.core.rsm_guided",
)


def register_policy(
    name: str,
    *,
    base: Optional[str] = None,
    guidance: bool = False,
    description: Optional[str] = None,
):
    """Class decorator registering a :class:`MigrationPolicy` subclass.

    ``name`` is the canonical registry name; ``base`` names the
    underlying algorithm when the class is a guided composition (e.g.
    ProFess registers as ``name="profess", base="mdm", guidance=True``).
    """

    def _register(cls: type) -> type:
        existing = _REGISTRY.get(name)
        if existing is not None and existing.cls is not cls:
            raise PolicySpecError(
                f"policy name {name!r} already registered to "
                f"{existing.cls.__name__}"
            )
        doc = (cls.__doc__ or "").strip().splitlines()
        entry = RegisteredPolicy(
            name=name,
            cls=cls,
            base=base or name,
            guidance=guidance,
            description=description or (doc[0] if doc else ""),
        )
        _REGISTRY[name] = entry
        _BY_AXES[(entry.base, entry.guidance)] = entry
        return cls

    return _register


def _ensure_loaded() -> None:
    """Import every policy module once so decorators have run."""
    global _LOADED
    if _LOADED:
        return
    _LOADED = True
    for module in _POLICY_MODULES:
        importlib.import_module(module)


def iter_registered() -> Iterator[RegisteredPolicy]:
    """Registered policies, in registration order."""
    _ensure_loaded()
    return iter(list(_REGISTRY.values()))


def registry_names() -> List[str]:
    """Sorted registered policy names (error messages, CLI listings)."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def guided_bases() -> List[str]:
    """Base names for which a guided (RSM) implementation exists."""
    _ensure_loaded()
    return sorted(
        entry.base for entry in _REGISTRY.values() if entry.guidance
    )


def canonical_policy(text: str) -> str:
    """Canonical spec string for any accepted policy spelling.

    Legacy names map to themselves (``"profess"`` -> ``"profess"``);
    equivalent compositions collapse (``"mdm+rsm"`` -> ``"profess"``).
    """
    return PolicySpec.parse(text).canonical()


def resolve_spec(spec: Union[str, PolicySpec]) -> PolicySpec:
    """Coerce a spec string or PolicySpec into a validated PolicySpec."""
    if isinstance(spec, PolicySpec):
        return spec
    return PolicySpec.parse(spec)


def build_policy(
    spec: Union[str, PolicySpec],
    config: SystemConfig,
    **kwargs: object,
) -> "MigrationPolicy":
    """Construct the policy a spec describes, with axes resolved.

    Axis resolution order (most specific wins): the spec's explicit
    value, then the config-level default (``config.axes``), then the
    policy class's own default.  The returned instance carries the
    resolved ``swap_style`` / ``bypass_rate`` / ``stc_replacement``
    attributes (read by the memory controller) and its ``name`` is the
    spec's canonical string, so results label themselves unambiguously.

    Extra keyword arguments pass through to the class constructor
    (e.g. ``build_policy("mdm", config, record_predictions=True)``).
    """
    spec = resolve_spec(spec)
    _ensure_loaded()
    entry = _BY_AXES.get((spec.base, spec.guidance))
    if entry is None:
        if spec.guidance:
            raise PolicySpecError(
                f"RSM guidance is not implemented for base {spec.base!r}; "
                f"guided bases: {guided_bases()}"
            )
        raise UnknownPolicyError(spec.base, registry_names())
    policy = entry.cls(config, **kwargs)
    axes = config.axes
    policy.swap_style = (
        spec.swap_style or axes.swap_style or type(policy).swap_style
    )
    policy.bypass_rate = (
        spec.bypass_rate if spec.bypass_rate > 0.0 else axes.bypass_rate
    )
    policy.stc_replacement = (
        spec.stc_replacement
        or axes.stc_replacement
        or type(policy).stc_replacement
    )
    policy.name = spec.canonical()
    return policy
