"""PoM migration algorithm: competing counters with an epoch-adaptive
global threshold (Table 2, Section 4.1) — the paper's baseline.

Mechanism
---------
Each swap group has one *competing counter* tracking the most active M2
block (a single-entry majority-element automaton): accesses to the
candidate increase the counter, accesses to other M2 blocks decrease it
(replacing the candidate when it reaches zero), and accesses to the M1
resident decrease it.  When the counter reaches the current global
threshold, the candidate is promoted.

Adaptation
----------
Each epoch, PoM estimates the benefit of every candidate threshold
{1, 6, 18, 48} on a sampled subset of swap groups: per sampled group and
threshold, a shadow automaton replays the accesses and accrues
``+weight`` for every access that would have been served from M1 after a
shadow promotion and ``-K`` for every shadow swap.  At the epoch boundary
the best-estimated threshold wins; if none is positive, swaps are
prohibited for the next epoch (Section 2.5).  Writes count as
``write_access_weight`` accesses (Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.config import SystemConfig
from repro.policies.base import AccessContext, MigrationPolicy
from repro.policies.registry import register_policy

#: One in this many groups feeds the shadow threshold estimators.
SAMPLE_STRIDE = 16


@dataclass
class CompetingCounter:
    """Per-group majority-element automaton over M2 slots."""

    candidate: int = -1
    value: int = 0

    def observe_m2(self, slot: int, weight: int, maximum: int) -> None:
        """Account an access to an M2 block."""
        if self.candidate == slot:
            self.value = min(self.value + weight, maximum)
        else:
            self.value -= weight
            if self.value <= 0:
                self.candidate = slot
                self.value = min(weight, maximum)

    def observe_m1(self, weight: int) -> None:
        """Account an access to the group's M1 resident."""
        self.value = max(self.value - weight, 0)

    def reset(self) -> None:
        """Clear after a swap."""
        self.candidate = -1
        self.value = 0


@dataclass
class ShadowState:
    """Shadow automaton state for one (sampled group, threshold) pair."""

    counter: CompetingCounter = field(default_factory=CompetingCounter)
    #: Slot currently in shadow M1; -1 means "the real M1 resident".
    promoted_slot: int = -1


@register_policy("pom")
class PoMPolicy(MigrationPolicy):
    """Competing counters + epoch-adaptive global threshold."""

    name = "pom"

    def __init__(self, config: SystemConfig) -> None:
        super().__init__(config)
        self.write_weight = config.write_access_weight
        self._pom = config.pom
        self._counters: dict[int, CompetingCounter] = {}
        self._shadows: dict[int, list[ShadowState]] = {}
        self._benefits = [0.0] * len(self._pom.thresholds)
        # Smoothed per-threshold benefit: one epoch of shadow sampling is
        # noisy (it observes ~1/SAMPLE_STRIDE of the groups), so the
        # epoch decision uses an exponentially weighted average, which
        # keeps the global threshold from oscillating between "prohibit"
        # and "promote everything" on phase noise.
        self._smoothed_benefits = [0.0] * len(self._pom.thresholds)
        self.threshold: Optional[int] = self._pom.thresholds[0]
        self._requests_in_epoch = 0
        self.epochs = 0
        self.prohibited_epochs = 0
        self.threshold_history: list[Optional[int]] = []

    # ------------------------------------------------------------------
    def _counter_for(self, group: int) -> CompetingCounter:
        counter = self._counters.get(group)
        if counter is None:
            counter = CompetingCounter()
            self._counters[group] = counter
        return counter

    def _shadows_for(self, group: int) -> list[ShadowState]:
        shadows = self._shadows.get(group)
        if shadows is None:
            shadows = [ShadowState() for _ in self._pom.thresholds]
            self._shadows[group] = shadows
        return shadows

    # ------------------------------------------------------------------
    def on_access(self, ctx: AccessContext) -> Optional[int]:
        weight = self.access_weight(ctx.is_write)
        counter = self._counter_for(ctx.group)
        decision: Optional[int] = None
        if ctx.in_m1:
            counter.observe_m1(weight)
        else:
            counter.observe_m2(ctx.slot, weight, self._pom.counter_max)
            if (
                self.threshold is not None
                and counter.candidate == ctx.slot
                and counter.value >= self.threshold
            ):
                decision = ctx.slot
        if ctx.group % SAMPLE_STRIDE == 0:
            self._update_shadows(ctx, weight)
        self._requests_in_epoch += 1
        if self._requests_in_epoch >= self._pom.epoch_requests:
            self._end_epoch()
        return decision

    def on_swap(self, group: int, promoted_slot: int, demoted_slot: int) -> None:
        self._counter_for(group).reset()

    # ------------------------------------------------------------------
    def _update_shadows(self, ctx: AccessContext, weight: int) -> None:
        """Replay the access in each threshold's shadow automaton."""
        k = self._pom.k
        for index, threshold in enumerate(self._pom.thresholds):
            shadow = self._shadows_for(ctx.group)[index]
            if ctx.slot == shadow.promoted_slot:
                # Would have been an M1 hit after the shadow promotion;
                # the real access was served from wherever it really is.
                if not ctx.in_m1:
                    self._benefits[index] += weight
                shadow.counter.observe_m1(weight)
                continue
            if ctx.in_m1 and shadow.promoted_slot == -1:
                shadow.counter.observe_m1(weight)
                continue
            # Either a real M2 access, or an access to the real M1
            # resident after a shadow promotion displaced it: both are M2
            # accesses in the shadow organization.
            if ctx.in_m1 and shadow.promoted_slot != -1:
                self._benefits[index] -= weight
            shadow.counter.observe_m2(ctx.slot, weight, self._pom.counter_max)
            if (
                shadow.counter.candidate == ctx.slot
                and shadow.counter.value >= threshold
            ):
                shadow.promoted_slot = ctx.slot
                shadow.counter.reset()
                self._benefits[index] -= k

    #: EWMA weight of the newest epoch's shadow benefit estimate.
    BENEFIT_ALPHA = 0.5

    def _end_epoch(self) -> None:
        """Pick next epoch's threshold (or prohibit) from shadow benefits."""
        self.epochs += 1
        self._requests_in_epoch = 0
        for index, benefit in enumerate(self._benefits):
            self._smoothed_benefits[index] += self.BENEFIT_ALPHA * (
                benefit - self._smoothed_benefits[index]
            )
        best_index = max(
            range(len(self._smoothed_benefits)),
            key=lambda i: self._smoothed_benefits[i],
        )
        if self._smoothed_benefits[best_index] > 0:
            self.threshold = self._pom.thresholds[best_index]
        else:
            self.threshold = None
            self.prohibited_epochs += 1
        self.threshold_history.append(self.threshold)
        self._benefits = [0.0] * len(self._pom.thresholds)
        self._shadows.clear()
