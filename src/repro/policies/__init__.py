"""Migration policies: the four baselines of Table 2 plus a no-migration
policy.  The paper's own policies (MDM, ProFess) live in :mod:`repro.core`
but implement the same :class:`~repro.policies.base.MigrationPolicy`
interface, so every scheme runs on the identical organization — the
methodological point of Section 2.3."""

from repro.policies.base import AccessContext, MigrationPolicy
from repro.policies.static import StaticPolicy
from repro.policies.cameo import CameoPolicy
from repro.policies.pom import PoMPolicy
from repro.policies.silcfm import SilcFMPolicy
from repro.policies.mempod import MemPodPolicy
from repro.common.errors import InvalidValueError

__all__ = [
    "AccessContext",
    "CameoPolicy",
    "MemPodPolicy",
    "MigrationPolicy",
    "PoMPolicy",
    "SilcFMPolicy",
    "StaticPolicy",
]


def make_policy(name: str, config) -> MigrationPolicy:
    """Factory for policies by canonical name (baselines and paper schemes).

    Recognized names: ``static``, ``cameo``, ``pom``, ``silcfm``,
    ``mempod``, ``mdm``, ``profess``, and the extension ``rsm-pom``
    (RSM guidance wrapped around PoM, Section 6's suggestion).
    """
    from repro.core.mdm import MDMPolicy
    from repro.core.profess import ProFessPolicy
    from repro.core.rsm_guided import RSMGuidedPoMPolicy

    factories = {
        "static": StaticPolicy,
        "cameo": CameoPolicy,
        "pom": PoMPolicy,
        "silcfm": SilcFMPolicy,
        "mempod": MemPodPolicy,
        "mdm": MDMPolicy,
        "profess": ProFessPolicy,
        "rsm-pom": RSMGuidedPoMPolicy,
    }
    try:
        factory = factories[name.lower()]
    except KeyError:
        raise InvalidValueError(
            f"unknown policy {name!r}; choose from {sorted(factories)}"
        ) from None
    return factory(config)
