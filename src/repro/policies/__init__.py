"""Migration policies: the four baselines of Table 2 plus a no-migration
policy.  The paper's own policies (MDM, ProFess) live in :mod:`repro.core`
but implement the same :class:`~repro.policies.base.MigrationPolicy`
interface, so every scheme runs on the identical organization — the
methodological point of Section 2.3.

Construction goes through the composable registry
(:mod:`repro.policies.registry`)::

    from repro.policies import build_policy
    policy = build_policy("mdm+rsm+stc:lfu", config)

Importing the concrete policy classes from this package
(``from repro.policies import PoMPolicy``) is deprecated: it bypasses
axis resolution and canonical naming.  The classes remain importable
from their defining modules for subclassing.
"""

import importlib
import warnings

from repro.policies.base import AccessContext, MigrationPolicy
from repro.policies.registry import (
    PolicySpec,
    RegisteredPolicy,
    build_policy,
    canonical_policy,
    guided_bases,
    iter_registered,
    register_policy,
    registry_names,
)

__all__ = [
    "AccessContext",
    "MigrationPolicy",
    "PolicySpec",
    "RegisteredPolicy",
    "build_policy",
    "canonical_policy",
    "guided_bases",
    "iter_registered",
    "make_policy",
    "register_policy",
    "registry_names",
]

#: Deprecated class re-exports -> defining module (one release of
#: back-compat; the ``__getattr__`` shim below warns on use).
_DEPRECATED_CLASSES = {
    "StaticPolicy": "repro.policies.static",
    "CameoPolicy": "repro.policies.cameo",
    "PoMPolicy": "repro.policies.pom",
    "SilcFMPolicy": "repro.policies.silcfm",
    "MemPodPolicy": "repro.policies.mempod",
}


def __getattr__(name: str):
    target = _DEPRECATED_CLASSES.get(name)
    if target is None:
        # Module attribute protocol: must be AttributeError.
        raise AttributeError(  # repro: noqa[C303]
            f"module {__name__!r} has no attribute {name!r}"
        )
    warnings.warn(
        f"importing {name} from repro.policies is deprecated; construct "
        f"policies with repro.policies.build_policy(spec, config), or "
        f"import the class from {target} for subclassing",
        DeprecationWarning,
        stacklevel=2,
    )
    return getattr(importlib.import_module(target), name)


def make_policy(name: str, config) -> MigrationPolicy:
    """Deprecated name-based factory; use :func:`build_policy`.

    Accepts every spelling :meth:`~repro.policies.registry.PolicySpec.
    parse` does (legacy names included) and delegates to the registry.
    """
    warnings.warn(
        "make_policy is deprecated; use repro.policies.build_policy "
        "(accepts composable specs like 'mdm+rsm+stc:lfu')",
        DeprecationWarning,
        stacklevel=2,
    )
    return build_policy(name, config)
