"""No-migration policy: data stays where the OS allocated it.

Used as a sanity baseline in tests and examples — any reasonable migration
algorithm should beat it on M1-starved workloads, and it bounds the cost
side (zero swaps) for ablations.
"""

from __future__ import annotations

from typing import Optional

from repro.policies.base import AccessContext, MigrationPolicy
from repro.policies.registry import register_policy


@register_policy("static")
class StaticPolicy(MigrationPolicy):
    """Never migrate anything."""

    name = "static"

    def on_access(self, ctx: AccessContext) -> Optional[int]:
        return None
