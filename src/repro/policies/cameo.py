"""CAMEO-style migration: promote on first access (Table 2).

CAMEO uses a global threshold of one access — every M2 access triggers a
swap with the group's M1 resident.  The original proposal operates on 64-B
blocks in a 1:3 organization; here it runs on the common PoM organization
(Section 2.3 argues address-mapping choices are orthogonal to migration
algorithms), which isolates exactly the property the paper criticizes:
swapping two ping-ponging blocks on every access.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import SystemConfig
from repro.policies.base import AccessContext, MigrationPolicy
from repro.policies.registry import register_policy


@register_policy("cameo")
class CameoPolicy(MigrationPolicy):
    """Global threshold of one access."""

    name = "cameo"

    def __init__(self, config: SystemConfig) -> None:
        super().__init__(config)
        self._threshold = config.cameo.threshold

    def on_access(self, ctx: AccessContext) -> Optional[int]:
        if ctx.in_m1:
            return None
        if ctx.stc_entry.count(ctx.slot) >= self._threshold:
            return ctx.slot
        return None
