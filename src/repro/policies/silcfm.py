"""SILC-FM-style migration, simplified to the common organization.

Table 2 summarizes SILC-FM's migration condition: a global threshold of
one access, plus *locking*: a block whose aging access counter exceeds 50
is locked in M1 and protected from being swapped out.  The original
proposal's set-associative mapping and sub-block interleaving are
address-mapping relaxations, which Section 2.3 argues are orthogonal to
the migration decision itself; running the condition on the PoM
organization isolates the decision quality, exactly as the paper does for
its own comparisons.

Aging halves every ``aging_interval_requests`` served requests, applied
lazily per block via epoch tags so memory stays proportional to the
active footprint.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import SystemConfig
from repro.policies.base import AccessContext, MigrationPolicy
from repro.policies.registry import register_policy


@register_policy("silcfm")
class SilcFMPolicy(MigrationPolicy):
    """Promote on first access unless the M1 resident is locked."""

    name = "silcfm"
    #: Table 1: SILC-FM's swap type is slow (restore-before-swap).
    swap_style = "slow"

    def __init__(self, config: SystemConfig) -> None:
        super().__init__(config)
        self._silcfm = config.silcfm
        #: block -> [counter_value, epoch_of_value]
        self._counters: dict[int, list[int]] = {}
        self._epoch = 0
        self._requests_in_epoch = 0
        self.locked_denials = 0

    # ------------------------------------------------------------------
    def _aged_count(self, block: int) -> int:
        state = self._counters.get(block)
        if state is None:
            return 0
        value, epoch = state
        age = self._epoch - epoch
        return value >> age if age < value.bit_length() else 0

    def _bump(self, block: int, weight: int) -> int:
        aged = self._aged_count(block) + weight
        self._counters[block] = [aged, self._epoch]
        return aged

    def _is_locked(self, block: int) -> bool:
        return self._aged_count(block) > self._silcfm.lock_threshold

    # ------------------------------------------------------------------
    def on_access(self, ctx: AccessContext) -> Optional[int]:
        self._requests_in_epoch += 1
        if self._requests_in_epoch >= self._silcfm.aging_interval_requests:
            self._requests_in_epoch = 0
            self._epoch += 1
        map_ = self._controller.address_map if self._controller else None
        block = (
            map_.block_of(ctx.group, ctx.slot)
            if map_ is not None
            else ctx.group * ctx.st_entry.group_size + ctx.slot
        )
        count = self._bump(block, self.access_weight(ctx.is_write))
        if ctx.in_m1:
            return None
        if count < self._silcfm.threshold:
            return None
        m1_slot = ctx.m1_slot
        m1_block = (
            map_.block_of(ctx.group, m1_slot)
            if map_ is not None
            else ctx.group * ctx.st_entry.group_size + m1_slot
        )
        if ctx.m1_owner is not None and self._is_locked(m1_block):
            self.locked_denials += 1
            return None
        return ctx.slot
