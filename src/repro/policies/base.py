"""Migration-policy interface shared by baselines and the paper's schemes.

The memory controller calls :meth:`MigrationPolicy.on_access` for every
served data request, after updating the per-block access counters in the
STC.  For a request served from M2, the policy may return the slot of a
block to promote (almost always the accessed one); the controller then
commits the swap, blocks the channel for the swap latency, and notifies
the policy via :meth:`MigrationPolicy.on_swap`.  Migration decisions are
off the critical path (Section 3.2.3), so policy state may be read at
access time without a latency charge.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

from repro.common.config import SystemConfig
from repro.cache.stc import STCEntry
from repro.hybrid.st_entry import STEntry


@dataclass(slots=True)
class AccessContext:
    """Everything a policy may inspect about one served request.

    The controller keeps ONE mutable instance and rewrites its fields for
    every served request (the context used to be the most-constructed
    object after :class:`MemRequest`).  The contract for policies: read
    fields synchronously inside :meth:`MigrationPolicy.on_access`, never
    retain the object or schedule deferred work that dereferences it.
    """

    #: Core (program) that issued the request.
    core_id: int
    group: int
    #: Original slot of the accessed block.
    slot: int
    #: Current physical location of the accessed block (0 = M1).
    location: int
    is_write: bool
    #: Program owning the accessed block (frame owner).
    owner: Optional[int]
    #: Program owning the block currently in M1 of this group (c_M1).
    m1_owner: Optional[int]
    st_entry: STEntry
    stc_entry: STCEntry
    #: Decision cycle.
    now: int

    @property
    def in_m1(self) -> bool:
        """True when the accessed block was served from M1."""
        return self.location == 0

    @property
    def m1_slot(self) -> int:
        """Slot of the block currently occupying this group's M1 location."""
        return self.st_entry.m1_slot


class MigrationPolicy(ABC):
    """Base class for migration algorithms.

    Subclasses set :attr:`write_weight` — how many accesses one write
    counts as in the policy's statistics (Section 4.1: 8 for PoM, MDM, and
    ProFess in this technology setting; 1 for MemPod).
    """

    #: Canonical lowercase name used in experiment output.  Instances
    #: built through :func:`repro.policies.registry.build_policy` carry
    #: the spec's canonical string here (e.g. ``"profess+stc:lfu"``).
    name: str = "base"
    write_weight: int = 1
    #: Swap style per Table 1 (class default; the registry's composable
    #: ``swap:`` axis overrides per instance): *fast* swaps exchange any
    #: two blocks directly; *slow* swaps (SILC-FM) must first restore
    #: the group's original mapping, costing an extra block move when
    #: the group is already remapped; *smart* restores only when the
    #: exchange does not already re-home the demoted block; *noswap*
    #: suppresses migration traffic entirely.
    swap_style: str = "fast"
    #: Probability of dropping a decided promotion (registry axis; 0 =
    #: off).  Drawn from the seeded ``migration-bypass`` substream.
    bypass_rate: float = 0.0
    #: Replacement policy of the STC array serving this policy's run
    #: (registry axis).
    stc_replacement: str = "lru"

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self._controller = None

    @property
    def slow_swaps(self) -> bool:
        """Back-compat view of :attr:`swap_style` (Table 1's slow type)."""
        return self.swap_style == "slow"

    def bind(self, controller) -> None:
        """Attach the memory controller (owner lookups, RSM, clock).

        Called once by :class:`~repro.hybrid.memory.HybridMemoryController`
        before the simulation starts.
        """
        self._controller = controller

    @abstractmethod
    def on_access(self, ctx: AccessContext) -> Optional[int]:
        """Inspect one served request; return a slot to promote, or None.

        Returning ``ctx.slot`` promotes the accessed block into this
        group's M1 location (demoting the current resident).  Only blocks
        currently in M2 may be promoted.
        """

    def on_swap(
        self, group: int, promoted_slot: int, demoted_slot: int
    ) -> None:
        """Notification that a swap committed (override as needed)."""

    def on_st_eviction(self, stc_entry: STCEntry, st_entry: STEntry) -> None:
        """ST-entry eviction from the STC (MDM's statistics hook)."""

    def access_weight(self, is_write: bool) -> int:
        """Weight of one request in this policy's access statistics."""
        return self.write_weight if is_write else 1
