"""Persistence of experiment results as JSON.

Lets long sweeps be archived and re-rendered without re-simulation, and
backs the EXPERIMENTS.md generator (:mod:`repro.experiments.paper_report`).
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Optional

from repro.common.serialize import jsonable
from repro.experiments.base import ExperimentResult


def save_result(result: ExperimentResult, path: str | Path) -> None:
    """Write one experiment result as JSON."""
    payload = jsonable(asdict(result))
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def load_result(path: str | Path) -> ExperimentResult:
    """Load a result written by :func:`save_result`."""
    payload = json.loads(Path(path).read_text())
    return ExperimentResult(
        experiment_id=payload["experiment_id"],
        title=payload["title"],
        headers=payload["headers"],
        rows=payload["rows"],
        summary=payload.get("summary", {}),
        notes=payload.get("notes", ""),
    )


class ResultStore:
    """A directory of experiment results keyed by experiment id."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, experiment_id: str) -> Path:
        return self.directory / f"{experiment_id}.json"

    def save(self, result: ExperimentResult) -> Path:
        """Persist one result; returns its path."""
        path = self._path(result.experiment_id)
        save_result(result, path)
        return path

    def load(self, experiment_id: str) -> Optional[ExperimentResult]:
        """Load one result or None if absent."""
        path = self._path(experiment_id)
        if not path.exists():
            return None
        return load_result(path)

    def ids(self) -> list[str]:
        """Stored experiment ids."""
        return sorted(p.stem for p in self.directory.glob("*.json"))
