"""Figure 6: fraction of accesses served from M1, MDM normalized to PoM.

The paper's reading: a higher M1 fraction usually tracks higher
performance, except for irregular programs (mcf, omnetpp) where MDM
deliberately serves *fewer* accesses from M1 by refusing unprofitable
swaps.
"""

from __future__ import annotations

from repro.analysis.report import normalized_series_summary
from repro.experiments.base import ExperimentResult
from repro.experiments.runner import ExperimentRunner
from repro.workloads.table9 import FIG5_PROGRAMS


def run(runner: ExperimentRunner) -> ExperimentResult:
    """Reproduce Figure 6."""
    rows = []
    ratios = {}
    for program in FIG5_PROGRAMS:
        pom = runner.run_single(program, "pom").program(0).m1_fraction
        mdm = runner.run_single(program, "mdm").program(0).m1_fraction
        ratio = mdm / pom if pom > 0 else float("nan")
        ratios[program] = ratio
        rows.append([program, pom, mdm, ratio])
    return ExperimentResult(
        experiment_id="fig6",
        title="Single-program M1 accesses of MDM normalized to PoM",
        headers=["program", "PoM M1 frac", "MDM M1 frac", "MDM/PoM"],
        rows=rows,
        summary=normalized_series_summary(ratios),
    )
