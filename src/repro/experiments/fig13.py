"""Figures 13-15: multi-program evaluation of ProFess (MDM + RSM) vs PoM.

* Figure 13 — max slowdown, ProFess/PoM: paper avg -15% (up to -29%).
* Figure 14 — weighted speedup, ProFess/PoM: paper avg +12% (up to +29%).
* Figure 15 — energy efficiency, ProFess/PoM: paper avg +11%.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.multi import normalized_figure
from repro.experiments.runner import ExperimentRunner


def run(runner: ExperimentRunner) -> ExperimentResult:
    """Figure 13: max slowdown of ProFess normalized to PoM."""
    return normalized_figure(
        runner,
        "fig13",
        "Max slowdown of ProFess normalized to PoM",
        policy="profess",
        metric=lambda m: m.unfairness,
        higher_is_better=False,
    )


def run_fig14(runner: ExperimentRunner) -> ExperimentResult:
    """Figure 14: weighted speedup of ProFess normalized to PoM."""
    return normalized_figure(
        runner,
        "fig14",
        "Performance (weighted speedup) of ProFess normalized to PoM",
        policy="profess",
        metric=lambda m: m.weighted_speedup,
        higher_is_better=True,
    )


def run_fig15(runner: ExperimentRunner) -> ExperimentResult:
    """Figure 15: energy efficiency of ProFess normalized to PoM."""
    return normalized_figure(
        runner,
        "fig15",
        "Memory energy efficiency of ProFess normalized to PoM",
        policy="profess",
        metric=lambda m: m.energy_efficiency,
        higher_is_better=True,
    )
