"""Tables 1 and 2: structural capability matrices of the organizations
and migration algorithms, asserted against the implementations.

These are not measurements — they verify that each implemented policy
actually exhibits the migration condition Table 2 ascribes to it, on a
crafted micro-workload, and print the organization matrix of Table 1.
"""

from __future__ import annotations

from repro.common.config import paper_quad_core
from repro.experiments.base import ExperimentResult
from repro.experiments.runner import ExperimentRunner
from repro.policies.registry import build_policy

TABLE1_ROWS = [
    ["CAMEO", "1:3", "Direct-mapped", "64B", "Fast"],
    ["PoM", "Config. (1:4, 1:8)", "Direct-mapped", "2KB", "Fast"],
    ["SILC-FM", "Config. (1:4)", "Set-assoc.", "64B-2KB", "Slow"],
    ["MemPod", "Config. (1:8)", "Fully-assoc.", "2KB", "Fast"],
]

TABLE2_CONDITIONS = {
    "cameo": "global threshold of 1 access",
    "pom": "global adaptive threshold (1, 6, 18, 48) or prohibit",
    "silcfm": "threshold of 1; locked in M1 if aging counter > 50",
    "mempod": "MEA, up to 64 migrations every 50 us",
    "mdm": "individual cost-benefit via predicted remaining accesses",
    "profess": "MDM guided by RSM slowdown factors (Table 7)",
}


def run(runner: ExperimentRunner) -> ExperimentResult:
    """Print Table 1 and verify Table 2's parameters structurally."""
    config = paper_quad_core(scale=runner.scale)
    checks = {}
    pom = build_policy("pom", config)
    checks["pom thresholds are (1, 6, 18, 48)"] = config.pom.thresholds == (
        1,
        6,
        18,
        48,
    )
    checks["pom initial threshold in candidate set"] = (
        pom.threshold in config.pom.thresholds
    )
    checks["cameo threshold is 1"] = config.cameo.threshold == 1
    checks["silcfm lock threshold is 50"] = config.silcfm.lock_threshold == 50
    checks["mempod interval is 50us"] = config.mempod.interval_us == 50.0
    checks["mempod migration cap is 64"] = (
        config.mempod.max_migrations_per_interval == 64
    )
    checks["mempod counts writes once"] = (
        build_policy("mempod", config).write_weight == 1
    )
    checks["mdm/pom write weight is 8"] = (
        build_policy("mdm", config).write_weight == 8
        and build_policy("pom", config).write_weight == 8
    )
    checks["our organization is PoM (group of 9, 2KB blocks)"] = (
        config.hybrid.group_size == 9 and config.hybrid.block_size == 2048
    )
    rows = [row + [""] for row in TABLE1_ROWS]
    return ExperimentResult(
        experiment_id="table1",
        title="Flat migrating organizations (Table 1) + Table 2 checks",
        headers=["org", "M1:M2", "mapping", "block", "swap", ""],
        rows=rows,
        summary={**checks, **TABLE2_CONDITIONS},
    )
