"""Shared machinery for the multiprogram figures (10-16).

Each of Figures 10-15 is one metric of the same underlying sweep: every
Table 10 workload run under PoM and under the evaluated scheme, with
per-scheme stand-alone reference runs for the slowdown computation.  The
sweep is cached inside the runner, so requesting several figures costs
one simulation pass.

Sweeps tolerate partial waves (DESIGN.md §15): a workload whose runs
failed after retries is dropped from the metrics dict, and the figure
renders it as a FAILED row with the failure table appended to the notes
instead of aborting the whole figure.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.analysis.plotting import hbar_chart
from repro.analysis.report import normalized_series_summary
from repro.exec import format_failure_table
from repro.experiments.accumulators import StreamedMetricsSweep
from repro.experiments.base import ExperimentResult
from repro.experiments.runner import ExperimentRunner
from repro.sim.metrics import WorkloadMetrics
from repro.workloads.table10 import WORKLOAD_NAMES, WORKLOADS


def sweep(
    runner: ExperimentRunner,
    policies: Sequence[str],
    workloads: Sequence[str] = WORKLOAD_NAMES,
) -> dict[str, dict[str, WorkloadMetrics]]:
    """metrics[workload][policy] for the requested schemes.

    The entire sweep — every workload x policy run plus the stand-alone
    reference runs — runs as one *streamed* wave (DESIGN.md §17): each
    (workload, policy) cell's metrics are computed the moment its runs
    complete and the results are dropped, so with ``jobs > 1`` the whole
    figure simulates in parallel while the parent holds metrics cells,
    never the wave.

    Workloads whose runs failed (after the executor's retries) are
    omitted from the returned dict rather than raising; callers can
    compare against the requested ``workloads`` list and consult
    ``runner.failures`` for the cause.
    """
    if not hasattr(runner, "run_streamed"):
        return _materialized_sweep(runner, policies, workloads)
    accumulator = StreamedMetricsSweep(runner)
    wave: list = []
    for name in workloads:
        for policy in policies:
            wave.extend(
                accumulator.add_cell(
                    f"{name}|{policy}", WORKLOADS[name], policy
                )
            )
    runner.run_streamed(wave, accumulator)
    metrics: dict[str, dict[str, WorkloadMetrics]] = {}
    for name in workloads:
        per_policy = {
            policy: accumulator.metrics[f"{name}|{policy}"]
            for policy in policies
            if f"{name}|{policy}" in accumulator.metrics
        }
        # Same contract as always: a workload with *any* failed run is
        # omitted entirely (partial rows would skew the normalization).
        if len(per_policy) == len(policies):
            metrics[name] = per_policy
    return metrics


def _materialized_sweep(
    runner: ExperimentRunner,
    policies: Sequence[str],
    workloads: Sequence[str],
) -> dict[str, dict[str, WorkloadMetrics]]:
    """The guaranteed-identical fallback: prefetch, then reduce.

    Used for runner stand-ins that predate streaming (duck-typed test
    stubs); the property suite asserts its output matches the streamed
    path cell for cell.
    """
    specs_by_workload = {
        name: [
            spec
            for policy in policies
            for spec in runner.workload_metric_specs(name, policy)
        ]
        for name in workloads
    }
    runner.prefetch(
        [spec for specs in specs_by_workload.values() for spec in specs]
    )
    failed = runner.failed_keys()
    return {
        name: {
            policy: runner.workload_metrics(name, policy)
            for policy in policies
        }
        for name in workloads
        if not any(spec.cache_key() in failed for spec in specs_by_workload[name])
    }


def normalized_figure(
    runner: ExperimentRunner,
    experiment_id: str,
    title: str,
    policy: str,
    metric: Callable[[WorkloadMetrics], float],
    higher_is_better: bool,
    baseline: str = "pom",
    workloads: Sequence[str] = WORKLOAD_NAMES,
) -> ExperimentResult:
    """Build one Figure 10-15 style normalized comparison.

    Failed workloads render as FAILED rows; the figure only raises if
    *every* workload failed (there is nothing left to normalize).
    """
    metrics = sweep(runner, [baseline, policy], workloads)
    series: dict[str, float] = {}
    rows = []
    for name in workloads:
        if name not in metrics:
            rows.append([name, "FAILED", "FAILED", "-"])
            continue
        base_value = metric(metrics[name][baseline])
        new_value = metric(metrics[name][policy])
        ratio = new_value / base_value
        series[name] = ratio
        rows.append([name, base_value, new_value, ratio])
    notes = hbar_chart(series, baseline=1.0) if series else ""
    if any(name not in metrics for name in workloads):
        table = format_failure_table(runner.failures)
        notes = f"{notes}\n\n{table}" if notes else table
    summary = (
        normalized_series_summary(series, higher_is_better)
        if series
        else f"all {len(workloads)} workloads FAILED; see failure table"
    )
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        headers=["workload", baseline, policy, f"{policy}/{baseline}"],
        rows=rows,
        summary=summary,
        notes=notes,
    )
