"""Experiment drivers: one module per paper table/figure.

Use :class:`repro.experiments.runner.ExperimentRunner` for shared
configuration, trace synthesis, and run caching (stand-alone IPC runs are
reused across figures exactly as the paper reuses its single-program
baselines), and :mod:`repro.experiments.registry` to run experiments by
their paper artifact id (``fig5``, ``table4``, ...).
"""

from repro.experiments.runner import ExperimentRunner

__all__ = ["ExperimentRunner"]
