"""Section 5.2 text sensitivities: M2 write latency and M1:M2 ratio.

* Doubling tWR_M2 raises MDM's average advantage over PoM (paper: 14% ->
  18%); halving it lowers the advantage (-> 12%).
* Moving the capacity ratio from 1:8 to 1:4 slightly lowers the
  advantage; 1:16 keeps it about the same (paper: 12% / 14%).
"""

from __future__ import annotations

from dataclasses import replace

from repro.common.config import MemTimings, paper_single_core
from repro.common.stats import geomean
from repro.experiments.base import ExperimentResult
from repro.experiments.fig05 import single_program_ratios
from repro.experiments.runner import ExperimentRunner

#: Programs that fit entirely into the doubled M1 at ratio 1:4 are
#: excluded there, following Section 5.2.
RATIO_14_EXCLUDED = ("leslie3d", "libquantum", "zeusmp")


def _with_twr_factor(runner: ExperimentRunner, factor: float):
    base = runner.single_config()
    nvm = base.m2_timings
    return replace(
        base,
        m2_timings=MemTimings(
            t_rcd_ns=nvm.t_rcd_ns,
            t_rp_ns=nvm.t_rp_ns,
            cl_ns=nvm.cl_ns,
            t_wr_ns=nvm.t_wr_ns * factor,
        ),
    )


def run_twr(runner: ExperimentRunner) -> ExperimentResult:
    """MDM advantage vs PoM at 0.5x, 1x, and 2x tWR_M2."""
    rows = []
    gains = {}
    for factor in (0.5, 1.0, 2.0):
        config = _with_twr_factor(runner, factor)
        ratios = single_program_ratios(runner, config=config)
        gain = geomean(list(ratios.values()))
        gains[factor] = gain
        best = max(ratios, key=ratios.get)
        rows.append([f"{factor:g}x tWR_M2", gain, best, ratios[best]])
    return ExperimentResult(
        experiment_id="sens-twr",
        title="MDM vs PoM sensitivity to M2 write latency",
        headers=["tWR_M2", "geomean MDM/PoM", "best program", "best ratio"],
        rows=rows,
        summary={
            "advantage grows with tWR_M2 (paper shape)": (
                gains[0.5] <= gains[2.0]
            )
        },
    )


def run_ratio(runner: ExperimentRunner) -> ExperimentResult:
    """MDM advantage vs PoM at M1:M2 ratios 1:4, 1:8, 1:16."""
    rows = []
    gains = {}
    for ratio in (4, 8, 16):
        # Hold M2 (and program footprints) fixed while M1 changes: the
        # 1:4 system has a twice-larger M1, the 1:16 system half (Sec 5.2).
        # M2 = (M1_paper / scale) * ratio, so scale must move with ratio.
        scale = max(runner.scale * ratio // 8, 1)
        # Keep at least two swap-group pairs per region at tiny scales by
        # shrinking the region count (a measurement convenience only).
        groups = (64 * 1024 * 1024 // scale) // 2048
        num_regions = 128
        while num_regions > 2 and groups < 2 * num_regions:
            num_regions //= 2
        config = paper_single_core(
            scale=scale, m2_to_m1_ratio=ratio, num_regions=num_regions
        )
        # At 1:16, shrinking M1 at fixed M2 can push the largest
        # footprints (milc) past the OS-visible capacity; skip them like
        # the paper skips programs that fit entirely into M1 at 1:4.
        ratios = single_program_ratios(
            runner, config=config, skip_unfittable=True
        )
        if ratio == 4:
            ratios = {
                name: value
                for name, value in ratios.items()
                if name not in RATIO_14_EXCLUDED
            }
        gain = geomean(list(ratios.values()))
        gains[ratio] = gain
        rows.append([f"1:{ratio}", gain, len(ratios)])
    return ExperimentResult(
        experiment_id="sens-ratio",
        title="MDM vs PoM sensitivity to M1:M2 capacity ratio",
        headers=["ratio", "geomean MDM/PoM", "programs"],
        rows=rows,
        summary={
            "1:4 advantage <= 1:8 advantage (paper shape)": (
                gains[4] <= gains[8] + 0.02
            )
        },
        notes=(
            "At 1:4 the paper excludes leslie3d, libquantum, and zeusmp "
            "(they fit into the doubled M1); we do the same."
        ),
    )
