"""Figure 16: per-program slowdowns under PoM, MDM, and ProFess for the
Figure 2 workloads (w09, w16, w19).

Paper shape: MDM reduces the max slowdown only by speeding programs up
(soplex in w09); ProFess additionally *trades* — slowing lightly loaded
programs (lbm, GemsFDTD in w09) to relieve the most-suffering ones.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.runner import ExperimentRunner
from repro.workloads.table10 import FAIRNESS_DETAIL_WORKLOADS, WORKLOADS

POLICIES = ("pom", "mdm", "profess")


def run(runner: ExperimentRunner) -> ExperimentResult:
    """Reproduce Figure 16."""
    rows = []
    summary = {}
    for name in FAIRNESS_DETAIL_WORKLOADS:
        metrics = {
            policy: runner.workload_metrics(name, policy)
            for policy in POLICIES
        }
        for index, program in enumerate(WORKLOADS[name]):
            rows.append(
                [name, program]
                + [metrics[policy].slowdowns[index] for policy in POLICIES]
            )
        summary[f"{name} max slowdown pom/mdm/profess"] = " / ".join(
            f"{metrics[policy].unfairness:.2f}" for policy in POLICIES
        )
    return ExperimentResult(
        experiment_id="fig16",
        title="Per-program slowdowns under the evaluated schemes",
        headers=["workload", "program"] + list(POLICIES),
        rows=rows,
        summary=summary,
    )
