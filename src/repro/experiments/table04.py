"""Table 4: RSM sampling-accuracy estimates.

For bwaves, milc, and omnetpp running alone, measure across all sampling
periods: the mean per-region request-count deviation (sigma_req), the
standard deviation of raw SF_A estimates, and that of the exponentially
smoothed SF_A estimates, for sampling periods of 64K, 128K, and 256K
requests (scaled by the runner's capacity divisor).  The paper's shape:
sigma falls as M_samp grows, and smoothing cuts the SF_A deviation by
several times (milc at 128K: 13% raw vs 3.3% averaged).
"""

from __future__ import annotations

from dataclasses import replace

from repro.common.config import RSMConfig
from repro.common.stats import mean, stddev
from repro.experiments.base import ExperimentResult
from repro.experiments.runner import ExperimentRunner

PROGRAMS = ("bwaves", "milc", "omnetpp")
PAPER_M_SAMP = (64 * 1024, 128 * 1024, 256 * 1024)


def run(runner: ExperimentRunner) -> ExperimentResult:
    """Reproduce Table 4 at simulation scale."""
    rows = []
    summary = {}
    for program in PROGRAMS:
        for paper_m_samp in PAPER_M_SAMP:
            m_samp = max(paper_m_samp // runner.scale, 256)
            base = runner.single_config()
            config = replace(
                base, rsm=RSMConfig(m_samp=m_samp, alpha=base.rsm.alpha)
            )
            result = runner.run_single(
                program, "pom", config=config, track_rsm_regions=True
            )
            samples = [
                s for s in result.extra["rsm_history"] if s.program == 0
            ]
            sigma_req = [s.sigma_req for s in samples if s.sigma_req is not None]
            raw = [s.raw_sf_a for s in samples if s.raw_sf_a is not None]
            smoothed = [s.smoothed_sf_a for s in samples]
            if len(raw) < 2 or len(smoothed) < 2:
                rows.append(
                    [program, paper_m_samp // 1024, m_samp, None, None, None]
                )
                continue
            rows.append(
                [
                    program,
                    paper_m_samp // 1024,
                    m_samp,
                    100 * mean(sigma_req) if sigma_req else float("nan"),
                    100 * stddev(raw),
                    100 * stddev(smoothed),
                ]
            )
    # Shape checks the paper emphasizes.
    by_program: dict[str, list] = {}
    for row in rows:
        by_program.setdefault(row[0], []).append(row)
    for program, program_rows in by_program.items():
        sigmas = [r[3] for r in program_rows if r[3] is not None]
        if len(sigmas) == len(PAPER_M_SAMP):
            summary[f"{program} sigma_req falls with M_samp"] = (
                sigmas[0] >= sigmas[-1]
            )
        pairs = [
            (r[4], r[5]) for r in program_rows if r[4] is not None
        ]
        if pairs:
            summary[f"{program} smoothing reduces sigma"] = all(
                smoothed <= raw + 1e-9 for raw, smoothed in pairs
            )
    return ExperimentResult(
        experiment_id="table4",
        title="RSM sampling accuracy (Table 4)",
        headers=[
            "program",
            "paper M_samp (K)",
            "scaled M_samp",
            "mean sigma_req (%)",
            "sigma raw SF_A (%)",
            "sigma avg SF_A (%)",
        ],
        rows=rows,
        summary=summary,
    )
