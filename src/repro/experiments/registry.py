"""Experiment registry: paper artifact id -> driver.

``run_experiment("fig5", runner)`` regenerates the corresponding table or
figure; ``EXPERIMENTS`` lists everything DESIGN.md's per-experiment index
promises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.experiments import (
    ablations,
    extensions,
    fig02,
    fig05,
    fig06,
    fig07,
    fig08,
    fig10,
    fig13,
    fig16,
    mempod_compare,
    sensitivity,
    table01,
    table04,
)
from repro.experiments.base import ExperimentResult
from repro.experiments.runner import ExperimentRunner
from repro.common.errors import UnknownNameError


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment."""

    experiment_id: str
    description: str
    driver: Callable[[ExperimentRunner], ExperimentResult]


_SPECS = (
    ExperimentSpec("table1", "Organization matrix + Table 2 checks", table01.run),
    ExperimentSpec("fig2", "Slowdowns under PoM (fairness problem)", fig02.run),
    ExperimentSpec("table4", "RSM sampling accuracy", table04.run),
    ExperimentSpec("fig5", "Single-program MDM vs PoM IPC", fig05.run),
    ExperimentSpec("fig6", "M1-served fraction MDM vs PoM", fig06.run),
    ExperimentSpec("fig7", "STC hit rates under MDM", fig07.run),
    ExperimentSpec("fig8", "IPC sensitivity to STC size", fig08.run),
    ExperimentSpec("fig9", "STC hit rates vs STC size", fig08.run_fig9),
    ExperimentSpec("sens-twr", "Sensitivity to tWR_M2", sensitivity.run_twr),
    ExperimentSpec(
        "sens-ratio", "Sensitivity to M1:M2 ratio", sensitivity.run_ratio
    ),
    ExperimentSpec("fig10", "MDM vs PoM max slowdown", fig10.run),
    ExperimentSpec("fig11", "MDM vs PoM weighted speedup", fig10.run_fig11),
    ExperimentSpec("fig12", "MDM vs PoM energy efficiency", fig10.run_fig12),
    ExperimentSpec("fig13", "ProFess vs PoM max slowdown", fig13.run),
    ExperimentSpec("fig14", "ProFess vs PoM weighted speedup", fig13.run_fig14),
    ExperimentSpec("fig15", "ProFess vs PoM energy efficiency", fig13.run_fig15),
    ExperimentSpec("fig16", "Per-program slowdowns, three schemes", fig16.run),
    ExperimentSpec(
        "mempod-vs-pom", "MemPod AMMAT vs PoM (Sec. 2.5)", mempod_compare.run
    ),
    ExperimentSpec("ablation-qac", "QAC boundary ablation", ablations.run_qac),
    ExperimentSpec(
        "ablation-min-benefit", "min_benefit sweep", ablations.run_min_benefit
    ),
    ExperimentSpec(
        "ablation-rsm-thresholds",
        "ProFess hysteresis/Case-3 ablation",
        ablations.run_rsm_thresholds,
    ),
    ExperimentSpec(
        "ablation-rsm-alpha", "RSM alpha ablation", ablations.run_alpha
    ),
    ExperimentSpec(
        "ext-rsm-pom",
        "Extension: RSM guidance on PoM (decomposition)",
        extensions.run_rsm_pom,
    ),
    ExperimentSpec(
        "ext-policy-matrix",
        "Extension: every policy on w09",
        extensions.run_policy_matrix,
    ),
    ExperimentSpec(
        "ext-random-mixes",
        "Extension: ProFess vs PoM on random mixes",
        extensions.run_random_mixes,
    ),
    ExperimentSpec(
        "ext-prediction-accuracy",
        "Extension: MDM predictor calibration (Eq. 8)",
        extensions.run_prediction_accuracy,
    ),
)

EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.experiment_id: spec for spec in _SPECS
}


class UnknownExperimentError(UnknownNameError):
    """Raised when one or more requested experiment ids do not exist."""

    def __init__(self, unknown: list[str]) -> None:
        self.unknown = list(unknown)
        super().__init__(
            f"unknown experiment id(s) {', '.join(map(repr, self.unknown))}; "
            f"known: {sorted(EXPERIMENTS)}"
        )


def validate_experiment_ids(experiment_ids: list[str]) -> None:
    """Raise :class:`UnknownExperimentError` listing every bad id at once.

    Callers validate a whole request *before* simulating anything, so a
    typo at the end of an id list cannot waste the runs before it.
    """
    unknown = [i for i in experiment_ids if i not in EXPERIMENTS]
    if unknown:
        raise UnknownExperimentError(unknown)


def resolve_experiment_ids(tokens: list[str]) -> list[str]:
    """Expand 'all' and deduplicate an id list, validating up front."""
    ids: list[str] = []
    for token in tokens:
        if token == "all":
            ids.extend(EXPERIMENTS)
        else:
            ids.append(token)
    ids = list(dict.fromkeys(ids))
    validate_experiment_ids(ids)
    return ids


def run_experiment(
    experiment_id: str, runner: ExperimentRunner
) -> ExperimentResult:
    """Run a registered experiment by its paper artifact id."""
    try:
        spec = EXPERIMENTS[experiment_id]
    except KeyError:
        raise UnknownNameError(
            f"unknown experiment {experiment_id!r}; known: "
            f"{sorted(EXPERIMENTS)}"
        ) from None
    return spec.driver(runner)
