"""Shared experiment infrastructure: configs, traces, and cached runs.

Every figure in Section 5 compares policies on identical workloads; the
expensive pieces — stand-alone reference runs for slowdown computation,
and the multiprogram runs themselves — are requested as content-addressed
:class:`~repro.exec.spec.RunSpec` objects and executed through the
:mod:`repro.exec` subsystem, so e.g. Figures 13-15 (ProFess) reuse the
PoM runs produced for Figures 10-12.

Two cache layers sit behind every request:

* an in-process memo (object identity preserved within one runner), and
* an optional disk :class:`~repro.exec.cache.ResultCache` (``cache_dir``)
  that survives process exit and is shared across CLI runs, benchmark
  sessions, and CI.

With ``jobs > 1``, batched requests (:meth:`ExperimentRunner.prefetch`,
used by the figure drivers and by :meth:`workload_metrics`) fan out over
a process pool with results identical to serial execution.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path
from typing import Optional, Sequence

from repro.common.config import (
    SystemConfig,
    paper_quad_core,
    paper_single_core,
)
from repro.common.errors import InvalidValueError
from repro.cpu.trace import Trace
from repro.exec import (
    Executor,
    ResultCache,
    RetryPolicy,
    RunEvent,
    RunFailure,
    RunJournal,
    RunSpec,
)
from repro.exec.resilience import JournalState
from repro.exec.spec import workload_traces as _workload_traces
from repro.exec.streaming import WaveReducer
from repro.experiments.accumulators import CellMetrics
from repro.policies.registry import canonical_policy
from repro.sim.metrics import WorkloadMetrics
from repro.sim.results import SimulationResult
from repro.traces.generator import synthesize_trace
from repro.workloads.table10 import WORKLOADS

#: Default capacity divisor: 4-MB total M1 in the quad-core system,
#: 1-MB M1 in the single-core system (ratios preserved; DESIGN.md Sec. 6).
DEFAULT_SCALE = 64
#: Default trace length per program (requests).
DEFAULT_MULTI_REQUESTS = 50_000
DEFAULT_SINGLE_REQUESTS = 60_000


class ExperimentRunner:
    """Builds configs and RunSpecs; runs and caches simulations."""

    def __init__(
        self,
        scale: int = DEFAULT_SCALE,
        multi_requests: int = DEFAULT_MULTI_REQUESTS,
        single_requests: int = DEFAULT_SINGLE_REQUESTS,
        seed: int = 0,
        verbose: bool = False,
        sp_reference: Optional[str] = "pom",
        jobs: int = 1,
        cache_dir: Optional[str | Path] = None,
        validate_every: int = 0,
        policies: Optional[Sequence[str]] = None,
        mem_backend: str = "auto",
        retries: int = 0,
        run_timeout: Optional[float] = None,
        fail_fast: bool = False,
        resume: bool = False,
        transport: str = "auto",
    ) -> None:
        self.scale = scale
        self.multi_requests = multi_requests
        self.single_requests = single_requests
        self.seed = seed
        self.verbose = verbose
        #: Policy whose stand-alone runs provide IPC_SP in Eq. (1).  The
        #: default references every scheme's slowdowns to the PoM
        #: baseline's uncontended IPCs, which is the only reading under
        #: which the paper's Figure 5 (+14% single-program) and Figure 11
        #: (+7% multiprogram weighted speedup) are mutually consistent.
        #: Pass None to use each scheme's own stand-alone runs instead.
        self.sp_reference = sp_reference
        self.jobs = jobs
        #: Forwarded to every spec this runner builds: audit controller
        #: invariants every N cycles during simulation (0 = off).
        self.validate_every = validate_every
        #: Optional policy restriction for sweep experiments (the CLI's
        #: repeatable ``--policy SPEC``): canonicalized composable spec
        #: strings, or None for each experiment's full default set.
        self.policy_specs: Optional[tuple[str, ...]] = (
            tuple(canonical_policy(policy) for policy in policies)
            if policies
            else None
        )
        #: Memory-timing kernel backend baked into every config this
        #: runner builds ("auto"/"python"/"compiled").  Excluded from
        #: ``SystemConfig.cache_token()``, so switching backends reuses
        #: cached results — the backends are byte-identical by contract.
        self.mem_backend = mem_backend
        self.cache = (
            ResultCache(cache_dir) if cache_dir is not None else None
        )
        #: The append-only run journal lives beside the cache entries; a
        #: cache-less runner keeps no journal (nothing to resume into).
        self.journal = (
            RunJournal.beside(cache_dir) if cache_dir is not None else None
        )
        if resume and self.journal is None:
            raise InvalidValueError(
                "resume requires a cache directory (the journal lives "
                "beside the cache; pass cache_dir / --cache-dir)"
            )
        #: Replayed journal state when resuming, else None.  Completed
        #: keys are expected to hit the disk cache; failed keys are
        #: simply re-attempted, which is all a resume needs — the cache
        #: is content-addressed, so nothing completed re-simulates.
        self.resume_state: Optional[JournalState] = (
            self.journal.replay() if resume and self.journal else None
        )
        #: Result transport ("auto"/"pickle"/"shm"), forwarded to the
        #: executor.  Like mem_backend: an execution detail, excluded
        #: from cache keys, byte-identical by contract.
        self.transport = transport
        self.executor = Executor(
            jobs=jobs,
            cache=self.cache,
            on_run=self._on_run,
            retry=RetryPolicy(retries=retries, seed=seed),
            run_timeout=run_timeout,
            journal=self.journal,
            fail_fast=fail_fast,
            transport=transport,
        )
        self._memory: dict[str, SimulationResult] = {}
        #: Batch requests served from the in-process memo.
        self.memory_hits = 0
        #: Computed figure cells, keyed by (mix cache key, reference
        #: policy).  A CellMetrics is a few floats, so this memo can hold
        #: an entire multi-figure session — it is what lets a streamed
        #: fig10 feed fig11..15 without re-simulating (or re-reading the
        #: disk cache for) a single run, even though streamed waves never
        #: memoize full results.
        self._metrics_memory: dict[tuple[str, str], CellMetrics] = {}
        #: Cells served from the metrics memo.
        self.metrics_memory_hits = 0

    # ------------------------------------------------------------------
    # Configurations
    # ------------------------------------------------------------------
    def quad_config(self, **overrides) -> SystemConfig:
        """The multi-program system (Table 8), at this runner's scale."""
        config = paper_quad_core(scale=self.scale)
        overrides.setdefault("mem_backend", self.mem_backend)
        return replace(config, **overrides)

    def single_config(self, **overrides) -> SystemConfig:
        """The single-program system (Section 4.1), at this runner's scale."""
        config = paper_single_core(scale=self.scale)
        overrides.setdefault("mem_backend", self.mem_backend)
        return replace(config, **overrides)

    # ------------------------------------------------------------------
    # Traces
    # ------------------------------------------------------------------
    def trace_for(
        self, program: str, instance: int = 0, requests: Optional[int] = None
    ) -> Trace:
        """Synthesize (or fetch memoized) one program instance's trace."""
        return synthesize_trace(
            program,
            num_requests=requests or self.multi_requests,
            scale=self.scale,
            seed=self.seed * 1000 + instance,
        )

    def workload_traces(
        self, programs: Sequence[str], requests: Optional[int] = None
    ) -> list[tuple[str, Trace]]:
        """Traces for a program mix; duplicates get distinct seeds."""
        return _workload_traces(
            programs, requests or self.multi_requests, self.scale, self.seed
        )

    # ------------------------------------------------------------------
    # Spec builders
    # ------------------------------------------------------------------
    def spec_single(
        self,
        program: str,
        policy: str,
        config: Optional[SystemConfig] = None,
        requests: Optional[int] = None,
        track_rsm_regions: bool = False,
    ) -> RunSpec:
        """Spec for one program on the single-core system (Figures 5-9)."""
        return RunSpec(
            kind="single",
            programs=(program,),
            policy=policy,
            config=config or self.single_config(),
            requests=requests or self.single_requests,
            seed=self.seed,
            trace_scale=self.scale,
            track_rsm_regions=track_rsm_regions,
            validate_every=self.validate_every,
        )

    def spec_alone(
        self,
        program: str,
        policy: str,
        config: Optional[SystemConfig] = None,
    ) -> RunSpec:
        """Spec for a stand-alone reference run on the quad-core system."""
        return RunSpec(
            kind="alone",
            programs=(program,),
            policy=policy,
            config=config or self.quad_config(),
            requests=self.multi_requests,
            seed=self.seed,
            trace_scale=self.scale,
            validate_every=self.validate_every,
        )

    def spec_workload(
        self,
        workload_name: str,
        policy: str,
        config: Optional[SystemConfig] = None,
    ) -> RunSpec:
        """Spec for one Table 10 workload on the quad-core system."""
        return self.spec_mix(WORKLOADS[workload_name], policy, config)

    def spec_mix(
        self,
        programs: Sequence[str],
        policy: str,
        config: Optional[SystemConfig] = None,
    ) -> RunSpec:
        """Spec for an arbitrary program mix on the quad-core system."""
        return RunSpec(
            kind="multi",
            programs=tuple(programs),
            policy=policy,
            config=config or self.quad_config(),
            requests=self.multi_requests,
            seed=self.seed,
            trace_scale=self.scale,
            validate_every=self.validate_every,
        )

    def metric_specs(
        self,
        programs: Sequence[str],
        policy: str,
        config: Optional[SystemConfig] = None,
    ) -> list[RunSpec]:
        """Every spec :meth:`mix_metrics` needs: the mix run plus the
        stand-alone reference runs Eq. (1) divides by."""
        config = config or self.quad_config()
        reference = self.sp_reference or policy
        specs = [self.spec_mix(programs, policy, config)]
        specs.extend(
            self.spec_alone(program, reference, config)
            for program in dict.fromkeys(programs)
        )
        return specs

    def workload_metric_specs(
        self,
        workload_name: str,
        policy: str,
        config: Optional[SystemConfig] = None,
    ) -> list[RunSpec]:
        """Every spec :meth:`workload_metrics` needs for one workload."""
        return self.metric_specs(WORKLOADS[workload_name], policy, config)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, spec: RunSpec) -> SimulationResult:
        """Run (or fetch) one spec; repeated requests return the same
        object within this runner."""
        key = spec.cache_key()
        cached = self._memory.get(key)
        if cached is not None:
            self.memory_hits += 1
            return cached
        result = self.executor.run(spec)
        self._memory[key] = result
        return result

    def prefetch(self, specs: Sequence[RunSpec]) -> None:
        """Batch a whole figure's runs into one parallel wave.

        Deduplicates, skips anything already memoized, executes the rest
        through the executor (process pool when ``jobs > 1``), and
        memoizes the results so subsequent :meth:`execute` calls are
        in-process hits.

        Failures do not abort the wave: successful runs are memoized,
        failed keys are recorded on the executor (see :meth:`failures`)
        and surface only when a figure actually needs them — the figure
        drivers consume partial waves and mark those rows as FAILED.
        """
        fresh: dict[str, RunSpec] = {}
        for spec in specs:
            key = spec.cache_key()
            if key not in self._memory:
                fresh.setdefault(key, spec)
        if not fresh:
            return
        wave = self.executor.run_wave(list(fresh.values()))
        for key, result in zip(fresh, wave.results):
            if result is not None:
                self._memory[key] = result

    def run_streamed(
        self, specs: Sequence[RunSpec], reducer: WaveReducer
    ) -> None:
        """Run a wave through a streaming reducer (DESIGN.md §17).

        The memory-bounded counterpart of :meth:`prefetch`: each unique
        spec's result is folded into ``reducer`` exactly once as it
        completes — from the in-process memo immediately, from the disk
        cache or a simulation as the executor delivers it — and is *not*
        memoized afterwards, so parent memory scales with the reducer's
        frontier instead of the wave.  Terminal failures fold through
        ``reducer.fold_failure``; like :meth:`prefetch`, they never
        abort the wave.
        """
        fresh: dict[str, RunSpec] = {}
        folded: set[str] = set()
        for spec in specs:
            key = spec.cache_key()
            if key in fresh or key in folded:
                continue
            held = self._memory.get(key)
            if held is not None:
                self.memory_hits += 1
                folded.add(key)
                reducer.fold(key, spec, held)
            else:
                fresh[key] = spec
        if fresh:
            self.executor.run_wave(list(fresh.values()), reducer=reducer)

    def cached_cell(
        self, mix_spec: RunSpec, reference: str
    ) -> Optional[CellMetrics]:
        """This runner's memoized cell for (mix run, reference policy)."""
        cell = self._metrics_memory.get((mix_spec.cache_key(), reference))
        if cell is not None:
            self.metrics_memory_hits += 1
        return cell

    def remember_cell(
        self, mix_key: str, reference: str, cell: CellMetrics
    ) -> None:
        """Memoize one computed cell (streamed accumulators call this)."""
        self._metrics_memory[(mix_key, reference)] = cell

    def _on_run(self, event: RunEvent) -> None:
        if self.verbose:
            spec = event.spec
            origin = (
                "disk cache"
                if event.source == "cache"
                else f"{event.source}, {event.elapsed:.1f}s"
            )
            print(
                f"  {spec.kind} {'+'.join(spec.programs)}: "
                f"{event.result.summary_line()} ({origin})"
            )

    def run_stats(self) -> dict[str, int]:
        """Execution counters: simulations run vs cache traffic."""
        stats = {
            "executed": self.executor.executed,
            "memory_hits": self.memory_hits,
            "disk_hits": self.cache.hits if self.cache else 0,
            "disk_misses": self.cache.misses if self.cache else 0,
            "disk_stores": self.cache.stores if self.cache else 0,
            "retried": self.executor.retried,
            "failures": len(self.executor.failures),
            "quarantined": self.cache.quarantined if self.cache else 0,
            "store_errors": self.cache.store_errors if self.cache else 0,
        }
        return stats

    @property
    def failures(self) -> list[RunFailure]:
        """Every spec that exhausted retries, across all waves so far."""
        return self.executor.failures

    def failed_keys(self) -> set[str]:
        """Cache keys of failed specs (figure drivers skip these rows)."""
        return {failure.key for failure in self.executor.failures}

    def resume_summary(self) -> Optional[str]:
        """One-line journal digest when resuming, else None."""
        if self.resume_state is None:
            return None
        state = self.resume_state
        pieces = (
            f"{len(state.completed)} completed, "
            f"{len(state.failed)} failed, "
            f"{len(state.pending())} pending"
        )
        if state.skipped_lines:
            pieces += f" ({state.skipped_lines} unreadable journal lines)"
        return f"resume: journal shows {pieces}"

    # ------------------------------------------------------------------
    # Cached runs (thin RunSpec wrappers)
    # ------------------------------------------------------------------
    def run_single(
        self,
        program: str,
        policy: str,
        config: Optional[SystemConfig] = None,
        requests: Optional[int] = None,
        track_rsm_regions: bool = False,
    ) -> SimulationResult:
        """Run one program on the single-core system (Figures 5-9)."""
        return self.execute(
            self.spec_single(
                program, policy, config, requests, track_rsm_regions
            )
        )

    def run_alone_in_quad(
        self,
        program: str,
        policy: str,
        config: Optional[SystemConfig] = None,
    ) -> SimulationResult:
        """Stand-alone reference run on the quad-core system (IPC_SP)."""
        return self.execute(self.spec_alone(program, policy, config))

    def run_workload(
        self,
        workload_name: str,
        policy: str,
        config: Optional[SystemConfig] = None,
    ) -> SimulationResult:
        """Run one Table 10 workload on the quad-core system."""
        return self.execute(self.spec_workload(workload_name, policy, config))

    def mix_metrics(
        self,
        programs: Sequence[str],
        policy: str,
        config: Optional[SystemConfig] = None,
    ) -> WorkloadMetrics:
        """Metrics for an arbitrary program mix (not from Table 10)."""
        config = config or self.quad_config()
        reference = self.sp_reference or policy
        mix_spec = self.spec_mix(programs, policy, config)
        cell = self.cached_cell(mix_spec, reference)
        if cell is not None:
            return cell.metrics
        specs = self.metric_specs(programs, policy, config)
        self.prefetch(specs)
        multi = self.execute(specs[0])
        single_ipcs = [
            self.run_alone_in_quad(p.name, reference, config).program(0).ipc
            for p in multi.programs
        ]
        cell = CellMetrics.from_results(multi, single_ipcs)
        self.remember_cell(mix_spec.cache_key(), reference, cell)
        return cell.metrics

    def workload_metrics(
        self,
        workload_name: str,
        policy: str,
        config: Optional[SystemConfig] = None,
    ) -> WorkloadMetrics:
        """Slowdowns / weighted speedup / unfairness for one workload.

        Eq. (1)'s IPC_SP comes from stand-alone runs under
        :attr:`sp_reference` (default: the PoM baseline for every scheme,
        so normalized comparisons reflect the multiprogram behaviour; see
        the constructor docstring), or under ``policy`` itself when
        ``sp_reference`` is None.
        """
        return self.mix_metrics(WORKLOADS[workload_name], policy, config)
