"""Shared experiment infrastructure: configs, traces, and cached runs.

Every figure in Section 5 compares policies on identical workloads; the
expensive pieces — stand-alone reference runs for slowdown computation,
and the multiprogram runs themselves — are memoized on a structural key,
so e.g. Figures 13-15 (ProFess) reuse the PoM runs produced for
Figures 10-12.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.common.config import (
    SystemConfig,
    paper_quad_core,
    paper_single_core,
)
from repro.cpu.trace import Trace
from repro.sim.engine import SimulationDriver
from repro.sim.metrics import WorkloadMetrics
from repro.sim.results import SimulationResult
from repro.traces.generator import synthesize_trace
from repro.workloads.table10 import WORKLOADS

#: Default capacity divisor: 4-MB total M1 in the quad-core system,
#: 1-MB M1 in the single-core system (ratios preserved; DESIGN.md Sec. 6).
DEFAULT_SCALE = 64
#: Default trace length per program (requests).
DEFAULT_MULTI_REQUESTS = 50_000
DEFAULT_SINGLE_REQUESTS = 60_000


@dataclass(frozen=True)
class _RunKey:
    """Structural cache key for a simulation run."""

    kind: str
    programs: tuple[str, ...]
    policy: str
    config_token: str
    requests: int
    seed: int


def _config_token(config: SystemConfig) -> str:
    """A stable string identifying everything that affects simulation."""
    return repr(config)


class ExperimentRunner:
    """Builds configs and traces; runs and caches simulations."""

    def __init__(
        self,
        scale: int = DEFAULT_SCALE,
        multi_requests: int = DEFAULT_MULTI_REQUESTS,
        single_requests: int = DEFAULT_SINGLE_REQUESTS,
        seed: int = 0,
        verbose: bool = False,
        sp_reference: Optional[str] = "pom",
    ) -> None:
        self.scale = scale
        self.multi_requests = multi_requests
        self.single_requests = single_requests
        self.seed = seed
        self.verbose = verbose
        #: Policy whose stand-alone runs provide IPC_SP in Eq. (1).  The
        #: default references every scheme's slowdowns to the PoM
        #: baseline's uncontended IPCs, which is the only reading under
        #: which the paper's Figure 5 (+14% single-program) and Figure 11
        #: (+7% multiprogram weighted speedup) are mutually consistent.
        #: Pass None to use each scheme's own stand-alone runs instead.
        self.sp_reference = sp_reference
        self._cache: dict[_RunKey, SimulationResult] = {}

    # ------------------------------------------------------------------
    # Configurations
    # ------------------------------------------------------------------
    def quad_config(self, **overrides) -> SystemConfig:
        """The multi-program system (Table 8), at this runner's scale."""
        config = paper_quad_core(scale=self.scale)
        return replace(config, **overrides) if overrides else config

    def single_config(self, **overrides) -> SystemConfig:
        """The single-program system (Section 4.1), at this runner's scale."""
        config = paper_single_core(scale=self.scale)
        return replace(config, **overrides) if overrides else config

    # ------------------------------------------------------------------
    # Traces
    # ------------------------------------------------------------------
    def trace_for(
        self, program: str, instance: int = 0, requests: Optional[int] = None
    ) -> Trace:
        """Synthesize (or fetch memoized) one program instance's trace."""
        return synthesize_trace(
            program,
            num_requests=requests or self.multi_requests,
            scale=self.scale,
            seed=self.seed * 1000 + instance,
        )

    def workload_traces(
        self, programs: Sequence[str], requests: Optional[int] = None
    ) -> list[tuple[str, Trace]]:
        """Traces for a program mix; duplicates get distinct seeds."""
        seen: dict[str, int] = {}
        traces = []
        for program in programs:
            instance = seen.get(program, 0)
            seen[program] = instance + 1
            traces.append(
                (program, self.trace_for(program, instance, requests))
            )
        return traces

    # ------------------------------------------------------------------
    # Cached runs
    # ------------------------------------------------------------------
    def _run(
        self,
        kind: str,
        config: SystemConfig,
        policy: str,
        programs: Sequence[str],
        requests: int,
        track_rsm_regions: bool = False,
    ) -> SimulationResult:
        key = _RunKey(
            kind=kind,
            programs=tuple(programs),
            policy=policy,
            config_token=_config_token(config),
            requests=requests,
            seed=self.seed,
        )
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        driver = SimulationDriver(
            config,
            policy,
            self.workload_traces(programs, requests),
            seed=self.seed,
            track_rsm_regions=track_rsm_regions,
        )
        result = driver.run()
        self._cache[key] = result
        if self.verbose:
            print(f"  {kind} {'+'.join(programs)}: {result.summary_line()}")
        return result

    def run_single(
        self,
        program: str,
        policy: str,
        config: Optional[SystemConfig] = None,
        requests: Optional[int] = None,
        track_rsm_regions: bool = False,
    ) -> SimulationResult:
        """Run one program on the single-core system (Figures 5-9)."""
        return self._run(
            "single",
            config or self.single_config(),
            policy,
            [program],
            requests or self.single_requests,
            track_rsm_regions=track_rsm_regions,
        )

    def run_alone_in_quad(
        self,
        program: str,
        policy: str,
        config: Optional[SystemConfig] = None,
    ) -> SimulationResult:
        """Stand-alone reference run on the quad-core system (IPC_SP)."""
        return self._run(
            "alone",
            config or self.quad_config(),
            policy,
            [program],
            self.multi_requests,
        )

    def run_workload(
        self,
        workload_name: str,
        policy: str,
        config: Optional[SystemConfig] = None,
    ) -> SimulationResult:
        """Run one Table 10 workload on the quad-core system."""
        return self._run(
            "multi",
            config or self.quad_config(),
            policy,
            WORKLOADS[workload_name],
            self.multi_requests,
        )

    def mix_metrics(
        self,
        programs: Sequence[str],
        policy: str,
        config: Optional[SystemConfig] = None,
    ) -> WorkloadMetrics:
        """Metrics for an arbitrary program mix (not from Table 10)."""
        config = config or self.quad_config()
        multi = self._run("multi", config, policy, programs, self.multi_requests)
        reference = self.sp_reference or policy
        single_ipcs = [
            self.run_alone_in_quad(p.name, reference, config).program(0).ipc
            for p in multi.programs
        ]
        return WorkloadMetrics.from_results(multi, single_ipcs)

    def workload_metrics(
        self,
        workload_name: str,
        policy: str,
        config: Optional[SystemConfig] = None,
    ) -> WorkloadMetrics:
        """Slowdowns / weighted speedup / unfairness for one workload.

        Eq. (1)'s IPC_SP comes from stand-alone runs under
        :attr:`sp_reference` (default: the PoM baseline for every scheme,
        so normalized comparisons reflect the multiprogram behaviour; see
        the constructor docstring), or under ``policy`` itself when
        ``sp_reference`` is None.
        """
        config = config or self.quad_config()
        multi = self.run_workload(workload_name, policy, config)
        reference = self.sp_reference or policy
        single_ipcs = [
            self.run_alone_in_quad(p.name, reference, config).program(0).ipc
            for p in multi.programs
        ]
        return WorkloadMetrics.from_results(multi, single_ipcs)
