"""Streaming figure accumulators: fold sweeps into metrics cells.

The multiprogram figures (10-16) and the policy matrix are all the same
shape: a *cell* — one program mix under one policy — needs the mix run
plus each program's stand-alone reference run, and everything the figure
keeps from those results is a tiny :class:`CellMetrics`.  The
:class:`StreamedMetricsSweep` reducer computes each cell's metrics the
moment its last run completes and lets the executor drop the result
bytes immediately, so a sweep's parent footprint is bounded by the
widest in-flight cell frontier instead of the wave.

The contract (enforced by the property suite in
``tests/test_streaming.py``): for any completion order, any retry
schedule, and any subset of failed specs, the accumulator's final state
is identical to materializing the whole wave and computing the same
cells afterwards.  Cells are keyed by caller-chosen ids and all rollups
happen at finalize time, so nothing observable depends on arrival order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.exec.resilience import RunFailure
from repro.exec.spec import RunSpec
from repro.exec.streaming import GroupReducer
from repro.sim.metrics import WorkloadMetrics
from repro.sim.results import SimulationResult

if TYPE_CHECKING:  # runner imports this module; avoid the cycle at runtime
    from repro.common.config import SystemConfig
    from repro.experiments.runner import ExperimentRunner


@dataclass(frozen=True)
class CellMetrics:
    """Everything a figure keeps from one (mix, policy) cell.

    :class:`WorkloadMetrics` plus the two mix-run scalars the policy
    matrix reports — captured at fold time precisely so the full
    :class:`SimulationResult` never needs to be retained or re-fetched.
    """

    metrics: WorkloadMetrics
    total_swaps: int
    stc_hit_rate: float

    @classmethod
    def from_results(
        cls, multi: SimulationResult, single_ipcs: Sequence[float]
    ) -> "CellMetrics":
        return cls(
            metrics=WorkloadMetrics.from_results(multi, list(single_ipcs)),
            total_swaps=multi.total_swaps,
            stc_hit_rate=multi.stc_hit_rate,
        )


@dataclass(frozen=True)
class _CellPlan:
    """How to turn one completed group back into a cell."""

    mix_key: str
    #: program name -> stand-alone reference run's cache key.
    alone_keys: dict[str, str]
    reference: str


class StreamedMetricsSweep(GroupReducer):
    """Folds a figure sweep into :class:`CellMetrics`, one per cell.

    Usage: call :meth:`add_cell` once per (mix, policy) cell — it
    consults the runner's metrics memo (so repeated figures over the
    same cells cost nothing) and returns the specs the cell still needs
    — then hand the accumulated spec list and this reducer to
    :meth:`ExperimentRunner.run_streamed`.  Afterwards ``metrics`` holds
    every cell that completed and ``failed`` every cell that lost a run
    to a terminal failure.
    """

    def __init__(self, runner: "ExperimentRunner") -> None:
        super().__init__()
        self.runner = runner
        #: cell id -> computed metrics (completed cells only).
        self.metrics: dict[str, WorkloadMetrics] = {}
        #: cell id -> full cell record (adds the mix-run scalars).
        self.cells: dict[str, CellMetrics] = {}
        #: cell id -> the failure that sank it.
        self.failed: dict[str, RunFailure] = {}
        self._plans: dict[str, _CellPlan] = {}

    def add_cell(
        self,
        cell_id: str,
        programs: Sequence[str],
        policy: str,
        config: Optional["SystemConfig"] = None,
    ) -> list[RunSpec]:
        """Declare one cell; returns the specs it still needs run.

        A memo hit (this runner already computed the cell, streamed or
        not) records the cell immediately and returns no specs.
        Duplicate cell ids are idempotent no-ops.
        """
        if (
            cell_id in self.metrics
            or cell_id in self._plans
            or cell_id in self.failed
        ):
            return []
        runner = self.runner
        config = config if config is not None else runner.quad_config()
        reference = runner.sp_reference or policy
        mix_spec = runner.spec_mix(programs, policy, config)
        cached = runner.cached_cell(mix_spec, reference)
        if cached is not None:
            self.metrics[cell_id] = cached.metrics
            self.cells[cell_id] = cached
            return []
        alone_specs = {
            program: runner.spec_alone(program, reference, config)
            for program in dict.fromkeys(programs)
        }
        plan = _CellPlan(
            mix_key=mix_spec.cache_key(),
            alone_keys={
                program: spec.cache_key()
                for program, spec in alone_specs.items()
            },
            reference=reference,
        )
        self._plans[cell_id] = plan
        # May resolve (or fail) synchronously when another cell already
        # delivered every key, so the plan must be registered first.
        self.add_group(cell_id, [plan.mix_key, *plan.alone_keys.values()])
        return [mix_spec, *alone_specs.values()]

    # ------------------------------------------------------------------
    # GroupReducer hooks
    # ------------------------------------------------------------------
    def group_completed(
        self, group_id: str, results: dict[str, SimulationResult]
    ) -> None:
        plan = self._plans.pop(group_id)
        multi = results[plan.mix_key]
        single_ipcs = [
            results[plan.alone_keys[program.name]].program(0).ipc
            for program in multi.programs
        ]
        cell = CellMetrics.from_results(multi, single_ipcs)
        self.metrics[group_id] = cell.metrics
        self.cells[group_id] = cell
        self.runner.remember_cell(plan.mix_key, plan.reference, cell)

    def group_failed(self, group_id: str, failure: RunFailure) -> None:
        self._plans.pop(group_id, None)
        self.failed[group_id] = failure
