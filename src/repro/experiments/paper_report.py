"""EXPERIMENTS.md generation: paper-vs-measured for every artifact.

``generate_experiments_md(runner)`` runs (or loads) every registered
experiment and renders a markdown report pairing the paper's reported
values with the reproduction's measured ones, plus a pass/deviation note
per shape target.  The committed EXPERIMENTS.md is produced by this
module (see the header it writes).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.runner import ExperimentRunner
from repro.experiments.store import ResultStore


@dataclass(frozen=True)
class PaperExpectation:
    """What the paper reports for one artifact, and how to check it."""

    paper_claim: str
    #: Extracts the comparable measured headline from the result.
    measured: Callable[[ExperimentResult], str]
    #: Optional pass/fail shape check.
    shape_holds: Optional[Callable[[ExperimentResult], bool]] = None


def _geomean_improvement(higher_is_better: bool):
    def extract(result: ExperimentResult) -> str:
        gmean = result.summary.get("geomean")
        if gmean is None:
            return "n/a"
        change = gmean - 1.0 if higher_is_better else 1.0 - gmean
        best = result.summary.get("best_improvement")
        best_key = result.summary.get("best_key", "")
        extra = f", up to {best:+.0%} ({best_key})" if best is not None else ""
        return f"{change:+.1%} avg{extra}"

    return extract


def _shape_gmean(higher_is_better: bool, threshold: float = 1.0):
    def check(result: ExperimentResult) -> bool:
        gmean = result.summary.get("geomean")
        if gmean is None:
            return False
        return gmean > threshold if higher_is_better else gmean < threshold

    return check


def _bool_summary_all_true(result: ExperimentResult) -> bool:
    return all(
        value for value in result.summary.values() if isinstance(value, bool)
    )


EXPECTATIONS: dict[str, PaperExpectation] = {
    "table1": PaperExpectation(
        "structural: PoM organization, Table 2 parameters",
        lambda r: "all structural checks pass",
        _bool_summary_all_true,
    ),
    "fig2": PaperExpectation(
        "slowdowns diverge under PoM (w09: soplex 3.7 vs ~2.2)",
        lambda r: "; ".join(
            f"{k.split()[0]} spread {v:.2f}x"
            for k, v in r.summary.items()
            if isinstance(v, float)
        ),
        lambda r: any(
            isinstance(v, float) and v > 1.1 for v in r.summary.values()
        ),
    ),
    "table4": PaperExpectation(
        "sigma falls with M_samp; smoothing cuts sigma of SF_A ~3-5x",
        lambda r: "all shape checks pass"
        if _bool_summary_all_true(r)
        else "some shape checks FAIL",
        _bool_summary_all_true,
    ),
    "fig5": PaperExpectation(
        "MDM vs PoM IPC: +14% avg, up to +38% (lbm); omnetpp ~-1.5%",
        _geomean_improvement(True),
        _shape_gmean(True),
    ),
    "fig6": PaperExpectation(
        "M1 fraction up for most; down where swaps are refused (mcf)",
        _geomean_improvement(True),
    ),
    "fig7": PaperExpectation(
        "STC hit rates high; omnetpp ~70% lowest, mcf ~85%",
        lambda r: "; ".join(
            f"{name} {rate:.0f}%"
            for name, rate in r.rows
            if name in ("mcf", "omnetpp")
        ),
        lambda r: all(
            isinstance(v, bool) and v
            for v in r.summary.values()
            if isinstance(v, bool)
        ),
    ),
    "fig8": PaperExpectation(
        "mostly insensitive; mcf/omnetpp lose ~8% with half STC",
        lambda r: "half-STC worst case "
        + f"{min(row[1] for row in r.rows):.3f}",
    ),
    "fig9": PaperExpectation(
        "hit rates grow with STC size",
        lambda r: str(r.summary.get("programs with monotone hit rate", "")),
    ),
    "sens-twr": PaperExpectation(
        "MDM advantage: 12% (0.5x tWR) / 14% (1x) / 18% (2x)",
        lambda r: "; ".join(f"{row[0]}: {row[1]:.3f}" for row in r.rows),
        _bool_summary_all_true,
    ),
    "sens-ratio": PaperExpectation(
        "1:4 shrinks advantage to 12%; 1:16 keeps ~14%",
        lambda r: "; ".join(f"{row[0]}: {row[1]:.3f}" for row in r.rows),
        _bool_summary_all_true,
    ),
    "fig10": PaperExpectation(
        "MDM max slowdown vs PoM: -6% avg (up to -19%, w12)",
        _geomean_improvement(False),
        _shape_gmean(False),
    ),
    "fig11": PaperExpectation(
        "MDM weighted speedup vs PoM: +7% avg (up to +16%, w12)",
        _geomean_improvement(True),
        _shape_gmean(True),
    ),
    "fig12": PaperExpectation(
        "MDM energy efficiency vs PoM: +7% avg (up to +26%, w18)",
        _geomean_improvement(True),
    ),
    "fig13": PaperExpectation(
        "ProFess max slowdown vs PoM: -15% avg (up to -29%, w12)",
        _geomean_improvement(False),
        _shape_gmean(False),
    ),
    "fig14": PaperExpectation(
        "ProFess weighted speedup vs PoM: +12% avg (up to +29%, w19)",
        _geomean_improvement(True),
        _shape_gmean(True),
    ),
    "fig15": PaperExpectation(
        "ProFess energy efficiency vs PoM: +11% avg (up to +30%, w19)",
        _geomean_improvement(True),
        _shape_gmean(True),
    ),
    "fig16": PaperExpectation(
        "ProFess trades light programs' speed to relieve the worst",
        lambda r: "; ".join(
            f"{key.split()[0]}: {value}" for key, value in r.summary.items()
        ),
    ),
    "mempod-vs-pom": PaperExpectation(
        "MemPod AMMAT ~19%/18% longer than PoM (single/multi)",
        lambda r: (
            f"single {r.summary['single-program geomean']:.3f}, "
            f"multi {r.summary['multi-program geomean']:.3f}"
        ),
        lambda r: r.summary["single-program geomean"] > 1.0,
    ),
}


def _header(description: str) -> list[str]:
    return [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Generated by `repro.experiments.paper_report`",
        f"({description}).",
        "",
        "Absolute magnitudes are not comparable to the paper (different",
        "substrate and scale); the *shape* annotation records whether the",
        "paper's qualitative claim holds in this reproduction.",
        "",
        "Profiling a run: `profess perf` measures kernel throughput on two",
        "fixed scenarios and writes `BENCH_kernel.json` (`--quick` for",
        "CI-sized traces, `--components` for a per-component time",
        "breakdown, `--baseline <json>` to fail on a throughput",
        "regression); `profess run <id> --profile` prints the cProfile",
        "hot-function table for one experiment (use `--jobs 1` so the",
        "simulation stays in the profiled process).  See DESIGN.md §10.",
        "",
        "Reading the CI perf trend: every CI run's *Summary* page carries",
        "a kernel-benchmark table (one row per scenario: events/sec,",
        "requests/sec, and the delta against the checked-in",
        "`benchmarks/baselines/kernel_baseline.json`), plus the trace-",
        "decode before/after line (DESIGN.md §12).  Deltas are best-of-3",
        "on shared runners, so read the *trend across commits*, not one",
        "run; the hard gate only fails below 0.7× baseline.  A `:warning:`",
        "line flags a baseline recorded under a different Python minor",
        "version or machine — deltas there may reflect the interpreter,",
        "not the kernel.  The raw payload is the `BENCH_kernel-<sha>`",
        "artifact on each run.",
        "",
        "Resuming an interrupted sweep: run the long figure sweeps with a",
        "disk cache and a journal, e.g. `profess run fig10 fig11 fig12",
        "fig13 fig14 fig15 fig16 --jobs 8 --cache-dir .cache --retries 2",
        "--run-timeout 900`.  Every completed simulation lands in the",
        "cache and `.cache/journal.jsonl` records each submission and",
        "outcome, so a crash, an eviction, or a Ctrl-C loses at most the",
        "in-flight runs.  Rerun the identical command with `--resume`",
        "added: the journal replay prints a",
        "completed/failed/pending summary, completed runs are served",
        "from the cache (integrity-checked; corrupt entries are moved to",
        "`.cache/quarantine/` once and re-simulated), and only failures",
        "and pending work re-execute.  Runs that still fail after the",
        "retry budget render as FAILED rows with a failure table on",
        "stderr (exit 1) rather than aborting the sweep; add",
        "`--fail-fast` to abort on the first failure instead.  See",
        "DESIGN.md §15 for the full failure-handling contract.",
        "",
        "Measuring sweep memory footprint: `profess perf --sweep",
        "--sweep-specs 200 --jobs 4 --transport shm` runs a synthetic",
        "200-spec wave through the shared-memory transport with a",
        "streaming reducer and writes `BENCH_sweep.json` (aggregate",
        "requests/sec plus the parent's peak RSS in MiB); `--baseline",
        "benchmarks/baselines/sweep_rss_baseline.json` fails below",
        "0.7× baseline throughput or above the `--max-rss-ratio`",
        "(default 1.4×) RSS ceiling — a change that re-materializes",
        "full results in the parent scales RSS with spec count and",
        "trips it.  `profess run <id> --verbose` prints the same",
        "`parent peak RSS` line after any sweep, and `--transport",
        "pickle|shm` pins the transport for an A/B (results are",
        "byte-identical either way; only memory and speed move).  CI",
        "runs this as the `sweep-scale` job with a delta table on the",
        "run's *Summary* page.  See DESIGN.md §17.",
        "",
    ]


def _section(result: ExperimentResult) -> list[str]:
    experiment_id = result.experiment_id
    expectation = EXPECTATIONS.get(experiment_id)
    lines = [f"## {experiment_id} — {result.title}", ""]
    if expectation is not None:
        shape = ""
        if expectation.shape_holds is not None:
            shape = (
                " — **shape holds**"
                if expectation.shape_holds(result)
                else " — **shape DEVIATES**"
            )
        lines.append(f"* paper: {expectation.paper_claim}")
        lines.append(f"* measured: {expectation.measured(result)}{shape}")
    elif experiment_id.startswith("ablation"):
        lines.append("* ablation beyond the paper (no paper value)")
    else:
        lines.append("* extension beyond the paper (no paper value)")
    lines.extend(["", "```", result.render(), "```", ""])
    return lines


def generate_experiments_md(
    runner: ExperimentRunner,
    output_path: str | Path = "EXPERIMENTS.md",
    store: Optional[ResultStore] = None,
    experiment_ids: Optional[list[str]] = None,
) -> str:
    """Run every registered experiment and render EXPERIMENTS.md.

    The report file is rewritten incrementally after every experiment,
    so a partially complete run still leaves a usable document.
    """
    import time

    ids = experiment_ids if experiment_ids is not None else list(EXPERIMENTS)
    lines = _header(
        f"scale=1/{runner.scale}, {runner.multi_requests} requests/program "
        f"multiprogram, {runner.single_requests} single, seed={runner.seed}"
    )
    for experiment_id in ids:
        started = time.perf_counter()
        result = run_experiment(experiment_id, runner)
        if store is not None:
            store.save(result)
        if runner.verbose:
            print(
                f"[{experiment_id} done in "
                f"{time.perf_counter() - started:.1f}s; "
                f"{format_run_stats(runner)}]"
            )
        lines.extend(_section(result))
        Path(output_path).write_text("\n".join(lines))
    text = "\n".join(lines)
    Path(output_path).write_text(text)
    return text


def format_run_stats(runner: ExperimentRunner) -> str:
    """Cache-hit counters + simulation count, for --verbose output.

    A fully warm run reads ``simulations executed: 0`` — the acceptance
    signal that no re-simulation happened (asserted in CI).
    """
    stats = runner.run_stats()
    line = (
        f"cache: disk hits={stats['disk_hits']} "
        f"misses={stats['disk_misses']} stores={stats['disk_stores']} "
        f"memory hits={stats['memory_hits']}; "
        f"simulations executed: {stats['executed']}"
    )
    resilience = {
        key: stats[key]
        for key in ("retried", "failures", "quarantined", "store_errors")
        if stats[key]
    }
    if resilience:
        extras = " ".join(f"{k}={v}" for k, v in resilience.items())
        line += f"; resilience: {extras}"
    return line


def render_from_store(
    store: ResultStore,
    output_path: str | Path = "EXPERIMENTS.md",
    description: str = "rendered from stored results",
) -> str:
    """Render EXPERIMENTS.md from previously stored JSON results.

    Experiments without a stored result are listed as missing; no
    simulation runs.
    """
    lines = _header(description)
    for experiment_id in EXPERIMENTS:
        result = store.load(experiment_id)
        if result is None:
            lines.append(f"## {experiment_id} — (no stored result)")
            lines.append("")
            continue
        lines.extend(_section(result))
    text = "\n".join(lines)
    Path(output_path).write_text(text)
    return text
