"""Section 2.5's MemPod-vs-PoM comparison.

The paper finds that in this DRAM+NVM technology setting MemPod's average
main-memory access time (AMMAT, MemPod's preferred metric) is ~19% / ~18%
longer than PoM's in single-/multi-program runs, because MEA-based
interval migration performs no cost-benefit analysis and cannot adapt to
the technology characteristics.
"""

from __future__ import annotations

from repro.common.stats import geomean
from repro.experiments.base import ExperimentResult
from repro.experiments.runner import ExperimentRunner
from repro.workloads.table9 import FIG5_PROGRAMS
from repro.workloads.table10 import FAIRNESS_DETAIL_WORKLOADS


def run(runner: ExperimentRunner) -> ExperimentResult:
    """AMMAT of MemPod normalized to PoM (>1 means MemPod is slower)."""
    rows = []
    single_ratios = {}
    for program in FIG5_PROGRAMS:
        pom = runner.run_single(program, "pom").average_read_latency
        mempod = runner.run_single(program, "mempod").average_read_latency
        ratio = mempod / pom if pom else float("nan")
        single_ratios[program] = ratio
        rows.append(["single", program, pom, mempod, ratio])
    multi_ratios = {}
    for name in FAIRNESS_DETAIL_WORKLOADS:
        pom = runner.run_workload(name, "pom").average_read_latency
        mempod = runner.run_workload(name, "mempod").average_read_latency
        ratio = mempod / pom if pom else float("nan")
        multi_ratios[name] = ratio
        rows.append(["multi", name, pom, mempod, ratio])
    return ExperimentResult(
        experiment_id="mempod-vs-pom",
        title="MemPod AMMAT normalized to PoM (Section 2.5)",
        headers=["mode", "case", "PoM AMMAT (cy)", "MemPod AMMAT (cy)", "ratio"],
        rows=rows,
        summary={
            "single-program geomean": geomean(list(single_ratios.values())),
            "multi-program geomean": geomean(list(multi_ratios.values())),
            "paper shape (MemPod slower, ratio > 1)": (
                geomean(list(single_ratios.values())) > 1.0
            ),
        },
    )
