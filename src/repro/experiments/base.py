"""Common experiment-result container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.report import format_table


@dataclass
class ExperimentResult:
    """Output of one experiment driver: a table plus a summary."""

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: list
    summary: dict = field(default_factory=dict)
    notes: str = ""

    def render(self) -> str:
        """Human-readable report."""
        parts = [f"== {self.experiment_id}: {self.title} =="]
        parts.append(format_table(self.headers, self.rows))
        if self.summary:
            parts.append("")
            for key, value in self.summary.items():
                if isinstance(value, float):
                    parts.append(f"{key}: {value:.4f}")
                else:
                    parts.append(f"{key}: {value}")
        if self.notes:
            parts.append("")
            parts.append(self.notes)
        return "\n".join(parts)
