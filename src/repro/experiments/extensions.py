"""Extension experiments beyond the paper's artifacts.

* ``ext-rsm-pom`` — Section 6 claims RSM "can be integrated with other
  migration algorithms instead of MDM".  This experiment decomposes
  ProFess's gains by racing four schemes against the PoM baseline on the
  Figure 2 workloads: PoM, RSM-guided PoM (guidance only), MDM (cost-
  benefit only), and ProFess (both).
* ``ext-policy-matrix`` — every implemented policy (including CAMEO,
  SILC-FM, and MemPod) on one contended workload, the full Table 2 cast
  under identical conditions.
"""

from __future__ import annotations

from repro.common.stats import geomean
from repro.experiments.base import ExperimentResult
from repro.experiments.runner import ExperimentRunner
from repro.workloads.generator import random_mixes
from repro.workloads.table10 import FAIRNESS_DETAIL_WORKLOADS

DECOMPOSITION_POLICIES = ("rsm-pom", "mdm", "profess")
MATRIX_POLICIES = (
    "static",
    "cameo",
    "silcfm",
    "mempod",
    "pom",
    "rsm-pom",
    "mdm",
    "profess",
)


def run_rsm_pom(runner: ExperimentRunner) -> ExperimentResult:
    """Decompose ProFess: guidance-only vs cost-benefit-only vs both."""
    rows = []
    aggregates = {policy: {"unf": [], "ws": []} for policy in DECOMPOSITION_POLICIES}
    for name in FAIRNESS_DETAIL_WORKLOADS:
        pom = runner.workload_metrics(name, "pom")
        for policy in DECOMPOSITION_POLICIES:
            ours = runner.workload_metrics(name, policy)
            unf = ours.unfairness / pom.unfairness
            ws = ours.weighted_speedup / pom.weighted_speedup
            aggregates[policy]["unf"].append(unf)
            aggregates[policy]["ws"].append(ws)
            rows.append([name, policy, unf, ws])
    summary = {}
    for policy in DECOMPOSITION_POLICIES:
        summary[f"{policy} geomean unfairness vs PoM"] = geomean(
            aggregates[policy]["unf"]
        )
        summary[f"{policy} geomean weighted speedup vs PoM"] = geomean(
            aggregates[policy]["ws"]
        )
    return ExperimentResult(
        experiment_id="ext-rsm-pom",
        title="Decomposing ProFess: RSM guidance vs MDM cost-benefit",
        headers=["workload", "policy", "unfairness vs PoM", "WS vs PoM"],
        rows=rows,
        summary=summary,
        notes=(
            "Extension beyond the paper (Section 6 suggests RSM composes "
            "with other algorithms). Expected: rsm-pom improves fairness "
            "but less performance than MDM; profess combines both."
        ),
    )


def run_random_mixes(
    runner: ExperimentRunner, count: int = 6
) -> ExperimentResult:
    """ProFess vs PoM on random mixes beyond Table 10 (robustness).

    Expected: the average fairness and weighted-speedup improvements
    persist on mixes the policies were never tuned against.
    """
    mixes = random_mixes(seed=runner.seed + 17, count=count)
    rows = []
    unf, ws = [], []
    for label, programs in mixes.items():
        pom = runner.mix_metrics(programs, "pom")
        profess = runner.mix_metrics(programs, "profess")
        unf_ratio = profess.unfairness / pom.unfairness
        ws_ratio = profess.weighted_speedup / pom.weighted_speedup
        unf.append(unf_ratio)
        ws.append(ws_ratio)
        rows.append(["+".join(programs), unf_ratio, ws_ratio])
    return ExperimentResult(
        experiment_id="ext-random-mixes",
        title="ProFess vs PoM on random program mixes",
        headers=["mix", "unfairness vs PoM", "WS vs PoM"],
        rows=rows,
        summary={
            "geomean unfairness ratio": geomean(unf),
            "geomean weighted-speedup ratio": geomean(ws),
        },
        notes="Robustness check on mixes outside Table 10.",
    )


def run_prediction_accuracy(runner: ExperimentRunner) -> ExperimentResult:
    """How well Eq. (8) predicts remaining accesses, per program class.

    Runs MDM with prediction recording on a streaming program (lbm), a
    hot-set program (zeusmp), and an irregular one (omnetpp), and reports
    calibration: bias, MAE, rank correlation, and hindsight decision
    accuracy at the min_benefit threshold.  Quantifies the paper's core
    mechanism directly — something the paper itself never measures.
    """
    from repro.analysis.decisions import calibrate
    from repro.core.mdm import MDMPolicy
    from repro.sim.engine import SimulationDriver

    config = runner.single_config()
    rows = []
    accuracies = {}
    for program in ("lbm", "zeusmp", "omnetpp", "mcf"):
        policy = MDMPolicy(config, record_predictions=True)
        driver = SimulationDriver(
            config,
            policy,
            runner.workload_traces([program], runner.single_requests),
            seed=runner.seed,
        )
        driver.run()
        report = calibrate(
            policy.prediction_log, min_benefit=config.mdm.min_benefit
        )
        accuracies[program] = report.decision_accuracy
        rows.append(
            [
                program,
                report.pairs,
                report.bias,
                report.mean_absolute_error,
                report.rank_correlation,
                report.decision_accuracy,
            ]
        )
    return ExperimentResult(
        experiment_id="ext-prediction-accuracy",
        title="MDM remaining-access predictor calibration (Eq. 8)",
        headers=[
            "program",
            "pairs",
            "bias",
            "MAE",
            "rank corr",
            "decision accuracy",
        ],
        rows=rows,
        summary={
            "mean decision accuracy": sum(accuracies.values())
            / len(accuracies)
        },
        notes=(
            "Extension: direct measurement of the paper's core mechanism. "
            "Actuals are right-censored at the 6-bit counter saturation."
        ),
    )


def run_policy_matrix(runner: ExperimentRunner) -> ExperimentResult:
    """All implemented policies on one contended workload (w09)."""
    rows = []
    for policy in MATRIX_POLICIES:
        metrics = runner.workload_metrics("w09", policy)
        result = runner.run_workload("w09", policy)
        rows.append(
            [
                policy,
                metrics.weighted_speedup,
                metrics.unfairness,
                result.total_swaps,
                result.stc_hit_rate,
                metrics.energy_efficiency,
            ]
        )
    return ExperimentResult(
        experiment_id="ext-policy-matrix",
        title="All migration policies on w09 (identical organization)",
        headers=[
            "policy",
            "weighted speedup",
            "max slowdown",
            "swaps",
            "STC hit rate",
            "req/J",
        ],
        rows=rows,
    )
