"""Extension experiments beyond the paper's artifacts.

* ``ext-rsm-pom`` — Section 6 claims RSM "can be integrated with other
  migration algorithms instead of MDM".  This experiment decomposes
  ProFess's gains by racing four schemes against the PoM baseline on the
  Figure 2 workloads: PoM, RSM-guided PoM (guidance only), MDM (cost-
  benefit only), and ProFess (both).
* ``ext-policy-matrix`` — the cross-product of the registry's
  composition axes (base algorithm x RSM guidance x STC replacement) on
  one contended workload: the full Table 2 cast plus every guided and
  axis-varied composition, under identical conditions.

Both sweeps derive their policy sets from the composable registry
(:mod:`repro.policies.registry`) instead of hard-coded name tuples, so
registering a new policy automatically enrolls it.
"""

from __future__ import annotations

from typing import Tuple

from typing import Optional, Sequence

from repro.common.stats import geomean
from repro.exec import format_failure_table
from repro.experiments.accumulators import StreamedMetricsSweep
from repro.experiments.base import ExperimentResult
from repro.experiments.runner import ExperimentRunner
from repro.policies.registry import (
    PolicySpec,
    guided_bases,
    iter_registered,
)
from repro.workloads.generator import random_mixes
from repro.workloads.table10 import FAIRNESS_DETAIL_WORKLOADS, WORKLOADS

#: The contended Table 10 workload every matrix cell runs on.
MATRIX_WORKLOAD = "w09"
#: STC replacement axis values the matrix sweeps (``lru`` is the
#: registry default and reuses cached plain-policy runs).
MATRIX_STC_REPLACEMENTS = ("lru", "lfu")


def decomposition_policies() -> Tuple[str, ...]:
    """The ``ext-rsm-pom`` cast, derived from the registry.

    Every guided registration contributes its base algorithm (the
    cost-benefit-only arm, skipping the PoM baseline itself) and the
    guided composition; registering a new RSM-guided policy enrolls it
    automatically.
    """
    names: list[str] = []
    for entry in iter_registered():
        if not entry.guidance:
            continue
        if entry.base != "pom" and entry.base not in names:
            names.append(entry.base)
        names.append(entry.name)
    return tuple(names)


def matrix_cells() -> Tuple[PolicySpec, ...]:
    """The ``ext-policy-matrix`` cross-product as :class:`PolicySpec`.

    Axes: every registered base algorithm x RSM guidance (where a guided
    implementation exists) x :data:`MATRIX_STC_REPLACEMENTS`.  The
    ``lru`` column leaves the spec's STC axis at "inherit" so those
    cells canonicalize to plain registered names and share cache
    entries with the rest of the suite.
    """
    guided = set(guided_bases())
    cells: list[PolicySpec] = []
    for entry in iter_registered():
        if entry.guidance:
            continue
        for guidance in (False, True):
            if guidance and entry.base not in guided:
                continue
            for stc in MATRIX_STC_REPLACEMENTS:
                cells.append(
                    PolicySpec(
                        base=entry.base,
                        guidance=guidance,
                        stc_replacement="" if stc == "lru" else stc,
                    )
                )
    return tuple(cells)


def run_rsm_pom(runner: ExperimentRunner) -> ExperimentResult:
    """Decompose ProFess: guidance-only vs cost-benefit-only vs both."""
    policies = decomposition_policies()
    rows = []
    aggregates = {policy: {"unf": [], "ws": []} for policy in policies}
    for name in FAIRNESS_DETAIL_WORKLOADS:
        pom = runner.workload_metrics(name, "pom")
        for policy in policies:
            ours = runner.workload_metrics(name, policy)
            unf = ours.unfairness / pom.unfairness
            ws = ours.weighted_speedup / pom.weighted_speedup
            aggregates[policy]["unf"].append(unf)
            aggregates[policy]["ws"].append(ws)
            rows.append([name, policy, unf, ws])
    summary = {}
    for policy in policies:
        summary[f"{policy} geomean unfairness vs PoM"] = geomean(
            aggregates[policy]["unf"]
        )
        summary[f"{policy} geomean weighted speedup vs PoM"] = geomean(
            aggregates[policy]["ws"]
        )
    return ExperimentResult(
        experiment_id="ext-rsm-pom",
        title="Decomposing ProFess: RSM guidance vs MDM cost-benefit",
        headers=["workload", "policy", "unfairness vs PoM", "WS vs PoM"],
        rows=rows,
        summary=summary,
        notes=(
            "Extension beyond the paper (Section 6 suggests RSM composes "
            "with other algorithms). Expected: rsm-pom improves fairness "
            "but less performance than MDM; profess combines both."
        ),
    )


def run_random_mixes(
    runner: ExperimentRunner, count: int = 6
) -> ExperimentResult:
    """ProFess vs PoM on random mixes beyond Table 10 (robustness).

    Expected: the average fairness and weighted-speedup improvements
    persist on mixes the policies were never tuned against.
    """
    mixes = random_mixes(seed=runner.seed + 17, count=count)
    rows = []
    unf, ws = [], []
    for label, programs in mixes.items():
        pom = runner.mix_metrics(programs, "pom")
        profess = runner.mix_metrics(programs, "profess")
        unf_ratio = profess.unfairness / pom.unfairness
        ws_ratio = profess.weighted_speedup / pom.weighted_speedup
        unf.append(unf_ratio)
        ws.append(ws_ratio)
        rows.append(["+".join(programs), unf_ratio, ws_ratio])
    return ExperimentResult(
        experiment_id="ext-random-mixes",
        title="ProFess vs PoM on random program mixes",
        headers=["mix", "unfairness vs PoM", "WS vs PoM"],
        rows=rows,
        summary={
            "geomean unfairness ratio": geomean(unf),
            "geomean weighted-speedup ratio": geomean(ws),
        },
        notes="Robustness check on mixes outside Table 10.",
    )


def run_prediction_accuracy(runner: ExperimentRunner) -> ExperimentResult:
    """How well Eq. (8) predicts remaining accesses, per program class.

    Runs MDM with prediction recording on a streaming program (lbm), a
    hot-set program (zeusmp), and an irregular one (omnetpp), and reports
    calibration: bias, MAE, rank correlation, and hindsight decision
    accuracy at the min_benefit threshold.  Quantifies the paper's core
    mechanism directly — something the paper itself never measures.
    """
    from repro.analysis.decisions import calibrate
    from repro.policies.registry import build_policy
    from repro.sim.engine import SimulationDriver

    config = runner.single_config()
    rows = []
    accuracies = {}
    for program in ("lbm", "zeusmp", "omnetpp", "mcf"):
        policy = build_policy("mdm", config, record_predictions=True)
        driver = SimulationDriver(
            config,
            policy,
            runner.workload_traces([program], runner.single_requests),
            seed=runner.seed,
        )
        driver.run()
        report = calibrate(
            policy.prediction_log, min_benefit=config.mdm.min_benefit
        )
        accuracies[program] = report.decision_accuracy
        rows.append(
            [
                program,
                report.pairs,
                report.bias,
                report.mean_absolute_error,
                report.rank_correlation,
                report.decision_accuracy,
            ]
        )
    return ExperimentResult(
        experiment_id="ext-prediction-accuracy",
        title="MDM remaining-access predictor calibration (Eq. 8)",
        headers=[
            "program",
            "pairs",
            "bias",
            "MAE",
            "rank corr",
            "decision accuracy",
        ],
        rows=rows,
        summary={
            "mean decision accuracy": sum(accuracies.values())
            / len(accuracies)
        },
        notes=(
            "Extension: direct measurement of the paper's core mechanism. "
            "Actuals are right-censored at the 6-bit counter saturation."
        ),
    )


def _streamed_matrix_cells(
    runner: ExperimentRunner, cells: Sequence[PolicySpec]
) -> Optional[StreamedMetricsSweep]:
    """Run the matrix as one streamed wave; None for legacy stubs.

    One accumulator cell per canonical policy on :data:`MATRIX_WORKLOAD`;
    the mix-run scalars the table reports (swaps, STC hit rate) are
    captured at fold time, so the full results are never retained.
    """
    if not hasattr(runner, "run_streamed"):
        return None
    accumulator = StreamedMetricsSweep(runner)
    wave: list = []
    for cell in cells:
        wave.extend(
            accumulator.add_cell(
                cell.canonical(), WORKLOADS[MATRIX_WORKLOAD], cell.canonical()
            )
        )
    runner.run_streamed(wave, accumulator)
    return accumulator


def run_policy_matrix(runner: ExperimentRunner) -> ExperimentResult:
    """Cross-product policy/axis sweep on one contended workload (w09).

    One cell per point of :func:`matrix_cells` (base algorithm x RSM
    guidance x STC replacement); the whole wave is prefetched through
    the runner's executor so ``--jobs N`` fans the sweep out over the
    process pool with results identical to serial execution.  The
    CLI's repeatable ``--policy SPEC`` (``runner.policy_specs``)
    restricts the sweep to explicit compositions.
    """
    restricted = getattr(runner, "policy_specs", None)
    if restricted:
        cells = tuple(PolicySpec.parse(spec) for spec in restricted)
    else:
        cells = matrix_cells()
    streamed = _streamed_matrix_cells(runner, cells)
    rows = []
    speedups_by_axis: dict[str, dict[str, list[float]]] = {
        "base": {},
        "guidance": {},
        "stc": {},
    }
    failed_cells = 0
    for cell in cells:
        policy = cell.canonical()
        guidance = "rsm" if cell.guidance else "-"
        stc = cell.stc_replacement or "lru"
        if streamed is not None:
            record = streamed.cells.get(policy)
            if record is None:
                # The cell lost a run after retries: a FAILED row, never
                # a figure abort (the failure table lands in the notes).
                rows.append(
                    [policy, cell.base, guidance, stc,
                     "FAILED", "FAILED", "-", "-", "-"]
                )
                failed_cells += 1
                continue
            metrics = record.metrics
            total_swaps = record.total_swaps
            stc_hit_rate = record.stc_hit_rate
        else:
            metrics = runner.workload_metrics(MATRIX_WORKLOAD, policy)
            result = runner.run_workload(MATRIX_WORKLOAD, policy)
            total_swaps = result.total_swaps
            stc_hit_rate = result.stc_hit_rate
        rows.append(
            [
                policy,
                cell.base,
                guidance,
                stc,
                metrics.weighted_speedup,
                metrics.unfairness,
                total_swaps,
                stc_hit_rate,
                metrics.energy_efficiency,
            ]
        )
        for axis, value in (
            ("base", cell.base),
            ("guidance", guidance),
            ("stc", stc),
        ):
            speedups_by_axis[axis].setdefault(value, []).append(
                metrics.weighted_speedup
            )
    summary = {}
    for axis, groups in speedups_by_axis.items():
        if len(groups) < 2:
            continue  # a --policy restriction collapsed this axis
        for value, speedups in groups.items():
            summary[f"geomean WS [{axis}={value}]"] = geomean(speedups)
    notes = (
        "Cells derive from the composable policy registry; the lru "
        "column shares cache entries with the plain-policy suite."
    )
    if failed_cells:
        table = format_failure_table(runner.failures)
        notes = f"{notes}\n\n{table}"
    return ExperimentResult(
        experiment_id="ext-policy-matrix",
        title=(
            f"Policy/axis cross-product on {MATRIX_WORKLOAD} "
            "(identical organization)"
        ),
        headers=[
            "policy",
            "base",
            "guidance",
            "stc",
            "weighted speedup",
            "max slowdown",
            "swaps",
            "STC hit rate",
            "req/J",
        ],
        rows=rows,
        summary=summary,
        notes=notes,
    )
