"""Figures 8 and 9: sensitivity of MDM to STC size.

IPC with a half-size and a double-size STC normalized to the default,
plus the corresponding STC hit rates.  Paper shape: programs are largely
insensitive, except the irregular ones (mcf, omnetpp) which lose several
percent with a half-size STC as premature evictions add noise to the MDM
statistics; a larger STC does not necessarily help.
"""

from __future__ import annotations

from dataclasses import replace

from repro.common.config import STCConfig, SystemConfig
from repro.experiments.base import ExperimentResult
from repro.experiments.runner import ExperimentRunner
from repro.workloads.table9 import FIG5_PROGRAMS

#: STC capacity multipliers relative to the single-core default (32 KB in
#: the paper): half, default, double.
SIZE_FACTORS = (0.5, 1.0, 2.0)


def _with_stc_capacity(config: SystemConfig, capacity: int) -> SystemConfig:
    return replace(
        config,
        stc=STCConfig(
            capacity=capacity,
            associativity=config.stc.associativity,
            entry_size=config.stc.entry_size,
            latency_cycles=config.stc.latency_cycles,
        ),
    )


def stc_size_sweep(runner: ExperimentRunner) -> dict[str, dict[float, object]]:
    """results[program][size_factor] -> SimulationResult under MDM."""
    base = runner.single_config()
    results: dict[str, dict[float, object]] = {}
    for program in FIG5_PROGRAMS:
        results[program] = {}
        for factor in SIZE_FACTORS:
            capacity = max(int(base.stc.capacity * factor), 256)
            config = _with_stc_capacity(base, capacity)
            results[program][factor] = runner.run_single(
                program, "mdm", config=config
            )
    return results


def run(runner: ExperimentRunner) -> ExperimentResult:
    """Reproduce Figure 8 (IPC normalized to the default STC size)."""
    sweep = stc_size_sweep(runner)
    rows = []
    for program, by_factor in sweep.items():
        default_ipc = by_factor[1.0].program(0).ipc
        rows.append(
            [
                program,
                by_factor[0.5].program(0).ipc / default_ipc,
                1.0,
                by_factor[2.0].program(0).ipc / default_ipc,
            ]
        )
    return ExperimentResult(
        experiment_id="fig8",
        title="MDM IPC sensitivity to STC size (norm. to default)",
        headers=["program", "half STC", "default", "double STC"],
        rows=rows,
        notes=(
            "Paper shape: mostly flat; mcf/omnetpp lose with the half-size "
            "STC; doubling does not reliably help."
        ),
    )


def run_fig9(runner: ExperimentRunner) -> ExperimentResult:
    """Reproduce Figure 9 (STC hit rates vs STC size)."""
    sweep = stc_size_sweep(runner)
    rows = [
        [
            program,
            100 * by_factor[0.5].stc_hit_rate,
            100 * by_factor[1.0].stc_hit_rate,
            100 * by_factor[2.0].stc_hit_rate,
        ]
        for program, by_factor in sweep.items()
    ]
    monotone = sum(
        1 for row in rows if row[1] <= row[2] + 1e-9 and row[2] <= row[3] + 1e-9
    )
    return ExperimentResult(
        experiment_id="fig9",
        title="STC hit rates vs STC size (%)",
        headers=["program", "half STC", "default", "double STC"],
        rows=rows,
        summary={"programs with monotone hit rate": f"{monotone}/{len(rows)}"},
    )
