"""Ablation studies of the design choices DESIGN.md calls out.

These go beyond the paper: they quantify how much each knob of MDM / RSM /
ProFess contributes at simulation scale.

* QAC bucket boundaries (Table 5),
* ``min_benefit`` (the swap-cost constant K),
* RSM hysteresis thresholds and the Case-3 product rule (Table 7),
* RSM smoothing parameter alpha.
"""

from __future__ import annotations

from dataclasses import replace

from repro.common.config import ProFessConfig, RSMConfig
from repro.common.stats import geomean
from repro.experiments.base import ExperimentResult
from repro.experiments.fig05 import single_program_ratios
from repro.experiments.runner import ExperimentRunner
from repro.workloads.table10 import FAIRNESS_DETAIL_WORKLOADS

QAC_VARIANTS = {
    "paper (1,8,32)": (1, 8, 32),
    "finer (1,4,16)": (1, 4, 16),
    "coarser (2,16,48)": (2, 16, 48),
}

MIN_BENEFIT_VALUES = (2.0, 4.0, 8.0, 16.0, 32.0)

RSM_THRESHOLD_VARIANTS = {
    "no hysteresis": ProFessConfig(sf_threshold=0.0),
    "paper (1/32)": ProFessConfig(sf_threshold=1.0 / 32.0),
    "wide (1/8)": ProFessConfig(sf_threshold=1.0 / 8.0),
    "no case 3": ProFessConfig(case3_enabled=False),
}

ALPHA_VALUES = (0.03125, 0.125, 0.5)


def run_qac(runner: ExperimentRunner) -> ExperimentResult:
    """MDM-vs-PoM gain under different QAC bucket boundaries."""
    rows = []
    for label, boundaries in QAC_VARIANTS.items():
        base = runner.single_config()
        config = replace(
            base,
            mdm=replace(base.mdm, qac_boundaries=boundaries),
        )
        ratios = single_program_ratios(runner, config=config)
        rows.append([label, geomean(list(ratios.values()))])
    return ExperimentResult(
        experiment_id="ablation-qac",
        title="QAC bucket-boundary ablation (MDM/PoM geomean IPC)",
        headers=["boundaries", "geomean MDM/PoM"],
        rows=rows,
    )


def run_min_benefit(runner: ExperimentRunner) -> ExperimentResult:
    """MDM-vs-PoM gain as min_benefit sweeps around the derived K."""
    rows = []
    best = None
    for value in MIN_BENEFIT_VALUES:
        base = runner.single_config()
        config = replace(base, mdm=replace(base.mdm, min_benefit=value))
        ratios = single_program_ratios(runner, config=config)
        gain = geomean(list(ratios.values()))
        rows.append([value, gain])
        if best is None or gain > best[1]:
            best = (value, gain)
    return ExperimentResult(
        experiment_id="ablation-min-benefit",
        title="min_benefit (K) sweep (MDM/PoM geomean IPC)",
        headers=["min_benefit", "geomean MDM/PoM"],
        rows=rows,
        summary={"best min_benefit": best[0], "best gain": best[1]},
    )


def run_rsm_thresholds(runner: ExperimentRunner) -> ExperimentResult:
    """ProFess fairness under hysteresis / Case-3 variants (w09/w16/w19)."""
    rows = []
    for label, profess_cfg in RSM_THRESHOLD_VARIANTS.items():
        config = replace(runner.quad_config(), profess=profess_cfg)
        unfairness = []
        for name in FAIRNESS_DETAIL_WORKLOADS:
            pom = runner.workload_metrics(name, "pom")
            ours = runner.workload_metrics(name, "profess", config=config)
            unfairness.append(ours.unfairness / pom.unfairness)
        rows.append([label, geomean(unfairness)])
    return ExperimentResult(
        experiment_id="ablation-rsm-thresholds",
        title="ProFess hysteresis / Case-3 ablation (unfairness vs PoM)",
        headers=["variant", "geomean max-slowdown ratio"],
        rows=rows,
    )


def run_alpha(runner: ExperimentRunner) -> ExperimentResult:
    """RSM smoothing-parameter ablation on the detail workloads."""
    rows = []
    for alpha in ALPHA_VALUES:
        base = runner.quad_config()
        config = replace(
            base, rsm=RSMConfig(m_samp=base.rsm.m_samp, alpha=alpha)
        )
        unfairness = []
        for name in FAIRNESS_DETAIL_WORKLOADS:
            pom = runner.workload_metrics(name, "pom")
            ours = runner.workload_metrics(name, "profess", config=config)
            unfairness.append(ours.unfairness / pom.unfairness)
        rows.append([alpha, geomean(unfairness)])
    return ExperimentResult(
        experiment_id="ablation-rsm-alpha",
        title="RSM smoothing alpha ablation (unfairness vs PoM)",
        headers=["alpha", "geomean max-slowdown ratio"],
        rows=rows,
    )
