"""Figure 5: single-program performance of MDM normalized to PoM.

The paper reports a +14% average (up to +38% for lbm), summarized as a
Tukey box plot over the nine programs of Table 9 (libquantum excluded:
its footprint fits entirely in M1, making the schemes identical).
"""

from __future__ import annotations

from repro.analysis.report import (
    normalized_series_summary,
    render_boxplot_summary,
)
from repro.experiments.base import ExperimentResult
from repro.experiments.runner import ExperimentRunner
from repro.workloads.table9 import FIG5_PROGRAMS


def single_program_ratios(
    runner: ExperimentRunner,
    policy: str = "mdm",
    baseline: str = "pom",
    config=None,
    skip_unfittable: bool = False,
) -> dict[str, float]:
    """IPC of ``policy`` over ``baseline`` per Figure 5 program.

    With ``skip_unfittable``, programs whose footprint exceeds the
    configured total capacity are silently omitted (needed by the
    capacity-ratio sensitivity, where shrinking M1 at fixed M2 can push
    the largest footprints past the OS-visible capacity).
    """
    from repro.common.errors import SimulationError

    if not skip_unfittable:
        # One parallel wave for the whole figure (18 single-core runs).
        runner.prefetch(
            [
                runner.spec_single(program, scheme, config=config)
                for program in FIG5_PROGRAMS
                for scheme in (baseline, policy)
            ]
        )
    ratios = {}
    for program in FIG5_PROGRAMS:
        try:
            base = runner.run_single(program, baseline, config=config)
            new = runner.run_single(program, policy, config=config)
        except SimulationError:
            if skip_unfittable:
                continue
            raise
        ratios[program] = new.program(0).ipc / base.program(0).ipc
    return ratios


def run(runner: ExperimentRunner) -> ExperimentResult:
    """Reproduce Figure 5."""
    ratios = single_program_ratios(runner)
    rows = [[program, ratio] for program, ratio in sorted(ratios.items())]
    summary = normalized_series_summary(ratios)
    summary["boxplot"] = render_boxplot_summary(list(ratios.values()))
    return ExperimentResult(
        experiment_id="fig5",
        title="Single-program performance of MDM normalized to PoM",
        headers=["program", "MDM IPC / PoM IPC"],
        rows=rows,
        summary=summary,
        notes=(
            "Paper shape: MDM wins on average (+14%); libquantum omitted "
            "(fits in M1)."
        ),
    )
