"""Figure 2: per-program slowdowns under PoM for w09, w16, w19.

Motivates the fairness problem (Section 2.4): under the PoM baseline some
programs in a mix suffer disproportionately (the paper's example: soplex
at 3.7 in w09 while lbm and GemsFDTD sit near 2.2).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.runner import ExperimentRunner
from repro.workloads.table10 import FAIRNESS_DETAIL_WORKLOADS, WORKLOADS


def run(runner: ExperimentRunner) -> ExperimentResult:
    """Per-program slowdowns under PoM for the Figure 2 workloads."""
    rows = []
    spreads = {}
    for name in FAIRNESS_DETAIL_WORKLOADS:
        metrics = runner.workload_metrics(name, "pom")
        for program, sdn in zip(WORKLOADS[name], metrics.slowdowns):
            rows.append([name, program, sdn])
        spreads[name] = max(metrics.slowdowns) / min(metrics.slowdowns)
    return ExperimentResult(
        experiment_id="fig2",
        title="Slowdowns under PoM management",
        headers=["workload", "program", "slowdown"],
        rows=rows,
        summary={
            f"{name} max/min slowdown spread": spread
            for name, spread in spreads.items()
        },
        notes=(
            "Paper shape: within each mix, slowdowns diverge widely under "
            "PoM (w09: soplex 3.7 vs ~2.2 for lbm/GemsFDTD), motivating "
            "slowdown-aware management."
        ),
    )
