"""Figure 7: single-program STC hit rates under MDM.

The paper's shape: regular programs sit in the 90%+ range, mcf around
85%, and omnetpp lowest (~70%) — low STC hit rates correspond to noisy
MDM statistics (Section 5.1).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.runner import ExperimentRunner
from repro.workloads.table9 import FIG5_PROGRAMS


def run(runner: ExperimentRunner) -> ExperimentResult:
    """Reproduce Figure 7."""
    runner.prefetch(
        [runner.spec_single(program, "mdm") for program in FIG5_PROGRAMS]
    )
    rows = []
    rates = {}
    for program in FIG5_PROGRAMS:
        rate = runner.run_single(program, "mdm").stc_hit_rate
        rates[program] = rate
        rows.append([program, 100 * rate])
    irregular_lower = rates["omnetpp"] < rates["mcf"] < max(
        rates[p] for p in rates if p not in ("mcf", "omnetpp")
    )
    return ExperimentResult(
        experiment_id="fig7",
        title="Single-program STC hit rates under MDM",
        headers=["program", "STC hit rate (%)"],
        rows=rows,
        summary={
            "omnetpp < mcf < regular programs (paper shape)": irregular_lower
        },
    )
