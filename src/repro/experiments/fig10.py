"""Figures 10-12: multi-program evaluation of MDM (no RSM) vs PoM.

* Figure 10 — max slowdown (unfairness), MDM/PoM: paper avg -6%.
* Figure 11 — weighted speedup, MDM/PoM: paper avg +7%.
* Figure 12 — memory energy efficiency, MDM/PoM: paper avg +7%.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.multi import normalized_figure
from repro.experiments.runner import ExperimentRunner


def run(runner: ExperimentRunner) -> ExperimentResult:
    """Figure 10: max slowdown of MDM normalized to PoM (lower = fairer)."""
    return normalized_figure(
        runner,
        "fig10",
        "Max slowdown of MDM normalized to PoM",
        policy="mdm",
        metric=lambda m: m.unfairness,
        higher_is_better=False,
    )


def run_fig11(runner: ExperimentRunner) -> ExperimentResult:
    """Figure 11: weighted speedup of MDM normalized to PoM."""
    return normalized_figure(
        runner,
        "fig11",
        "Performance (weighted speedup) of MDM normalized to PoM",
        policy="mdm",
        metric=lambda m: m.weighted_speedup,
        higher_is_better=True,
    )


def run_fig12(runner: ExperimentRunner) -> ExperimentResult:
    """Figure 12: energy efficiency of MDM normalized to PoM."""
    return normalized_figure(
        runner,
        "fig12",
        "Memory energy efficiency of MDM normalized to PoM",
        policy="mdm",
        metric=lambda m: m.energy_efficiency,
        higher_is_better=True,
    )
