"""Foundational utilities shared by every subsystem of the reproduction.

This package deliberately contains no simulation logic; it provides units,
configuration containers, deterministic randomness, small statistics helpers,
and the exception hierarchy used across ``repro``.
"""

from repro.common.errors import (
    ConfigError,
    ReproError,
    SimulationError,
    TraceError,
)
from repro.common.smoothing import ExponentialSmoother
from repro.common.units import (
    GB,
    KB,
    MB,
    NS_PER_CPU_CYCLE,
    cpu_cycles_from_ns,
    ns_from_cpu_cycles,
)

__all__ = [
    "ConfigError",
    "ExponentialSmoother",
    "GB",
    "KB",
    "MB",
    "NS_PER_CPU_CYCLE",
    "ReproError",
    "SimulationError",
    "TraceError",
    "cpu_cycles_from_ns",
    "ns_from_cpu_cycles",
]
