"""JSON-serialization helpers shared by the result stores and run cache.

``jsonable`` lossily coerces arbitrary values into JSON-compatible ones
(used for free-form report payloads); ``canonical_digest`` produces a
stable content hash for cache keys, independent of dataclass field
declaration order and of incidental float formatting.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json


def jsonable(value: object) -> object:
    """Coerce ``value`` into something ``json.dump`` accepts.

    Scalars pass through, containers recurse, numpy scalars unwrap via
    ``.item()``, and anything else degrades to ``str(value)``.
    """
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (str, int, float)):
        return value
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return str(value)


def canonical_value(value: object) -> object:
    """A canonical JSON-ready view of ``value`` for hashing.

    Dataclasses become name-sorted dicts (stable under field reordering),
    floats become their exact hex form (stable under formatting), and
    containers recurse.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: canonical_value(getattr(value, f.name))
            for f in sorted(dataclasses.fields(value), key=lambda f: f.name)
        }
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, float):
        return float.hex(value)
    if isinstance(value, (str, int)):
        return value
    if isinstance(value, dict):
        return {str(k): canonical_value(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [canonical_value(v) for v in value]
    return str(value)


def canonical_digest(value: object) -> str:
    """SHA-256 hex digest of the canonical form of ``value``."""
    payload = json.dumps(canonical_value(value), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
