"""Deterministic random-number streams.

Every stochastic component (trace generators, page-frame allocation shuffles)
draws from a named substream derived from a single experiment seed, so that
two schemes evaluated on "the same workload" really do see identical traces
and identical OS page placements.
"""

from __future__ import annotations

import hashlib

import numpy as np


def substream_seed(root_seed: int, *names: object) -> int:
    """Derive a stable 63-bit seed for a named substream.

    The derivation hashes the root seed together with the substream name
    path, so adding a new consumer never perturbs existing streams.
    """
    key = ":".join([str(root_seed)] + [str(n) for n in names])
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & ((1 << 63) - 1)


def make_rng(root_seed: int, *names: object) -> np.random.Generator:
    """Create a numpy Generator for the named substream."""
    return np.random.default_rng(substream_seed(root_seed, *names))
