"""Simple exponential smoothing, as used by RSM (Section 3.1.3).

The paper smooths the raw RSM counter values with parameter ``alpha = 0.125``
and increments each counter by one before adding it to the running average,
to avoid zeros.  :class:`ExponentialSmoother` implements exactly that.
"""

from __future__ import annotations

from repro.common.errors import ConfigError


class ExponentialSmoother:
    """Running simple-exponential-smoothing average.

    Parameters
    ----------
    alpha:
        Smoothing parameter in (0, 1].  The paper uses 0.125 for RSM.
    bias:
        Constant added to every observation before smoothing.  RSM uses 1
        ("to avoid zeros, we increment by one each counter before adding it
        to the respective average").
    """

    def __init__(self, alpha: float = 0.125, bias: float = 0.0) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.bias = bias
        self._value: float | None = None

    @property
    def value(self) -> float | None:
        """Current smoothed value, or None before the first observation."""
        return self._value

    @property
    def initialized(self) -> bool:
        """True once at least one observation has been absorbed."""
        return self._value is not None

    def update(self, observation: float) -> float:
        """Absorb one observation and return the new smoothed value."""
        observation = observation + self.bias
        if self._value is None:
            self._value = float(observation)
        else:
            self._value += self.alpha * (observation - self._value)
        return self._value

    def reset(self) -> None:
        """Forget all history."""
        self._value = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExponentialSmoother(alpha={self.alpha}, bias={self.bias}, "
            f"value={self._value})"
        )
