"""Discrete-event scheduling primitive used by the whole simulator.

Every component (cores, channels, the hybrid-memory controller) shares one
:class:`EventQueue`.  Time is integer CPU cycles; events scheduled for the
same cycle fire in insertion order, which keeps runs fully deterministic.

Two representations back the queue:

* a min-heap of ``(cycle, sequence, callback)`` for events in the future,
* a plain FIFO *fast lane* for events scheduled at the current cycle
  (zero-delay hops: posted-write acceptance, controller kicks, same-cycle
  continuations), which skip the heap entirely.

The split preserves the global firing order exactly.  Heap events at
cycle ``c`` are necessarily scheduled while ``now < c`` (a same-cycle
schedule goes to the FIFO instead), so every heap event at ``c`` precedes
every FIFO event created during ``c`` in insertion order; draining the
FIFO only once the heap's head has moved past ``now`` therefore yields
the same sequence as a single ``(cycle, sequence)`` heap.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Optional

from repro.common.errors import SimulationError

Callback = Callable[[int], None]


class EventQueue:
    """A min-heap of (cycle, sequence, callback) events with a same-cycle
    FIFO fast lane."""

    __slots__ = ("_heap", "_fifo", "_seq", "_now", "schedule_now")

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Callback]] = []
        self._fifo: deque[Callback] = deque()
        self._seq = 0
        self._now = 0
        #: Fast lane for ``schedule(self.now, cb)``: appends straight to
        #: the same-cycle FIFO with no Python frame.  Hot producers (the
        #: channel kick, posted-write acceptance) bind this once.
        #:
        #: The symmetric fast lane for *future* events is the inline-push
        #: contract: a hot producer that can prove ``cycle > now`` may
        #: push ``(cycle, self._seq, callback)`` onto ``self._heap`` with
        #: ``heapq.heappush`` directly and then increment ``self._seq``,
        #: skipping :meth:`schedule`'s frame and compare.  The channel
        #: tick, the core dispatch loop, and the controller's STC-hit
        #: path use it; everything else goes through :meth:`schedule`.
        self.schedule_now: Callable[[Callback], None] = self._fifo.append

    @property
    def now(self) -> int:
        """Cycle of the event currently (or most recently) being processed."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap) + len(self._fifo)

    def schedule(self, cycle: int, callback: Callback) -> None:
        """Schedule ``callback(cycle)`` to run at ``cycle`` (>= now)."""
        now = self._now
        if cycle == now:
            self._fifo.append(callback)
        elif cycle > now:
            heapq.heappush(self._heap, (cycle, self._seq, callback))
            self._seq += 1
        else:
            raise SimulationError(
                f"cannot schedule event at {cycle} before now={now}"
            )

    def schedule_after(self, delay: int, callback: Callback) -> None:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        self.schedule(self._now + delay, callback)

    def step(self) -> bool:
        """Run the earliest event.  Returns False when the queue is empty."""
        heap = self._heap
        fifo = self._fifo
        if fifo and (not heap or heap[0][0] > self._now):
            fifo.popleft()(self._now)
            return True
        if not heap:
            return False
        cycle, _, callback = heapq.heappop(heap)
        self._now = cycle
        callback(cycle)
        return True

    def run(
        self,
        max_events: Optional[int] = None,
        stop_after_cycle: Optional[int] = None,
    ) -> int:
        """Drain the queue; returns the number of events processed.

        ``max_events`` is a runaway guard, not a pause button: if the
        ceiling is reached while events remain, a :class:`SimulationError`
        is raised (a silently truncated run is indistinguishable from a
        completed one, which is how hangs used to masquerade as results).
        ``stop_after_cycle`` returns control after the first event whose
        cycle exceeds it has been processed (the simulation driver's
        ``max_cycles`` cutoff semantics); remaining events stay queued.
        """
        # Local bindings: the loop below is the hottest few lines of the
        # whole simulator, so every global/attribute lookup it avoids is
        # paid back millions of times.
        heap = self._heap
        fifo = self._fifo
        heappop = heapq.heappop
        popleft = fifo.popleft
        now = self._now
        processed = 0

        if max_events is None and stop_after_cycle is None:
            while heap or fifo:
                if fifo and (not heap or heap[0][0] > now):
                    popleft()(now)
                    processed += 1
                    # Same-cycle drain: a callback can only add heap
                    # events beyond ``now`` (same-cycle schedules land on
                    # the FIFO), so the guard above stays true until the
                    # FIFO empties — no need to re-check the heap head.
                    while fifo:
                        popleft()(now)
                        processed += 1
                else:
                    entry = heappop(heap)
                    self._now = now = entry[0]
                    entry[2](now)
                    processed += 1
            return processed

        limit = max_events if max_events is not None else -1

        if stop_after_cycle is None:
            # Budget-guarded production loop (the driver always sets
            # ``max_events``): one extra integer compare per event.
            while heap or fifo:
                if processed == limit:
                    raise SimulationError(
                        f"event budget of {max_events} exhausted; likely a hang"
                    )
                if fifo and (not heap or heap[0][0] > now):
                    popleft()(now)
                    processed += 1
                    # Same-cycle drain (see the unbounded loop above).
                    while fifo:
                        if processed == limit:
                            raise SimulationError(
                                f"event budget of {max_events} exhausted; "
                                "likely a hang"
                            )
                        popleft()(now)
                        processed += 1
                else:
                    entry = heappop(heap)
                    self._now = now = entry[0]
                    entry[2](now)
                    processed += 1
            return processed

        while heap or fifo:
            if processed == limit:
                raise SimulationError(
                    f"event budget of {max_events} exhausted; likely a hang"
                )
            if fifo and (not heap or heap[0][0] > now):
                popleft()(now)
            else:
                entry = heappop(heap)
                self._now = now = entry[0]
                entry[2](now)
            processed += 1
            if now > stop_after_cycle:
                break
        return processed

    def run_profiled(
        self,
        buckets: dict[str, list],
        max_events: Optional[int] = None,
        stop_after_cycle: Optional[int] = None,
    ) -> int:
        """Like :meth:`run`, but times every callback into ``buckets``.

        ``buckets`` maps a component label (the callback's qualified name)
        to a ``[calls, seconds]`` accumulator.  This loop is deliberately
        separate from :meth:`run` so profiling costs nothing when off.
        """
        from time import perf_counter

        processed = 0
        while self._heap or self._fifo:
            if max_events is not None and processed == max_events:
                raise SimulationError(
                    f"event budget of {max_events} exhausted; likely a hang"
                )
            heap = self._heap
            fifo = self._fifo
            if fifo and (not heap or heap[0][0] > self._now):
                callback = fifo.popleft()
            else:
                cycle, _, callback = heapq.heappop(heap)
                self._now = cycle
            label = _callback_label(callback)
            started = perf_counter()
            callback(self._now)
            elapsed = perf_counter() - started
            bucket = buckets.get(label)
            if bucket is None:
                buckets[label] = [1, elapsed]
            else:
                bucket[0] += 1
                bucket[1] += elapsed
            processed += 1
            if stop_after_cycle is not None and self._now > stop_after_cycle:
                break
        return processed


def _callback_label(callback: Callback) -> str:
    """Component label for one event callback (profiling bucket key)."""
    func = getattr(callback, "func", callback)  # unwrap functools.partial
    qualname = getattr(func, "__qualname__", None)
    if qualname is not None:
        return qualname
    return type(callback).__name__
