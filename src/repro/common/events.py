"""Discrete-event scheduling primitive used by the whole simulator.

Every component (cores, channels, the hybrid-memory controller) shares one
:class:`EventQueue`.  Time is integer CPU cycles; events scheduled for the
same cycle fire in insertion order, which keeps runs fully deterministic.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.common.errors import SimulationError

Callback = Callable[[int], None]


class EventQueue:
    """A min-heap of (cycle, sequence, callback) events."""

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Callback]] = []
        self._seq = 0
        self._now = 0

    @property
    def now(self) -> int:
        """Cycle of the event currently (or most recently) being processed."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, cycle: int, callback: Callback) -> None:
        """Schedule ``callback(cycle)`` to run at ``cycle`` (>= now)."""
        if cycle < self._now:
            raise SimulationError(
                f"cannot schedule event at {cycle} before now={self._now}"
            )
        heapq.heappush(self._heap, (cycle, self._seq, callback))
        self._seq += 1

    def schedule_after(self, delay: int, callback: Callback) -> None:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        self.schedule(self._now + delay, callback)

    def step(self) -> bool:
        """Run the earliest event.  Returns False when the queue is empty."""
        if not self._heap:
            return False
        cycle, _, callback = heapq.heappop(self._heap)
        self._now = cycle
        callback(cycle)
        return True

    def run(self, max_events: int | None = None) -> int:
        """Drain the queue (optionally bounded); returns events processed."""
        processed = 0
        while self._heap:
            if max_events is not None and processed >= max_events:
                break
            self.step()
            processed += 1
        return processed
