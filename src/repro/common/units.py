"""Unit constants and time conversions.

The simulator keeps all time as integer CPU cycles at the paper's core
frequency of 3.2 GHz (Table 8).  Memory timings are specified in nanoseconds
and converted once, at configuration time, with :func:`cpu_cycles_from_ns`.
Integer cycles avoid float drift over billions of simulated cycles.
"""

from __future__ import annotations

import math
from repro.common.errors import InvalidValueError

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: Paper core frequency (Table 8): 3.2 GHz.
CPU_FREQ_GHZ = 3.2
#: One CPU cycle at 3.2 GHz, in nanoseconds.
NS_PER_CPU_CYCLE = 1.0 / CPU_FREQ_GHZ

#: Paper memory channel frequency (Table 8): 0.8 GHz (1.6 GHz DDR).
CHANNEL_FREQ_GHZ = 0.8
#: CPU cycles per memory-channel cycle (3.2 / 0.8).
CPU_CYCLES_PER_CHANNEL_CYCLE = 4


def cpu_cycles_from_ns(ns: float) -> int:
    """Convert a nanosecond latency to whole CPU cycles, rounding up.

    Rounding up is the conservative choice for timing parameters: a
    constraint is never violated by truncation.
    """
    return int(math.ceil(ns * CPU_FREQ_GHZ - 1e-9))


def ns_from_cpu_cycles(cycles: int) -> float:
    """Convert CPU cycles back to nanoseconds (for reporting)."""
    return cycles * NS_PER_CPU_CYCLE


def is_power_of_two(value: int) -> bool:
    """Return True for positive powers of two (including 1)."""
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    """Return log2 of a power of two, raising ValueError otherwise."""
    if not is_power_of_two(value):
        raise InvalidValueError(f"{value} is not a power of two")
    return value.bit_length() - 1
