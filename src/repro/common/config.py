"""System configuration containers and paper presets (Table 8).

All structural parameters of the reproduction live here: memory timings,
hybrid-memory geometry, cache and STC sizes, core model parameters, and the
per-policy tunables (PoM, MemPod, MDM, RSM, ProFess).  Two presets mirror the
paper's systems:

* :func:`paper_quad_core` — 4 cores, 2 channels, 256 MB M1 / 2 GB M2
  (Section 4.1, multi-program evaluation).
* :func:`paper_single_core` — 1 core, 1 channel, 64 MB M1 / 512 MB M2
  (single-program evaluation).

Both accept a ``scale`` divisor that shrinks M1 capacity (and, by convention,
program footprints — see :mod:`repro.traces.spec`) by the same factor so that
the pure-Python simulator finishes in minutes instead of days while keeping
the M1:M2 ratio, swap-group structure, region count, and footprint-to-M1
pressure identical to the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.common.errors import ConfigError
from repro.common.serialize import canonical_digest, canonical_value
from repro.common.units import (
    KB,
    MB,
    cpu_cycles_from_ns,
    is_power_of_two,
)

#: Data-bus time for one 64-B line: 8 DDR beats at 1.6 GT/s on a 64-bit bus.
LINE_BURST_NS = 5.0
#: Lines per 2-KB swap block.
LINES_PER_BLOCK = 32

#: Composable swap styles (Table 1 nomenclature plus extensions): *fast*
#: exchanges two blocks directly, *slow* restores the group's original
#: mapping first (SILC-FM), *smart* restores only when the exchange does
#: not already re-home the demoted block, *noswap* disables migration
#: traffic entirely (decision accounting still runs).
SWAP_STYLES = ("fast", "slow", "smart", "noswap")
#: Replacement policies selectable for the STC array.  Must stay a
#: subset of :data:`repro.cache.sets.REPLACEMENT_POLICIES`.
STC_REPLACEMENTS = ("lru", "fifo", "random", "lru-lip", "lfu")

#: Memory-timing kernel backends (DESIGN.md §14).  ``auto`` resolves to
#: ``compiled`` when numba imports cleanly and ``python`` otherwise;
#: both backends produce byte-identical results, so the choice is
#: excluded from :meth:`SystemConfig.cache_token`.
MEM_BACKENDS = ("auto", "python", "compiled")


@dataclass(frozen=True)
class MemTimings:
    """Timing parameters of one memory module type, in nanoseconds.

    Defaults are the paper's M1 (DDR4) values from Table 8.  Use
    :meth:`nvm_from_dram` for the paper's M2 derivation: ``tRCD`` is 10x,
    ``tWR = 2 x tRCD_M2``, other timings identical, no refresh.
    """

    t_rcd_ns: float = 13.75
    t_rp_ns: float = 13.75
    cl_ns: float = 13.75
    t_wr_ns: float = 15.0
    #: Average refresh interval; 0 disables refresh (Section 4.1: "M2 has
    #: no refresh").  Defaults are DDR4 4Gb-class values.
    t_refi_ns: float = 7_800.0
    #: Refresh cycle time (all banks of the rank busy).
    t_rfc_ns: float = 350.0

    @staticmethod
    def dram() -> "MemTimings":
        """Paper M1 timings (Micron DDR4, Table 8)."""
        return MemTimings()

    @staticmethod
    def nvm_from_dram(
        dram: "MemTimings" = None,
        read_latency_factor: float = 10.0,
        t_wr_factor_of_rcd: float = 2.0,
    ) -> "MemTimings":
        """Paper M2 derivation: tRCD_M2 = 10 x tRCD_M1, tWR_M2 = 2 x tRCD_M2."""
        base = dram if dram is not None else MemTimings.dram()
        t_rcd = base.t_rcd_ns * read_latency_factor
        return MemTimings(
            t_rcd_ns=t_rcd,
            t_rp_ns=base.t_rp_ns,
            cl_ns=base.cl_ns,
            t_wr_ns=t_wr_factor_of_rcd * t_rcd,
            t_refi_ns=0.0,  # non-volatile: no refresh
            t_rfc_ns=0.0,
        )

    # -- cycle-converted views -------------------------------------------
    @property
    def t_rcd(self) -> int:
        """tRCD in CPU cycles."""
        return cpu_cycles_from_ns(self.t_rcd_ns)

    @property
    def t_rp(self) -> int:
        """tRP in CPU cycles."""
        return cpu_cycles_from_ns(self.t_rp_ns)

    @property
    def cl(self) -> int:
        """CAS latency in CPU cycles."""
        return cpu_cycles_from_ns(self.cl_ns)

    @property
    def t_wr(self) -> int:
        """Write-recovery time in CPU cycles."""
        return cpu_cycles_from_ns(self.t_wr_ns)

    @property
    def t_refi(self) -> int:
        """Refresh interval in CPU cycles (0 = no refresh)."""
        return cpu_cycles_from_ns(self.t_refi_ns)

    @property
    def t_rfc(self) -> int:
        """Refresh cycle time in CPU cycles."""
        return cpu_cycles_from_ns(self.t_rfc_ns)

    @property
    def line_burst(self) -> int:
        """Data-bus occupancy of one 64-B line transfer, in CPU cycles."""
        return cpu_cycles_from_ns(LINE_BURST_NS)

    def read_miss_latency(self) -> int:
        """Row-miss read latency for one line (precharge+activate+CAS+burst)."""
        return self.t_rp + self.t_rcd + self.cl + self.line_burst

    def read_hit_latency(self) -> int:
        """Row-hit read latency for one line (CAS + burst)."""
        return self.cl + self.line_burst


@dataclass(frozen=True)
class HybridMemoryConfig:
    """Geometry of the flat migrating organization (PoM baseline, Sec. 2.3).

    A swap group holds ``group_size`` 2-KB locations: one in M1 and
    ``group_size - 1`` in M2 (paper: nine locations, ratio 1:8).
    """

    m1_capacity_per_channel: int = 128 * MB
    m2_to_m1_ratio: int = 8
    block_size: int = 2 * KB
    line_size: int = 64
    page_size: int = 4 * KB
    num_regions: int = 128
    banks_per_rank: int = 16
    row_buffer_size: int = 8 * KB

    def __post_init__(self) -> None:
        if self.m1_capacity_per_channel % self.block_size:
            raise ConfigError("M1 capacity must be a multiple of block size")
        if not is_power_of_two(self.num_regions):
            raise ConfigError("num_regions must be a power of two")
        if self.page_size != 2 * self.block_size:
            raise ConfigError(
                "the paper's region interleaving assumes 4-KB pages made of "
                "two 2-KB swap blocks"
            )
        if self.m2_to_m1_ratio < 1:
            raise ConfigError("m2_to_m1_ratio must be >= 1")
        if self.groups_per_channel < 2 * self.num_regions:
            raise ConfigError(
                "fewer than two swap-group pairs per region; increase M1 "
                "capacity or lower num_regions"
            )

    @property
    def group_size(self) -> int:
        """Locations per swap group (1 M1 + ratio M2); paper value: 9."""
        return self.m2_to_m1_ratio + 1

    @property
    def groups_per_channel(self) -> int:
        """Number of swap groups per channel (= M1 blocks per channel)."""
        return self.m1_capacity_per_channel // self.block_size

    @property
    def blocks_per_row(self) -> int:
        """2-KB blocks that share one row buffer."""
        return self.row_buffer_size // self.block_size

    @property
    def lines_per_block(self) -> int:
        """64-B lines per swap block."""
        return self.block_size // self.line_size

    @property
    def translation_bits_per_location(self) -> int:
        """Bits to name one location inside a swap group (paper: 4)."""
        return max(1, math.ceil(math.log2(self.group_size)))


@dataclass(frozen=True)
class CacheLevelConfig:
    """One level of the on-chip cache hierarchy."""

    capacity: int
    associativity: int
    latency_cycles: int
    line_size: int = 64

    def __post_init__(self) -> None:
        if self.capacity % (self.associativity * self.line_size):
            raise ConfigError("capacity must divide into assoc x line_size")

    @property
    def num_sets(self) -> int:
        """Number of sets in this level."""
        return self.capacity // (self.associativity * self.line_size)


@dataclass(frozen=True)
class STCConfig:
    """Swap-group Table Cache (Figure 1 / Figure 4).

    The paper's multi-program system uses a 64-KB, 8-way STC holding 8 K
    eight-byte ST entries; the single-core system scales it to 32 KB.
    """

    capacity: int = 64 * KB
    associativity: int = 8
    entry_size: int = 8
    latency_cycles: int = 2

    @property
    def num_entries(self) -> int:
        """ST entries the STC can hold."""
        return self.capacity // self.entry_size

    @property
    def num_sets(self) -> int:
        """Sets in the STC."""
        return self.capacity // (self.associativity * self.entry_size)


@dataclass(frozen=True)
class CoreConfig:
    """Trace-driven core timing model.

    The paper simulates a 4-wide, 256-entry-ROB out-of-order core.  Our
    substitute executes the non-memory instruction gap at ``issue_ipc`` and
    allows ``mlp`` outstanding main-memory reads to overlap, which captures
    the first-order memory-level-parallelism behaviour the migration
    policies are sensitive to.  Writes retire asynchronously (write buffer).
    """

    issue_ipc: float = 2.0
    mlp: int = 4
    write_buffer: int = 8

    def __post_init__(self) -> None:
        if self.issue_ipc <= 0:
            raise ConfigError("issue_ipc must be positive")
        if self.mlp < 1:
            raise ConfigError("mlp must be >= 1")


@dataclass(frozen=True)
class PoMConfig:
    """PoM migration algorithm parameters (Table 2, Section 4.1).

    ``thresholds`` are the candidate global thresholds; each epoch PoM picks
    the one with the best estimated benefit, or prohibits swaps if none is
    positive.  ``k`` is the swap-cost constant in accesses (paper: 8 for
    this technology pair).
    """

    thresholds: tuple[int, ...] = (1, 6, 18, 48)
    k: int = 8
    epoch_requests: int = 2_000
    counter_max: int = 63


@dataclass(frozen=True)
class MemPodConfig:
    """MemPod MEA parameters as tuned in Section 4.1."""

    interval_us: float = 50.0
    mea_counters: int = 128
    max_migrations_per_interval: int = 64


@dataclass(frozen=True)
class CameoConfig:
    """CAMEO: promote on first access (global threshold of 1)."""

    threshold: int = 1


@dataclass(frozen=True)
class SilcFMConfig:
    """SILC-FM (simplified to the PoM organization, Table 2 row 3).

    Promote on first access; a block whose aging access counter exceeds
    ``lock_threshold`` is locked in M1 and protected from demotion.
    """

    threshold: int = 1
    lock_threshold: int = 50
    aging_interval_requests: int = 10_000


@dataclass(frozen=True)
class MDMConfig:
    """Migration-Decision Mechanism parameters (Sections 3.2 and 4.1)."""

    #: Quantization bucket lower bounds for QAC values 1..3 (Table 5):
    #: 1-7 accesses -> 1, 8-31 -> 2, >= 32 -> 3.
    qac_boundaries: tuple[int, int, int] = (1, 8, 32)
    #: Saturating per-block access-counter width in the STC (Section 4.1).
    access_counter_bits: int = 6
    #: Least predicted remaining-access advantage that justifies a swap
    #: (same meaning as PoM's K; paper uses 8).
    min_benefit: float = 8.0
    #: Observation/estimation phase length, in MDM-counter updates/program.
    phase_updates: int = 1_000
    #: exp_cnt recomputation interval during estimation phases.
    recompute_updates: int = 100

    @property
    def num_qac_values(self) -> int:
        """Valid q_I values (paper: 4, including the default 0)."""
        return len(self.qac_boundaries) + 1

    @property
    def access_counter_max(self) -> int:
        """Saturation value of the per-block access counter."""
        return (1 << self.access_counter_bits) - 1


@dataclass(frozen=True)
class RSMConfig:
    """Relative-Slowdown Monitor parameters (Sections 3.1 and 4.1)."""

    #: Sampling-period duration in served requests per program.
    m_samp: int = 128 * 1024
    #: Simple-exponential-smoothing parameter for the RSM counters.
    alpha: float = 0.125


@dataclass(frozen=True)
class ProFessConfig:
    """RSM-guided MDM integration (Section 3.3 / Table 7).

    ``sf_threshold`` is the ~3 % (1/32) hysteresis used in the SF_A and SF_B
    comparisons; the product comparison in Case 3 uses twice that (~6 %).
    """

    sf_threshold: float = 1.0 / 32.0
    #: Ablation switch: disable Table 7's Case 3 (the SF_A*SF_B product
    #: rule) while keeping Cases 1 and 2.
    case3_enabled: bool = True

    @property
    def sf_factor(self) -> float:
        """Multiplier form of the single-factor threshold (1.03125)."""
        return 1.0 + self.sf_threshold

    @property
    def product_factor(self) -> float:
        """Multiplier form of the Case-3 product threshold (1.0625)."""
        return 1.0 + 2.0 * self.sf_threshold


@dataclass(frozen=True)
class PolicyAxesConfig:
    """Config-level defaults for the composable policy axes.

    Every axis defaults to "inherit" (empty string / zero): the policy
    class's own default applies.  A :class:`repro.policies.registry.
    PolicySpec` that names an axis explicitly overrides these defaults.
    The field is deliberately OMITTED from :meth:`SystemConfig.
    cache_token` while it holds only defaults, so every pre-redesign
    cache key (and golden digest) is preserved byte-for-byte.
    """

    #: "" = policy-class default; otherwise one of :data:`SWAP_STYLES`.
    swap_style: str = ""
    #: Probability of dropping a decided promotion (0 disables; drawn
    #: from the seeded ``migration-bypass`` substream).
    bypass_rate: float = 0.0
    #: "" = policy-class default; otherwise one of
    #: :data:`STC_REPLACEMENTS`.
    stc_replacement: str = ""

    def __post_init__(self) -> None:
        if self.swap_style and self.swap_style not in SWAP_STYLES:
            raise ConfigError(
                f"swap_style must be one of {SWAP_STYLES}, "
                f"got {self.swap_style!r}"
            )
        if not 0.0 <= self.bypass_rate < 1.0:
            raise ConfigError(
                f"bypass_rate must be in [0, 1), got {self.bypass_rate!r}"
            )
        if self.stc_replacement and self.stc_replacement not in STC_REPLACEMENTS:
            raise ConfigError(
                f"stc_replacement must be one of {STC_REPLACEMENTS}, "
                f"got {self.stc_replacement!r}"
            )


@dataclass(frozen=True)
class EnergyConfig:
    """Per-event energy model for the off-chip memory system (Fig. 12/15).

    Values are representative of DDR4 and PCM-class NVM: NVM reads cost
    about 2x a DRAM read (longer sensing) and NVM writes are an order of
    magnitude more expensive; NVM has no refresh and negligible standby
    power, while DRAM pays background power.
    """

    m1_activate_nj: float = 2.0
    #: Energy of one all-bank refresh cycle on an M1 rank.
    m1_refresh_nj: float = 60.0
    m1_read_line_nj: float = 4.0
    m1_write_line_nj: float = 4.5
    m1_background_mw: float = 150.0
    m2_activate_nj: float = 4.0
    m2_read_line_nj: float = 8.0
    m2_write_line_nj: float = 40.0
    m2_background_mw: float = 30.0


@dataclass(frozen=True)
class SystemConfig:
    """Complete system configuration.

    Build one with :func:`paper_quad_core` or :func:`paper_single_core`
    (optionally scaled) rather than by hand; :func:`dataclasses.replace`
    (re-exported as :func:`with_overrides`) customizes individual fields.
    """

    num_cores: int = 4
    num_channels: int = 2
    m1_timings: MemTimings = field(default_factory=MemTimings.dram)
    m2_timings: MemTimings = field(default_factory=MemTimings.nvm_from_dram)
    hybrid: HybridMemoryConfig = field(default_factory=HybridMemoryConfig)
    l3: CacheLevelConfig = field(
        default_factory=lambda: CacheLevelConfig(8 * MB, 16, 20)
    )
    stc: STCConfig = field(default_factory=STCConfig)
    core: CoreConfig = field(default_factory=CoreConfig)
    energy: EnergyConfig = field(default_factory=EnergyConfig)
    pom: PoMConfig = field(default_factory=PoMConfig)
    mempod: MemPodConfig = field(default_factory=MemPodConfig)
    cameo: CameoConfig = field(default_factory=CameoConfig)
    silcfm: SilcFMConfig = field(default_factory=SilcFMConfig)
    mdm: MDMConfig = field(default_factory=MDMConfig)
    rsm: RSMConfig = field(default_factory=RSMConfig)
    profess: ProFessConfig = field(default_factory=ProFessConfig)
    #: Config-level defaults for the composable policy axes (swap style,
    #: probabilistic bypass, STC replacement); a PolicySpec overrides.
    axes: PolicyAxesConfig = field(default_factory=PolicyAxesConfig)
    #: Writes count as this many accesses in policy statistics (Sec. 4.1:
    #: "we count each write request as eight accesses" for PoM and ProFess).
    write_access_weight: int = 8
    #: FR-FCFS-Cap row-hit cap (Section 4.1).
    frfcfs_cap: int = 4
    #: Adaptive page policy: the controller precharges a row left idle for
    #: this long (0 disables).  This keeps per-access M2 latency near the
    #: tRCD_M2 penalty that the paper's own K derivation assumes
    #: (Section 4.1) while still rewarding genuinely back-to-back locality.
    row_idle_close_ns: float = 150.0
    #: Capacity divisor relative to the paper system (bookkeeping only;
    #: presets apply it to M1 capacity, trace modules apply it to footprints).
    scale: int = 1
    #: Memory-timing kernel backend (:data:`MEM_BACKENDS`).  Both
    #: backends are byte-identical, so this never enters
    #: :meth:`cache_token` (see DESIGN.md §14).
    mem_backend: str = "auto"

    #: Reviewed record of every field :meth:`cache_token` excludes from
    #: the content hash (enforced by lint rule K401; stale entries are
    #: K402).  An entry asserts the field cannot change simulation
    #: results: ``axes`` is omitted only while it holds inherit-defaults
    #: (any real value re-enters the digest), and ``mem_backend`` selects
    #: between byte-identical kernels (CI backend-parity job).  Amending
    #: this tuple is a reviewed decision — see DESIGN.md §16.
    _CACHE_NEUTRAL_FIELDS = ("axes", "mem_backend")

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ConfigError("num_cores must be >= 1")
        if self.mem_backend not in MEM_BACKENDS:
            raise ConfigError(
                f"mem_backend must be one of {MEM_BACKENDS}, "
                f"got {self.mem_backend!r}"
            )
        if self.num_channels < 1:
            raise ConfigError("num_channels must be >= 1")
        if self.hybrid.num_regions <= self.num_cores:
            raise ConfigError(
                "need more regions than cores so private regions stay a "
                "small fraction of capacity"
            )

    # -- derived geometry -------------------------------------------------
    @property
    def total_groups(self) -> int:
        """Swap groups across all channels."""
        return self.hybrid.groups_per_channel * self.num_channels

    @property
    def total_m1_capacity(self) -> int:
        """Bytes of M1 across all channels."""
        return self.hybrid.m1_capacity_per_channel * self.num_channels

    @property
    def total_capacity(self) -> int:
        """OS-visible capacity: M1 + M2 (migrating organization)."""
        return self.total_m1_capacity * self.hybrid.group_size

    @property
    def total_blocks(self) -> int:
        """Original 2-KB block addresses available to the OS."""
        return self.total_capacity // self.hybrid.block_size

    @property
    def total_pages(self) -> int:
        """4-KB OS page frames available."""
        return self.total_capacity // self.hybrid.page_size

    def swap_latency_cycles(self) -> int:
        """Analytic latency of one 2-KB/2-KB swap, in CPU cycles.

        Follows the Section 4.1 account: the two block reads overlap
        (tRCD_M2 hides the M1 read), the write to M1 overlaps tWR_M2, and
        the channel is blocked for the whole duration.  With Table 8
        timings this evaluates to ~796 ns, matching the paper's analytic
        value (the paper observes ~820 ns dynamically, within 3%).
        """
        t1, t2 = self.m1_timings, self.m2_timings
        burst = LINES_PER_BLOCK * t1.line_burst
        # M1 block read completes at tRP + tRCD_M1 + CL + 32 bursts
        # (tRCD_M2 hides underneath); then the M2 read bursts, then the M2
        # write bursts occupy the bus; tWR_M2 closes the swap, and the M1
        # write bursts plus tWR_M1 fit inside it.  With Table 8 timings:
        # 13.75 + 13.75 + 13.75 + 3*160 + 275 = 796.25 ns.
        m1_read_done = t1.t_rp + t1.t_rcd + t1.cl + burst
        return m1_read_done + 2 * burst + t2.t_wr

    def cache_token(self) -> str:
        """Stable content hash of everything that affects simulation.

        Unlike ``repr(config)``, the token walks the dataclass tree with
        field names *sorted* and floats rendered in exact hex form, so it
        is invariant under dataclass field reordering and float
        formatting changes.  Two configs share a token iff every field
        value is equal; any semantic change yields a new token.

        Back-compat: the ``axes`` field is omitted while it holds only
        inherit-defaults.  A default ``axes`` cannot change any result
        (every axis resolves to the policy class's own default), so the
        token — and therefore every :meth:`repro.exec.spec.RunSpec.
        cache_key` minted before the policy-registry redesign — is
        unchanged, and existing disk caches keep hitting.  Any non-default
        axis value re-enters the digest and yields a new token.
        """
        value = canonical_value(self)
        assert isinstance(value, dict)
        if value["axes"] == canonical_value(PolicyAxesConfig()):
            del value["axes"]
        # The mem backend is a performance choice with byte-identical
        # output (enforced by the CI backend-parity job); it never
        # affects results, so it is excluded unconditionally and cached
        # results transfer across backends.
        del value["mem_backend"]
        return canonical_digest(value)

    def tunables(self) -> dict[str, object]:
        """Per-policy tunable namespaces, keyed by registry base name.

        The mapping view of the flat legacy fields (``config.pom``,
        ``config.mdm``, ...), which remain as the back-compat spelling;
        ``"axes"`` holds the cross-cutting axis defaults.
        """
        return {
            "pom": self.pom,
            "cameo": self.cameo,
            "silcfm": self.silcfm,
            "mempod": self.mempod,
            "mdm": self.mdm,
            "rsm": self.rsm,
            "profess": self.profess,
            "axes": self.axes,
        }

    def derived_k(self) -> int:
        """PoM's K derived per Section 4.1 from the configured timings.

        K = ceil(swap latency / difference in 64-B read latencies); the
        paper then rounds up to 8.
        """
        diff = self.m2_timings.t_rcd - self.m1_timings.t_rcd
        if diff <= 0:
            return 1
        return math.ceil(self.swap_latency_cycles() / diff)


def with_overrides(config: SystemConfig, **changes: object) -> SystemConfig:
    """Return a copy of ``config`` with the given top-level fields replaced."""
    return replace(config, **changes)


def _scaled_hybrid(
    m1_per_channel: int, scale: int, num_regions: int = 128
) -> HybridMemoryConfig:
    if scale < 1 or not is_power_of_two(scale):
        raise ConfigError("scale must be a power of two >= 1")
    scaled = m1_per_channel // scale
    return HybridMemoryConfig(
        m1_capacity_per_channel=scaled, num_regions=num_regions
    )


def _scaled_stc(capacity: int, scale: int) -> STCConfig:
    """Scale the STC with M1 so its reach (fraction of swap groups whose
    ST entries fit on chip) matches the paper's; floor at 64 entries."""
    return STCConfig(capacity=max(capacity // scale, 512))


def _scaled_l3(capacity: int, scale: int) -> CacheLevelConfig:
    """Scale the L3 with M1 (used only by the CPU-trace pipeline)."""
    return CacheLevelConfig(max(capacity // scale, 64 * KB), 16, 20)


def paper_quad_core(
    scale: int = 1,
    m_samp: int | None = None,
    m2_to_m1_ratio: int = 8,
    num_regions: int = 128,
) -> SystemConfig:
    """The paper's multi-program system (Table 8): 4 cores, 2 channels.

    ``scale`` divides the 256-MB M1; ``m_samp`` overrides the RSM sampling
    period (the paper's 128 K requests assumes paper-scale traces — scaled
    runs shrink it proportionally by default).
    """
    hybrid = replace(
        _scaled_hybrid(128 * MB, scale, num_regions),
        m2_to_m1_ratio=m2_to_m1_ratio,
    )
    if m_samp is None:
        m_samp = max(2_048, (128 * 1024) // scale)
    return SystemConfig(
        num_cores=4,
        num_channels=2,
        hybrid=hybrid,
        l3=_scaled_l3(8 * MB, scale),
        stc=_scaled_stc(64 * KB, scale),
        rsm=RSMConfig(m_samp=m_samp),
        scale=scale,
    )


def paper_single_core(
    scale: int = 1,
    m2_to_m1_ratio: int = 8,
    num_regions: int = 128,
) -> SystemConfig:
    """The paper's single-program system: 1 core, 1 channel, 64-MB M1.

    The L3 and STC are scaled to a quarter of the quad-core system, as in
    Section 4.1.
    """
    hybrid = replace(
        _scaled_hybrid(64 * MB, scale, num_regions),
        m2_to_m1_ratio=m2_to_m1_ratio,
    )
    return SystemConfig(
        num_cores=1,
        num_channels=1,
        hybrid=hybrid,
        l3=_scaled_l3(2 * MB, scale),
        stc=_scaled_stc(32 * KB, scale),
        rsm=RSMConfig(m_samp=max(2_048, (128 * 1024) // scale)),
        scale=scale,
    )
