"""Small statistics helpers used for reporting experiment results.

The paper summarizes single-program results with Tukey box plots (first and
third quartiles, whiskers at the data range, outliers beyond 1.5 IQR, median,
and geometric mean — Figure 5).  :func:`boxplot_stats` reproduces that
summary; :func:`geomean` is the aggregate used throughout Section 5.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence
from repro.common.errors import InvalidValueError


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of positive values.

    Raises ValueError on empty input or any non-positive value, because a
    silent 0/NaN would corrupt normalized-performance aggregates.
    """
    values = list(values)
    if not values:
        raise InvalidValueError("geomean of empty sequence")
    total = 0.0
    for v in values:
        if v <= 0:
            raise InvalidValueError(f"geomean requires positive values, got {v}")
        total += math.log(v)
    return math.exp(total / len(values))


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; raises ValueError on empty input."""
    values = list(values)
    if not values:
        raise InvalidValueError("mean of empty sequence")
    return sum(values) / len(values)


def stddev(values: Iterable[float]) -> float:
    """Population standard deviation (the paper's sigma estimates)."""
    values = list(values)
    if not values:
        raise InvalidValueError("stddev of empty sequence")
    mu = sum(values) / len(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile on an already sorted sequence."""
    if not sorted_values:
        raise InvalidValueError("percentile of empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise InvalidValueError(f"fraction must be in [0, 1], got {fraction}")
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    position = fraction * (len(sorted_values) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return float(sorted_values[low])
    weight = position - low
    return float(sorted_values[low] * (1 - weight) + sorted_values[high] * weight)


@dataclass(frozen=True)
class BoxplotStats:
    """Tukey box-plot summary of a sample (Figure 5 style)."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    geometric_mean: float
    outliers: tuple[float, ...]

    @property
    def iqr(self) -> float:
        """Interquartile range."""
        return self.q3 - self.q1


def boxplot_stats(values: Iterable[float]) -> BoxplotStats:
    """Compute the Tukey box-plot summary the paper uses for Figure 5."""
    data = sorted(values)
    if not data:
        raise InvalidValueError("boxplot_stats of empty sequence")
    q1 = percentile(data, 0.25)
    q3 = percentile(data, 0.75)
    iqr = q3 - q1
    low_fence = q1 - 1.5 * iqr
    high_fence = q3 + 1.5 * iqr
    inliers = [v for v in data if low_fence <= v <= high_fence]
    outliers = tuple(v for v in data if v < low_fence or v > high_fence)
    return BoxplotStats(
        minimum=float(inliers[0]),
        q1=q1,
        median=percentile(data, 0.5),
        q3=q3,
        maximum=float(inliers[-1]),
        geometric_mean=geomean(data) if all(v > 0 for v in data) else float("nan"),
        outliers=outliers,
    )
