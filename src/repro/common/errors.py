"""Exception hierarchy for the ProFess reproduction."""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value."""


class TraceError(ReproError):
    """A malformed trace record, file, or generator specification."""


class SimulationError(ReproError):
    """An internal invariant of the simulation engine was violated."""


class InvalidValueError(ReproError, ValueError):
    """A bad argument or out-of-domain value passed to a public API.

    Derives from :class:`ValueError` too, so callers (and tests) that
    catch the builtin keep working; new code should catch
    :class:`ReproError` (the C303 lint rule enforces the pedigree).
    """


class UnknownNameError(ReproError, KeyError):
    """An unknown program, workload, policy, or experiment name."""


class RangeError(ReproError, IndexError):
    """An index or identifier outside its structure's valid range."""
