"""Exception hierarchy for the ProFess reproduction."""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value."""


class TraceError(ReproError):
    """A malformed trace record, file, or generator specification."""


class SimulationError(ReproError):
    """An internal invariant of the simulation engine was violated."""


class InvalidValueError(ReproError, ValueError):
    """A bad argument or out-of-domain value passed to a public API.

    Derives from :class:`ValueError` too, so callers (and tests) that
    catch the builtin keep working; new code should catch
    :class:`ReproError` (the C303 lint rule enforces the pedigree).
    """


class UnknownNameError(ReproError, KeyError):
    """An unknown program, workload, policy, or experiment name."""


class PolicySpecError(InvalidValueError):
    """A malformed policy spec string or inconsistent axis combination.

    Raised by :meth:`repro.policies.registry.PolicySpec.parse` and the
    spec constructor; derives from :class:`InvalidValueError` so callers
    that caught the old ``make_policy`` errors keep working.
    """


class UnknownPolicyError(InvalidValueError):
    """A policy base name that is not in the registry.

    Carries ``known`` — the sorted registered names — so CLI error
    messages can list the alternatives.
    """

    def __init__(self, name: str, known: list[str]) -> None:
        self.name = name
        self.known = list(known)
        super().__init__(
            f"unknown policy {name!r}; choose from {self.known}"
        )


class RangeError(ReproError, IndexError):
    """An index or identifier outside its structure's valid range."""
