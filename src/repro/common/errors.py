"""Exception hierarchy for the ProFess reproduction."""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value."""


class TraceError(ReproError):
    """A malformed trace record, file, or generator specification."""


class SimulationError(ReproError):
    """An internal invariant of the simulation engine was violated."""
