"""Project-specific static analysis (``profess lint``).

An AST-based pass over the ``repro`` tree enforcing the guarantees the
test suite can only spot-check at runtime: determinism (D-rules),
hot-path slimness (H-rules, driven by the :mod:`repro.lint.hotpath`
manifest), and API contracts (C-rules).  See DESIGN.md §11.
"""

from repro.lint.engine import (
    Finding,
    LintError,
    lint_paths,
    lint_sources,
)
from repro.lint.hotpath import HOT_CLASSES, HOT_FUNCTIONS
from repro.lint.rules import RULES

__all__ = [
    "Finding",
    "LintError",
    "HOT_CLASSES",
    "HOT_FUNCTIONS",
    "RULES",
    "lint_paths",
    "lint_sources",
]
