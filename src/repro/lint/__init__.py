"""Project-specific static analysis (``profess lint``).

An AST-based pass over the ``repro`` tree enforcing the guarantees the
test suite can only spot-check at runtime: determinism (D-rules, both
syntactic and the flow-sensitive D11x taint family), hot-path slimness
(H-rules, driven by the :mod:`repro.lint.hotpath` manifest), API
contracts (C-rules), and cache-key soundness (K4xx).  See DESIGN.md
§11 and §16.
"""

from repro.lint.engine import (
    Finding,
    LintError,
    TraceStep,
    lint_paths,
    lint_sources,
    render_sarif,
)
from repro.lint.hotpath import HOT_CLASSES, HOT_FUNCTIONS
from repro.lint.rules import RULES

__all__ = [
    "Finding",
    "LintError",
    "TraceStep",
    "HOT_CLASSES",
    "HOT_FUNCTIONS",
    "RULES",
    "lint_paths",
    "lint_sources",
    "render_sarif",
]
