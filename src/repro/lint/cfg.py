"""Per-function control-flow graphs for the dataflow rules (DESIGN.md §16).

:func:`build_cfg` lowers one function body into basic blocks of
*elements* — plain AST statements plus the branch-test expressions that
the statement-level AST hides inside compound nodes — connected by
successor edges.  The graph is deliberately coarse where precision buys
nothing for taint tracking:

* ``try`` bodies edge conservatively from every body block to every
  handler (an exception may fire anywhere inside the body);
* ``match`` evaluates its subject but does not model capture-pattern
  bindings (a fall-through edge keeps the join sound);
* nested ``def``/``class`` statements are opaque single elements — each
  nested function gets its own CFG when the flow pass reaches it.

Element kinds a transfer function must handle:

* ``ast.stmt`` — simple statements (assignments, returns, raises, ...).
  ``ast.With`` appears as an element for its item bindings only; its
  body statements live in the same block stream.  ``ast.For`` appears as
  the loop-header element binding its target from its iterable.
* ``ast.expr`` — branch tests (``if``/``while``), ``match`` subjects.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

#: What a basic block holds: statements, plus bare test expressions.
Element = Union[ast.stmt, ast.expr]


@dataclass(slots=True)
class Block:
    """One basic block: straight-line elements plus successor indices."""

    index: int
    elements: list[Element] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)


@dataclass(slots=True)
class CFG:
    """A function's control-flow graph (entry is block 0)."""

    blocks: list[Block] = field(default_factory=list)
    entry: int = 0
    exit: int = 0

    def new_block(self) -> Block:
        block = Block(index=len(self.blocks))
        self.blocks.append(block)
        return block

    def edge(self, src: Block, dst: Block) -> None:
        if dst.index not in src.succs:
            src.succs.append(dst.index)


class _Builder:
    """Recursive-descent CFG construction over a statement list."""

    def __init__(self) -> None:
        self.cfg = CFG()
        entry = self.cfg.new_block()
        exit_block = self.cfg.new_block()
        self.cfg.entry = entry.index
        self.cfg.exit = exit_block.index
        self._exit = exit_block

    # ------------------------------------------------------------------
    def build(self, body: Sequence[ast.stmt]) -> CFG:
        end = self._sequence(body, self.cfg.blocks[self.cfg.entry], [])
        if end is not None:
            self.cfg.edge(end, self._exit)
        return self.cfg

    # ------------------------------------------------------------------
    def _sequence(
        self,
        stmts: Sequence[ast.stmt],
        current: Optional[Block],
        loops: list[tuple[Block, Block]],
    ) -> Optional[Block]:
        """Thread ``stmts`` through blocks; None means flow terminated."""
        for stmt in stmts:
            if current is None:
                # Unreachable code after return/raise/break: stop — the
                # dataflow pass only visits reachable blocks anyway.
                return None
            current = self._statement(stmt, current, loops)
        return current

    def _statement(
        self,
        stmt: ast.stmt,
        current: Block,
        loops: list[tuple[Block, Block]],
    ) -> Optional[Block]:
        cfg = self.cfg
        if isinstance(stmt, ast.If):
            current.elements.append(stmt.test)
            after = cfg.new_block()
            then_entry = cfg.new_block()
            cfg.edge(current, then_entry)
            then_end = self._sequence(stmt.body, then_entry, loops)
            if then_end is not None:
                cfg.edge(then_end, after)
            if stmt.orelse:
                else_entry = cfg.new_block()
                cfg.edge(current, else_entry)
                else_end = self._sequence(stmt.orelse, else_entry, loops)
                if else_end is not None:
                    cfg.edge(else_end, after)
            else:
                cfg.edge(current, after)
            return after
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            header = cfg.new_block()
            cfg.edge(current, header)
            header.elements.append(
                stmt.test if isinstance(stmt, ast.While) else stmt
            )
            after = cfg.new_block()
            body_entry = cfg.new_block()
            cfg.edge(header, body_entry)
            body_end = self._sequence(
                stmt.body, body_entry, loops + [(header, after)]
            )
            if body_end is not None:
                cfg.edge(body_end, header)
            if stmt.orelse:
                else_entry = cfg.new_block()
                cfg.edge(header, else_entry)
                else_end = self._sequence(stmt.orelse, else_entry, loops)
                if else_end is not None:
                    cfg.edge(else_end, after)
            else:
                cfg.edge(header, after)
            return after
        if isinstance(stmt, ast.Try):
            body_start = len(cfg.blocks)
            body_entry = cfg.new_block()
            cfg.edge(current, body_entry)
            body_end = self._sequence(stmt.body, body_entry, loops)
            if body_end is not None and stmt.orelse:
                body_end = self._sequence(stmt.orelse, body_end, loops)
            # Every block minted for the body may raise into any handler.
            body_blocks = cfg.blocks[body_start : len(cfg.blocks)]
            after = cfg.new_block()
            tails: list[Block] = []
            if body_end is not None:
                tails.append(body_end)
            for handler in stmt.handlers:
                handler_entry = cfg.new_block()
                for block in body_blocks:
                    cfg.edge(block, handler_entry)
                handler_end = self._sequence(
                    handler.body, handler_entry, loops
                )
                if handler_end is not None:
                    tails.append(handler_end)
            if stmt.finalbody:
                final_entry = cfg.new_block()
                for tail in tails:
                    cfg.edge(tail, final_entry)
                final_end = self._sequence(stmt.finalbody, final_entry, loops)
                if final_end is not None:
                    cfg.edge(final_end, after)
            else:
                for tail in tails:
                    cfg.edge(tail, after)
            return after
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            current.elements.append(stmt)
            return self._sequence(stmt.body, current, loops)
        if isinstance(stmt, ast.Match):
            current.elements.append(stmt.subject)
            after = cfg.new_block()
            for case in stmt.cases:
                case_entry = cfg.new_block()
                cfg.edge(current, case_entry)
                case_end = self._sequence(case.body, case_entry, loops)
                if case_end is not None:
                    cfg.edge(case_end, after)
            cfg.edge(current, after)  # no case may match
            return after
        if isinstance(stmt, (ast.Return, ast.Raise)):
            current.elements.append(stmt)
            self.cfg.edge(current, self._exit)
            return None
        if isinstance(stmt, ast.Break):
            if loops:
                cfg.edge(current, loops[-1][1])
            return None
        if isinstance(stmt, ast.Continue):
            if loops:
                cfg.edge(current, loops[-1][0])
            return None
        # Simple statements (and opaque nested def/class) stay in-block.
        current.elements.append(stmt)
        return current


def build_cfg(func: ast.FunctionDef) -> CFG:
    """The control-flow graph of one function definition's body."""
    return _Builder().build(func.body)
